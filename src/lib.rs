//! # egobtw — Efficient Top-k Ego-Betweenness Search
//!
//! A complete Rust implementation of *"Efficient Top-k Ego-Betweenness
//! Search"* (ICDE 2022): the static top-k searches (BaseBSearch /
//! OptBSearch), exact and lazy maintenance under edge updates, parallel
//! all-vertex computation, and the Brandes-betweenness baseline used in
//! the paper's effectiveness study — plus the graph substrate and
//! synthetic dataset generators everything runs on.
//!
//! This umbrella crate re-exports the member crates under short names;
//! depend on it for the whole toolkit, or on the member crates
//! individually.
//!
//! ## Example
//!
//! ```
//! use egobtw::prelude::*;
//!
//! // Build a small social network and find its top-3 brokers.
//! let g = egobtw::gen::classic::karate_club();
//! let top = opt_bsearch(&g, 3, OptParams::default());
//! assert_eq!(top.entries.len(), 3);
//!
//! // Maintain the answer while the network changes.
//! let mut lazy = LazyTopK::new(&g, 3);
//! lazy.insert_edge(16, 25);
//! let _current = lazy.top_k();
//! ```

pub use egobtw_baseline as baseline;
pub use egobtw_core as core;
pub use egobtw_dynamic as dynamic;
pub use egobtw_gen as gen;
pub use egobtw_graph as graph;
pub use egobtw_parallel as parallel;

/// The most common imports in one place.
pub mod prelude {
    pub use egobtw_baseline::{betweenness, betweenness_parallel, overlap_fraction, top_bw};
    pub use egobtw_core::{
        base_bsearch, compute_all, compute_all_naive, ego_betweenness_of, opt_bsearch, OptParams,
    };
    pub use egobtw_dynamic::{LazyTopK, LocalIndex};
    pub use egobtw_graph::{CsrGraph, DynGraph, GraphBuilder, VertexId};
    pub use egobtw_parallel::{edge_pebw, vertex_pebw};
}
