//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access to a
//! registry, so instead of the real `rand` we vendor the small slice of its
//! 0.9 API that the workspace actually uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — every generator in
//!   this workspace is seeded explicitly for reproducibility;
//! * [`Rng::random_range`] over half-open integer ranges;
//! * [`Rng::random_bool`] and [`Rng::random`] (`f64` in `[0, 1)`);
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator behind `StdRng` here is xoshiro256++ seeded via SplitMix64
//! (not ChaCha12 as in the real crate), so streams differ from upstream
//! `rand` — but they are deterministic per seed, which is the property the
//! generators and tests rely on. If the real crate ever becomes available,
//! deleting `vendor/rand` and pointing the workspace dependency at the
//! registry is a drop-in swap.

/// A source of 64-bit random words. The minimal core trait every generator
/// implements; all higher-level sampling in [`Rng`] is derived from it.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open `lo..hi` range. Panics if the
    /// range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_half_open(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // `unit_f64` is in [0, 1), so p == 1.0 always passes and p == 0.0
        // never does, matching the real crate's endpoint behaviour.
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value from the "standard" distribution of `T` — for `f64`,
    /// uniform in `[0, 1)`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `lo..hi`. Panics if `lo >= hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Debiased multiply-shift (Lemire); the rejection loop runs
                // ~once for the small spans used in this workspace.
                loop {
                    let x = rng.next_u64();
                    let hi128 = ((x as u128 * span as u128) >> 64) as u64;
                    let lo128 = x.wrapping_mul(span);
                    if lo128 >= span || lo128 >= (span.wrapping_neg() % span) {
                        return lo + hi128 as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                let off = <$u as SampleUniform>::sample_half_open(rng, 0, span);
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i32 => u32, i64 => u64);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample from empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Types with a "standard" distribution for [`Rng::random`].
pub trait StandardSample {
    /// Draws one value from the type's standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's default generator: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 so that any `u64` seed yields a
    /// well-mixed initial state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_half_open(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u32> = (0..32).map(|_| a.random_range(0..1_000_000u32)).collect();
        let vb: Vec<u32> = (0..32).map(|_| b.random_range(0..1_000_000u32)).collect();
        let vc: Vec<u32> = (0..32).map(|_| c.random_range(0..1_000_000u32)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(5..40u32);
            assert!((5..40).contains(&x));
            let y = rng.random_range(0..3usize);
            assert!(y < 3);
        }
    }

    #[test]
    fn random_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
