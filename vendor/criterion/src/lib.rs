//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, vendored because the build environment cannot reach a
//! registry.
//!
//! It implements the API subset this workspace's five bench targets use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — on top of a deliberately simple measurement
//! loop: one calibration pass picks an iteration count that makes each
//! sample take a few milliseconds, then the median per-iteration time over
//! the samples is reported. No statistical analysis, plots, or baselines;
//! numbers are for coarse regression spotting, not publication. Swap the
//! workspace dependency back to the registry crate for the real harness.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(4);

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Registers and immediately runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }

    /// Opens a named group; benchmarks inside report as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Called by the generated `main` after all groups have run.
    pub fn final_summary(&mut self) {}
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (The real crate emits summary artifacts here.)
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter value.
    pub fn new(function: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.param)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `routine`, keeping each
    /// return value alive through [`black_box`] so the work is not
    /// optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrates an iteration count, takes `samples` timed samples, and prints
/// the median per-iteration time.
fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Calibration: one iteration, also serving as warm-up.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!(
        "{id:<48} time: {:>12}  ({} samples × {} iters)",
        human_time(median),
        samples,
        iters
    );
}

/// Formats nanoseconds with an appropriate unit.
fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a bench target (built with `harness = false`),
/// mirroring `criterion::criterion_main!`. Harness CLI flags are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // 1 calibration call + 10 samples, each running `iters` times.
        assert!(calls > 10);
    }

    #[test]
    fn group_respects_sample_size_and_id() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 7), &41, |b, &x| {
            b.iter(|| x + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_time(12.0), "12.0 ns");
        assert_eq!(human_time(12_500.0), "12.50 µs");
        assert_eq!(human_time(12_500_000.0), "12.50 ms");
        assert_eq!(human_time(2_500_000_000.0), "2.500 s");
    }
}
