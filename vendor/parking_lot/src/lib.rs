//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, vendored because the build environment cannot reach a registry.
//!
//! Only the API surface this workspace uses is provided: [`Mutex`] with the
//! panic-free `lock()` signature (no `LockResult`, no poisoning). It wraps
//! `std::sync::Mutex` and recovers from poisoning instead of propagating it,
//! which matches `parking_lot`'s observable behaviour for our callers. Swap
//! the workspace dependency back to the registry crate to get the real
//! futex-based implementation.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with `parking_lot`'s ergonomic API:
/// `lock()` returns the guard directly rather than a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in another holder does not poison the
    /// lock — the data is handed over regardless, as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { guard }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                guard: poisoned.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value, using the
    /// exclusive borrow as proof that no lock is needed.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_counter() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn try_lock_blocks_while_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
