//! The paper's case study (Exp-7, Tables III–IV) on a synthetic
//! collaboration network: the top ego-betweenness "scholars" are the
//! bridges between research communities.
//!
//! Builds a planted-partition co-authorship graph (dense communities,
//! sparse cross edges), finds the top-10 by ego-betweenness and by full
//! betweenness, and prints them side by side with their degree — the
//! Table III/IV layout. Starred rows appear in both rankings.
//!
//! ```text
//! cargo run --release --example collaboration_bridges
//! ```

use egobtw::prelude::*;

fn main() {
    let params = egobtw::gen::community::PlantedPartition {
        communities: 150,
        community_size: 12,
        p_in: 0.5,
        cross_edges_per_vertex: 0.6,
    };
    let g = egobtw::gen::planted_partition(params, 2022);
    println!(
        "collaboration network: n={} m={} ({} communities of {})",
        g.n(),
        g.m(),
        params.communities,
        params.community_size
    );

    let k = 10;
    let ebw = opt_bsearch(&g, k, OptParams::default());
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let bw = top_bw(&g, k, threads);

    let in_bw: Vec<VertexId> = bw.iter().map(|e| e.0).collect();
    let in_ebw: Vec<VertexId> = ebw.entries.iter().map(|e| e.0).collect();

    println!(
        "\n{:<24} {:>4} {:>10} | {:<24} {:>4} {:>12}",
        "Top-10 EBW", "d", "CB", "Top-10 BW", "d", "BT"
    );
    for (&(ve, cbe), &(vb, btb)) in ebw.entries.iter().zip(&bw).take(k) {
        let star_e = if in_bw.contains(&ve) { "*" } else { " " };
        let star_b = if in_ebw.contains(&vb) { "*" } else { " " };
        println!(
            "{star_e}author-{ve:<17} {:>4} {cbe:>10.1} | {star_b}author-{vb:<17} {:>4} {btb:>12.1}",
            g.degree(ve),
            g.degree(vb),
        );
    }

    println!(
        "\noverlap of the two top-10 lists: {:.0}%",
        100.0 * overlap_fraction(&in_ebw, &in_bw)
    );

    // Bridges sit between communities: count how many distinct communities
    // each top author touches.
    println!("\ncommunity reach of the top EBW authors:");
    for &(v, _) in ebw.entries.iter().take(5) {
        let mut comms: Vec<usize> = g
            .neighbors(v)
            .iter()
            .map(|&w| w as usize / params.community_size)
            .collect();
        comms.sort_unstable();
        comms.dedup();
        println!(
            "  author-{v}: degree {}, touches {} communities",
            g.degree(v),
            comms.len()
        );
    }
}
