//! The query service, end to end in one process: a catalog of datasets
//! behind epoch-swapped snapshots, concurrent readers, an update stream
//! through the dynamic maintainers, and the TCP daemon — the
//! serve-while-updating workload the paper's Section IV algorithms exist
//! for.
//!
//! ```text
//! cargo run --release --example service_session
//! ```

use egobtw_service::catalog::Mode;
use egobtw_service::server::{connect_with_retry, roundtrip, Server};
use egobtw_service::Service;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. An in-process service: load two datasets under different
    //    maintainer modes.
    let service = Arc::new(Service::new());
    let karate = egobtw::gen::classic::karate_club();
    let social = egobtw::gen::barabasi_albert(400, 3, 0xE6);
    service
        .load_graph("karate", karate, Mode::default())
        .expect("load karate");
    service
        .load_graph("social", social, Mode::Lazy { k: 10 })
        .expect("load social");

    // 2. Talk to it without any sockets — parse/execute/render.
    for line in [
        "LIST",
        "TOPK karate 5",
        "SCORE karate 0 33",
        "COMMON karate 0 33",
        "UPDATE karate -0,1 +4,9",
        "TOPK karate 5",
        "TOPK social 10",
        "UPDATE social -0,1 -0,2 -1,2",
        "TOPK social 10", // lazy mode: this read may pay the deferred refresh
        "TOPK social 10", // …and this one is served maintained
        "STATS social",
    ] {
        println!("> {line}");
        println!("{}", service.handle_line(line));
    }

    // 3. The same service over TCP: spawn the daemon on an OS port, run a
    //    scripted client session against it.
    let server = Server::spawn(service, "127.0.0.1:0", 4).expect("bind");
    let addr = server.local_addr().to_string();
    println!("\ndaemon listening on {addr}");
    let (mut reader, mut writer) =
        connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");
    let batch = "PING\nTOPK karate 3\nTOPK social 3 core::compute_all";
    println!("> [one frame, three commands]");
    let response = roundtrip(&mut reader, &mut writer, batch).expect("roundtrip");
    println!("{response}");
    drop((reader, writer));
    server.shutdown();
    println!("daemon stopped cleanly");
}
