//! Replays the paper's running example (Fig. 1–3, Examples 1–8) on the
//! reconstructed 16-vertex graph and prints every value the paper states,
//! side by side with what the library computes.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use egobtw::core::{base_bsearch, opt_bsearch, OptParams};
use egobtw::dynamic::{LazyTopK, LocalIndex};
use egobtw::gen::toy::{self, ids};

fn row(label: char, got: f64, paper: &str) {
    println!("  CB({label}) = {got:<10.6} (paper: {paper})");
}

fn main() {
    let g = toy::paper_graph();
    println!(
        "Fig. 1(a) graph reconstructed: n={} m={} (see DESIGN.md for the derivation)",
        g.n(),
        g.m()
    );

    // --- Example 1 & 2: exact ego-betweennesses ---
    println!("\nExample 1–2 (exact values):");
    let (cb, _) = egobtw::core::compute_all(&g);
    row('d', cb[ids::D as usize], "14/3");
    row('f', cb[ids::F as usize], "11");
    row('x', cb[ids::X as usize], "10");
    row('i', cb[ids::I as usize], "8");

    // --- Example 3 / Fig. 2: BaseBSearch, k = 5 ---
    println!("\nExample 3 (BaseBSearch, k=5):");
    let base = base_bsearch(&g, 5);
    print!("  R = {{");
    for (v, cbv) in &base.entries {
        print!(" {}:{:.3}", toy::label(*v), cbv);
    }
    println!(" }}");
    println!(
        "  exact computations: {} (paper: 10 — saves 6 of 16 vertices)",
        base.stats.exact_computations
    );

    // --- Example 4 / Fig. 3: OptBSearch, k = 5, θ = 1 ---
    println!("\nExample 4 (OptBSearch, k=5, θ=1):");
    let opt = opt_bsearch(&g, 5, OptParams { theta: 1.0 });
    print!("  R = {{");
    for (v, cbv) in &opt.entries {
        print!(" {}:{:.3}", toy::label(*v), cbv);
    }
    println!(" }}");
    println!(
        "  exact computations: {} (paper trace: 6; our engine shares all\n  \
         triangle information, so the dynamic bound is at least as tight)",
        opt.stats.exact_computations
    );

    // --- Example 5: LocalInsert of (i,k) ---
    println!("\nExample 5 (insert (i,k), LocalInsert):");
    let mut local = LocalIndex::new(&g);
    local.insert_edge(ids::I, ids::K);
    row('k', local.cb(ids::K), "1/2");
    row('i', local.cb(ids::I), "10.5");
    row('f', local.cb(ids::F), "9.5");

    // --- Example 6: LocalDelete of (c,g) ---
    println!("\nExample 6 (delete (c,g), LocalDelete — corrected values):");
    let mut local = LocalIndex::new(&g);
    local.delete_edge(ids::C, ids::G);
    row('g', local.cb(ids::G), "1/2");
    row(
        'c',
        local.cb(ids::C),
        "14/3; the paper prints 55/6, which contradicts its own Lemma 6",
    );
    row(
        'e',
        local.cb(ids::E),
        "13/2; the paper prints 9/2, which contradicts its own Lemma 7",
    );

    // --- Example 7: LazyInsert with k = 1 ---
    println!("\nExample 7 (LazyInsert, k=1):");
    let mut lazy = LazyTopK::new(&g, 1);
    let before = lazy.top_k();
    println!(
        "  before: top-1 = {} ({:.3})",
        toy::label(before[0].0),
        before[0].1
    );
    lazy.insert_edge(ids::I, ids::K);
    let after = lazy.top_k();
    println!(
        "  after:  top-1 = {} ({:.3})   [paper: i with 10.5]",
        toy::label(after[0].0),
        after[0].1
    );
    println!(
        "  lazy skips: {}, recomputations: {}",
        lazy.stats.lazy_skips, lazy.stats.recomputations
    );

    // --- Example 8: LazyDelete with k = 1 and k = 12 ---
    println!("\nExample 8 (LazyDelete):");
    let mut lazy = LazyTopK::new(&g, 1);
    lazy.delete_edge(ids::C, ids::G);
    let after = lazy.top_k();
    println!(
        "  k=1: top-1 = {} ({:.3})   [paper: f stays on top]",
        toy::label(after[0].0),
        after[0].1
    );
    let mut lazy12 = LazyTopK::new(&g, 12);
    lazy12.delete_edge(ids::C, ids::G);
    let mut members: Vec<char> = lazy12.top_k().iter().map(|e| toy::label(e.0)).collect();
    members.sort_unstable();
    println!("  k=12: R = {members:?}   [paper: V − {{u,v,y,z}}]");
}
