//! Quickstart: load or build a graph, find the top-k ego-betweenness
//! vertices, and inspect them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use egobtw::prelude::*;

#[rustfmt::skip]
const EDGES: [(u32, u32); 8] = [
    (0, 1), (0, 2), (1, 2), // a triangle ...
    (2, 3),                 // ... bridged by vertex 2/3 ...
    (3, 4), (3, 5), (4, 5), // ... to another triangle,
    (5, 6),                 // with a pendant tail.
];

fn main() {
    // 1. Build a graph. Any edge list works — `GraphBuilder` dedupes and
    //    drops self-loops; `egobtw::graph::io` reads SNAP files directly.
    let mut b = GraphBuilder::new();
    for (u, v) in EDGES {
        b.add_edge(u, v);
    }
    let g = b.build();
    println!("graph: n={} m={}", g.n(), g.m());

    // 2. Top-k search. OptBSearch is the paper's fast algorithm; its
    //    dynamic upper bound prunes vertices that cannot reach the top-k.
    let k = 3;
    let result = opt_bsearch(&g, k, OptParams::default());
    println!("\ntop-{k} ego-betweenness:");
    for (rank, (v, cb)) in result.entries.iter().enumerate() {
        println!("  #{:<2} vertex {v:<3} CB = {cb:.4}", rank + 1);
    }
    println!(
        "(computed {} of {} vertices exactly; {} pruned by bounds)",
        result.stats.exact_computations,
        g.n(),
        result.stats.pruned
    );

    // 3. Spot-check a single vertex with the direct per-ego formula.
    let v = result.entries[0].0;
    println!(
        "\ndirect recomputation of vertex {v}: {}",
        ego_betweenness_of(&g, v)
    );

    // 4. Exact scores for everyone (the k = n path), if you need them all.
    let (all, _) = compute_all(&g);
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    println!("mean CB over all vertices: {mean:.4}");
}
