//! Scenario from the paper's introduction: find the influential users of a
//! social network — the vertices that control information flow between
//! their contacts — without paying for full betweenness centrality.
//!
//! Generates a Barabási–Albert social network, runs TopEBW (OptBSearch)
//! and TopBW (parallel Brandes), and reports the runtime gap and the
//! overlap of the two answers (the paper's Exp-6 in miniature).
//!
//! ```text
//! cargo run --release --example social_influencers
//! ```

use egobtw::prelude::*;
use std::time::Instant;

fn main() {
    let n = 5_000;
    let g = egobtw::gen::barabasi_albert(n, 4, 42);
    println!(
        "social network (Barabási–Albert): n={} m={} dmax={}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    let k = 20;

    let t0 = Instant::now();
    let ebw = opt_bsearch(&g, k, OptParams::default());
    let t_ebw = t0.elapsed();

    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let t0 = Instant::now();
    let bw = top_bw(&g, k, threads);
    let t_bw = t0.elapsed();

    println!("\ntop-{k} by ego-betweenness (TopEBW, {t_ebw:.2?}):");
    println!("{:<6} {:>8} {:>12}", "vertex", "degree", "CB");
    for (v, cb) in &ebw.entries {
        println!("{v:<6} {:>8} {cb:>12.2}", g.degree(*v));
    }

    println!("\ntop-{k} by betweenness (TopBW, Brandes × {threads} threads, {t_bw:.2?}):");
    println!("{:<6} {:>8} {:>12}", "vertex", "degree", "BT");
    for (v, bt) in &bw {
        println!("{v:<6} {:>8} {bt:>12.1}", g.degree(*v));
    }

    let ev: Vec<VertexId> = ebw.entries.iter().map(|e| e.0).collect();
    let bv: Vec<VertexId> = bw.iter().map(|e| e.0).collect();
    println!(
        "\noverlap |BW ∩ EBW| / k = {:.0}%   speedup = {:.0}×",
        100.0 * overlap_fraction(&ev, &bv),
        t_bw.as_secs_f64() / t_ebw.as_secs_f64().max(1e-9)
    );
    println!(
        "(ego-betweenness pruned to {} exact computations out of {n} vertices)",
        ebw.stats.exact_computations
    );
}
