//! Streaming maintenance: keep the top-k ego-betweenness vertices current
//! while edges arrive and disappear (Section IV of the paper).
//!
//! Simulates a communication network under churn: a burst of new contacts,
//! then link failures, with the lazy maintainer tracking the top-k and the
//! local index tracking every vertex — and cross-checking each other.
//!
//! ```text
//! cargo run --release --example dynamic_stream
//! ```

use egobtw::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let g = egobtw::gen::rmat(12, 4, egobtw::gen::rmat::RmatParams::skewed(), 7);
    println!(
        "communication network (R-MAT): n={} m={} dmax={}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    let k = 10;
    let mut lazy = LazyTopK::new(&g, k);
    let mut local = LocalIndex::new(&g);
    let mut rng = StdRng::seed_from_u64(99);

    let updates = 2_000;
    let n = g.n() as u32;
    let mut inserted: Vec<(u32, u32)> = Vec::new();

    let t0 = Instant::now();
    for step in 0..updates {
        // 70% inserts (network growth), 30% deletes (link failures).
        if rng.random_bool(0.7) || inserted.is_empty() {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v && !lazy.graph().has_edge(u, v) {
                lazy.insert_edge(u, v);
                local.insert_edge(u, v);
                inserted.push((u, v));
            }
        } else {
            let (u, v) = inserted.swap_remove(rng.random_range(0..inserted.len()));
            if lazy.graph().has_edge(u, v) {
                lazy.delete_edge(u, v);
                local.delete_edge(u, v);
            }
        }
        if (step + 1) % 500 == 0 {
            let top = lazy.top_k();
            println!(
                "\nafter {:>5} updates (m = {}):",
                step + 1,
                lazy.graph().m()
            );
            for (rank, (v, cb)) in top.iter().take(5).enumerate() {
                println!("  #{:<2} vertex {v:<6} CB = {cb:.3}", rank + 1);
            }
            // The two maintainers must agree on the top-k values. The
            // comparison is relative: CB values here reach ~1e5 as sums of
            // thousands of 1/(c+1) terms, and the incremental updates
            // legitimately round differently from a batch recompute.
            let lv: Vec<f64> = top.iter().map(|e| e.1).collect();
            let tv: Vec<f64> = local.top_k(k).iter().map(|e| e.1).collect();
            assert!(
                lv.iter()
                    .zip(&tv)
                    .all(|(a, b)| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))),
                "maintainers diverged"
            );
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "\n{updates} updates in {elapsed:.2?} ({:.1} µs/update across both maintainers)",
        elapsed.as_micros() as f64 / updates as f64
    );
    println!(
        "lazy maintainer: {} recomputations, {} lazy skips, {} swaps",
        lazy.stats.recomputations, lazy.stats.lazy_skips, lazy.stats.swaps
    );
}
