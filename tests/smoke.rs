//! Cross-crate smoke tests for the umbrella crate: one per member-crate
//! entry point, all agreeing on Zachary's karate club. These run under
//! tier-1 (`cargo test`) and catch wiring mistakes between the crates that
//! per-crate unit tests cannot see.

use egobtw::prelude::*;

const K: usize = 5;

/// Karate club plus its exact per-vertex ego-betweenness from the naive
/// per-ego oracle, which every other algorithm must reproduce.
fn karate_with_oracle() -> (egobtw::graph::CsrGraph, Vec<f64>) {
    let g = egobtw::gen::classic::karate_club();
    let oracle = compute_all_naive(&g);
    (g, oracle)
}

/// Sorts an all-vertex score vector into a top-k list, breaking score ties
/// by vertex id so comparisons are deterministic.
fn topk_of(scores: &[f64], k: usize) -> Vec<(u32, f64)> {
    let mut ranked: Vec<(u32, f64)> = scores
        .iter()
        .enumerate()
        .map(|(v, &s)| (v as u32, s))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

fn assert_same_topk(label: &str, got: &[(u32, f64)], want: &[(u32, f64)]) {
    assert_eq!(got.len(), want.len(), "{label}: wrong k");
    for (i, ((gv, gs), (wv, ws))) in got.iter().zip(want).enumerate() {
        assert!(
            (gs - ws).abs() < 1e-9,
            "{label}: rank {i} score {gs} != {ws} (vertices {gv}/{wv})"
        );
    }
    // Vertex sets must agree too (order may differ only within exact ties,
    // which topk_of and the searches both break by id).
    let mut gv: Vec<u32> = got.iter().map(|e| e.0).collect();
    let mut wv: Vec<u32> = want.iter().map(|e| e.0).collect();
    gv.sort_unstable();
    wv.sort_unstable();
    assert_eq!(gv, wv, "{label}: different top-{} vertex sets", want.len());
}

#[test]
fn core_searches_agree_with_naive_on_karate() {
    let (g, oracle) = karate_with_oracle();
    let want = topk_of(&oracle, K);

    let base = base_bsearch(&g, K);
    assert_same_topk("base_bsearch", &base.entries, &want);

    let opt = opt_bsearch(&g, K, OptParams::default());
    assert_same_topk("opt_bsearch", &opt.entries, &want);

    let (all, _) = compute_all(&g);
    assert_same_topk("compute_all", &topk_of(&all, K), &want);
}

#[test]
fn parallel_pebw_agrees_with_naive_on_karate() {
    let (g, oracle) = karate_with_oracle();
    for threads in [1, 4] {
        for (name, scores) in [
            ("vertex_pebw", vertex_pebw(&g, threads)),
            ("edge_pebw", edge_pebw(&g, threads)),
        ] {
            for (v, (got, want)) in scores.iter().zip(&oracle).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9,
                    "{name} t={threads} vertex {v}: {got} != {want}"
                );
            }
        }
    }
}

#[test]
fn dynamic_indices_match_static_recompute_on_karate() {
    let g = egobtw::gen::classic::karate_club();

    // Exact local index straight after construction.
    let local = LocalIndex::new(&g);
    let want = opt_bsearch(&g, K, OptParams::default());
    assert_same_topk("LocalIndex::top_k", &local.top_k(K), &want.entries);

    // Lazy index after a round-trip edge update must match a fresh search.
    let mut lazy = LazyTopK::new(&g, K);
    assert!(lazy.insert_edge(0, 9), "edge (0,9) should be insertable");
    assert!(lazy.delete_edge(0, 9), "edge (0,9) should be deletable");
    assert_same_topk("LazyTopK::top_k", &lazy.top_k(), &want.entries);
}

#[test]
fn baseline_and_graph_substrate_smoke() {
    let g = egobtw::gen::classic::karate_club();
    assert_eq!((g.n(), g.m()), (34, 78), "karate club shape");

    // Brandes sequential and parallel agree; vertex 0 (the instructor) is
    // in the top betweenness set of the club.
    let bc = betweenness(&g);
    let bc_par = betweenness_parallel(&g, 4);
    for (a, b) in bc.iter().zip(&bc_par) {
        assert!((a - b).abs() < 1e-9);
    }
    let top = top_bw(&g, K, 2);
    assert!(
        top.iter().any(|e| e.0 == 0),
        "instructor missing from TopBW"
    );

    // Overlap metric wiring: identical lists overlap fully.
    let ids: Vec<u32> = top.iter().map(|e| e.0).collect();
    assert!((overlap_fraction(&ids, &ids) - 1.0).abs() < 1e-12);
}

#[test]
fn gen_crate_generators_feed_the_searches() {
    // Each generator family produces a graph the searches accept.
    let graphs = [
        ("gnm", egobtw::gen::gnm(80, 160, 1)),
        ("ba", egobtw::gen::barabasi_albert(80, 3, 2)),
        ("ws", egobtw::gen::watts_strogatz(80, 4, 0.1, 3)),
        (
            "rmat",
            egobtw::gen::rmat(6, 4, egobtw::gen::rmat::RmatParams::skewed(), 4),
        ),
    ];
    for (name, g) in graphs {
        let naive = topk_of(&compute_all_naive(&g), 3);
        let opt = opt_bsearch(&g, 3, OptParams::default());
        assert_same_topk(name, &opt.entries, &naive);
    }
}
