//! VertexPEBW and EdgePEBW.

use egobtw_core::smap::PairMap;
use egobtw_graph::{CsrGraph, DegreeOrder, EdgeSet, OrientedGraph, VertexId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Work pulled per `fetch_add`, amortizing cursor contention without
/// hurting balance (items are cheap; 64 keeps the tail short).
const CHUNK: usize = 64;

/// Shared mutable state: one locked map per vertex.
struct SharedMaps {
    maps: Vec<Mutex<PairMap>>,
}

impl SharedMaps {
    fn new(n: usize) -> Self {
        SharedMaps {
            maps: (0..n).map(|_| Mutex::new(PairMap::default())).collect(),
        }
    }

    /// Processes one undirected edge `(a,b)` given its sorted common
    /// neighborhood. Locks are acquired one map at a time.
    #[inline]
    fn apply_edge(&self, edges: &EdgeSet, a: VertexId, b: VertexId, common: &[VertexId]) {
        for &x in common {
            self.maps[x as usize].lock().set_edge(a, b);
        }
        if common.len() < 2 {
            return;
        }
        // Batch this edge's connector bumps per endpoint map: one lock
        // acquisition per endpoint instead of one per diamond.
        let mut map_a = self.maps[a as usize].lock();
        for (i, &x) in common.iter().enumerate() {
            for &y in common.iter().skip(i + 1) {
                if !edges.contains(x, y) {
                    map_a.add_connector(x, y);
                }
            }
        }
        drop(map_a);
        let mut map_b = self.maps[b as usize].lock();
        for (i, &x) in common.iter().enumerate() {
            for &y in common.iter().skip(i + 1) {
                if !edges.contains(x, y) {
                    map_b.add_connector(x, y);
                }
            }
        }
    }

    /// Finalizes `CB` for every vertex in parallel. Uses the deterministic
    /// sorted-entry summation, so the result is bit-identical to
    /// sequential `compute_all` at every thread count — the map *content*
    /// is schedule-independent, and sorting fixes the float association.
    ///
    /// A vertex's cost here scales with its ego-net (hub rows hold far
    /// more pairs than leaf rows), so static `n/threads` ranges strand
    /// every thread behind whichever one drew the hubs — the measured
    /// cause of `edge_pebw` t=4 regressing below t=2 on hub-heavy graphs.
    /// A fine-grained atomic cursor self-balances instead; each slot is
    /// written exactly once, so routing the f64 bits through `AtomicU64`
    /// changes nothing about the value.
    fn finalize(self, g: &CsrGraph, threads: usize) -> Vec<f64> {
        let n = g.n();
        if n == 0 {
            return Vec::new();
        }
        let cb: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let cursor = AtomicUsize::new(0);
        let maps = &self.maps;
        std::thread::scope(|s| {
            for _ in 0..threads.max(1) {
                s.spawn(|| loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for v in start..(start + CHUNK).min(n) {
                        let val = maps[v].lock().cb_given_degree_det(g.degree(v as VertexId));
                        cb[v].store(val.to_bits(), Ordering::Relaxed);
                    }
                });
            }
        });
        cb.into_iter()
            .map(|bits| f64::from_bits(bits.into_inner()))
            .collect()
    }
}

/// **VertexPEBW**: vertices are the unit of work; each processes the edges
/// it owns under the `≺` orientation (hubs own many — skewed load).
pub fn vertex_pebw(g: &CsrGraph, threads: usize) -> Vec<f64> {
    assert!(threads >= 1);
    let order = DegreeOrder::new(g);
    let og = OrientedGraph::new(g, &order);
    let edges = EdgeSet::from_graph(g);
    let shared = SharedMaps::new(g.n());
    let cursor = AtomicUsize::new(0);
    let n = g.n();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut common: Vec<VertexId> = Vec::new();
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + CHUNK).min(n) {
                        let u = order.at(i);
                        for &v in og.out_neighbors(u) {
                            common.clear();
                            g.common_neighbors_into(u, v, &mut common);
                            shared.apply_edge(&edges, u, v, &common);
                        }
                    }
                }
            });
        }
    });
    shared.finalize(g, threads)
}

/// **EdgePEBW**: individual oriented edges are the unit of work — the
/// balanced variant.
pub fn edge_pebw(g: &CsrGraph, threads: usize) -> Vec<f64> {
    assert!(threads >= 1);
    let edge_list: Vec<(VertexId, VertexId)> = g.edges().collect();
    let edges = EdgeSet::from_graph(g);
    let shared = SharedMaps::new(g.n());
    let cursor = AtomicUsize::new(0);
    let m = edge_list.len();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut common: Vec<VertexId> = Vec::new();
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= m {
                        break;
                    }
                    for &(a, b) in &edge_list[start..(start + CHUNK).min(m)] {
                        common.clear();
                        g.common_neighbors_into(a, b, &mut common);
                        shared.apply_edge(&edges, a, b, &common);
                    }
                }
            });
        }
    });
    shared.finalize(g, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_core::compute_all;
    use egobtw_gen::{barabasi_albert, classic, gnp, toy};

    fn assert_matches_sequential(g: &CsrGraph, threads: usize) {
        let (seq, _) = compute_all(g);
        for (name, par) in [
            ("vertex", vertex_pebw(g, threads)),
            ("edge", edge_pebw(g, threads)),
        ] {
            assert_eq!(par.len(), seq.len());
            for (v, (a, b)) in par.iter().zip(&seq).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{name} t={threads} vertex {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn single_thread_matches() {
        assert_matches_sequential(&toy::paper_graph(), 1);
        assert_matches_sequential(&classic::karate_club(), 1);
    }

    #[test]
    fn multi_thread_matches() {
        for threads in [2, 4, 8] {
            assert_matches_sequential(&classic::karate_club(), threads);
            assert_matches_sequential(&gnp(60, 0.12, 3), threads);
        }
    }

    #[test]
    fn skewed_graph_matches() {
        let g = barabasi_albert(400, 4, 9);
        assert_matches_sequential(&g, 4);
    }

    #[test]
    fn repeated_runs_agree() {
        // Interleaving must not change results beyond float association.
        let g = gnp(80, 0.1, 5);
        let a = edge_pebw(&g, 4);
        let b = edge_pebw(&g, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn thread_sweep_bit_identical_on_community_graphs() {
        // The deterministic sorted-entry finalize makes the parallel
        // output *exactly* equal to sequential `compute_all` — same bits,
        // no epsilon — at every thread count, because the shared maps'
        // final content is schedule-independent and the summation order
        // is fixed. Community graphs are the triangle-dense regime where
        // the most cross-thread map traffic happens.
        use egobtw_gen::community::PlantedPartition;
        for seed in 0..3u64 {
            let g = egobtw_gen::planted_partition(
                PlantedPartition {
                    communities: 6,
                    community_size: 10,
                    p_in: 0.6,
                    cross_edges_per_vertex: 1.0,
                },
                seed,
            );
            let (seq, _) = compute_all(&g);
            for threads in [1usize, 2, 4] {
                assert_eq!(
                    vertex_pebw(&g, threads),
                    seq,
                    "vertex_pebw t={threads} seed={seed} diverged bitwise"
                );
                assert_eq!(
                    edge_pebw(&g, threads),
                    seq,
                    "edge_pebw t={threads} seed={seed} diverged bitwise"
                );
            }
        }
    }

    #[test]
    fn thread_sweep_bit_identical_across_repeats() {
        // Re-running at the same thread count must also be bit-stable:
        // scheduling noise may reorder map construction, never content.
        let g = egobtw_gen::planted_partition(
            egobtw_gen::community::PlantedPartition {
                communities: 5,
                community_size: 9,
                p_in: 0.7,
                cross_edges_per_vertex: 0.8,
            },
            11,
        );
        let first = edge_pebw(&g, 4);
        for _ in 0..3 {
            assert_eq!(edge_pebw(&g, 4), first);
            assert_eq!(vertex_pebw(&g, 4), first);
        }
    }

    #[test]
    fn empty_and_tiny() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(vertex_pebw(&g, 2).is_empty());
        assert!(edge_pebw(&g, 2).is_empty());
        let g1 = CsrGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(vertex_pebw(&g1, 3), vec![0.0, 0.0]);
    }
}
