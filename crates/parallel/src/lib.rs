//! Parallel all-vertex ego-betweenness (Section V).
//!
//! Both algorithms distribute the edge-centric kernel of
//! [`egobtw_core::compute_all`]: each undirected edge `(a,b)` is processed
//! exactly once — intersect the neighborhoods, write the triangle edge
//! entries, bump connector counts for the diamond wings. Per-vertex maps
//! are guarded by `parking_lot::Mutex` (the paper: "we should lock the map
//! S when it is updated"); locks are taken one at a time, so there is no
//! deadlock potential.
//!
//! * [`vertex_pebw`] — **VertexPEBW**: the work unit is a vertex, which
//!   owns its out-edges under the total order `≺`. Because orientation
//!   points from high degree to low, hubs own huge edge bundles — the
//!   skewed load the paper observes;
//! * [`edge_pebw`] — **EdgePEBW**: the work unit is a single oriented
//!   edge, pulled from a shared atomic cursor in small chunks — balanced
//!   load, and the faster of the two (Fig. 10).
//!
//! Because all shared state is integer counts, the final values are
//! independent of thread interleaving up to float summation order inside
//! each map (bounded by 1e-9 in tests against the sequential kernel).

pub mod pebw;

pub use pebw::{edge_pebw, vertex_pebw};
