//! Thread-scaling check for `edge_pebw` on a hub-heavy graph — the
//! workload where the uniform-chunk finalize used to make t=4 slower than
//! t=2. All thread counts are timed inside one process run, so the
//! comparison is insulated from machine-level noise between invocations.
//!
//! ```text
//! cargo run --release -p egobtw-parallel --example pebw_scaling -- [rounds]
//! ```

use egobtw_parallel::edge_pebw;
use std::time::Instant;

fn median_ns(rounds: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..rounds)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    // Preferential attachment → a few hundred hubs own most edges.
    let g = egobtw_gen::barabasi_albert(12_000, 4, 7);
    println!(
        "graph: n={} m={} (BA hub-heavy), rounds={rounds}",
        g.n(),
        g.m()
    );
    edge_pebw(&g, 4); // warmup
    let mut t1 = 0u128;
    for threads in [1usize, 2, 4, 8] {
        let med = median_ns(rounds, || {
            std::hint::black_box(edge_pebw(&g, threads));
        });
        if threads == 1 {
            t1 = med;
        }
        println!(
            "edge_pebw t={threads}: median {:9.1} ms  speedup vs t=1: {:4.2}x",
            med as f64 / 1e6,
            t1 as f64 / med as f64
        );
    }
}
