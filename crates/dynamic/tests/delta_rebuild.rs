//! Rebuild-equivalence property tests for `DeltaIndex`.
//!
//! The contract: after **every prefix** of a seeded `EdgeOp` stream, the
//! incrementally maintained `DeltaIndex` agrees with a `LocalIndex` built
//! *from scratch* on the replayed graph — per-vertex scores at the
//! repo-wide relative tolerance, and the maintained top-k judged by the
//! conformance harness's tie-aware boundary comparator. Streams come from
//! the conformance scenario generator, so all 8 `gen` families are
//! exercised, and every stream is extended with a scripted tail covering
//! the delete-reinsert, duplicate-edge, and self-loop edge cases.

use conformance::{approx_eq, check_topk, scenario, Case, FAMILIES, REL_TOL};
use egobtw_dynamic::{DeltaIndex, EdgeOp, LocalIndex};
use egobtw_graph::{DynGraph, VertexId};

/// The scripted edge-case tail: a delete-reinsert cycle on (0,1), a
/// duplicate insert, and self-loop ops — all well-defined no-ops or flips
/// regardless of the stream's final state.
fn edge_case_tail() -> Vec<EdgeOp> {
    vec![
        EdgeOp::Insert(0, 1), // may or may not apply
        EdgeOp::Insert(0, 1), // duplicate: must be a no-op
        EdgeOp::Delete(0, 1), // delete...
        EdgeOp::Insert(0, 1), // ...reinsert
        EdgeOp::Insert(0, 0), // self-loop: rejected
        EdgeOp::Delete(1, 1), // self-loop delete: rejected
    ]
}

/// One case: replay the stream op by op; after each prefix compare the
/// maintained index against a from-scratch rebuild.
fn check_case_prefixes(case: &Case) {
    let g0 = case.initial();
    let mut ops = case.ops.clone();
    if case.n >= 2 {
        ops.extend(edge_case_tail());
    }
    let mut delta = DeltaIndex::new(&g0, case.k);
    let mut mirror = DynGraph::from_csr(&g0);
    for (step, &op) in ops.iter().enumerate() {
        let changed = delta.apply(op);
        let mirrored = match op {
            EdgeOp::Insert(u, v) => mirror.insert_edge(u, v),
            EdgeOp::Delete(u, v) => mirror.remove_edge(u, v),
        };
        assert_eq!(
            changed, mirrored,
            "[{}] op {step} ({op:?}): applied-flag diverges from the mirror",
            case.label
        );
        // From-scratch oracle on the replayed prefix.
        let fresh = LocalIndex::new(&mirror.to_csr());
        let truth = fresh.all_cb();
        for v in 0..case.n as VertexId {
            assert!(
                approx_eq(delta.cb(v), truth[v as usize], REL_TOL),
                "[{}] op {step} ({op:?}): CB({v}) = {} but rebuild says {}",
                case.label,
                delta.cb(v),
                truth[v as usize]
            );
        }
        // Tie-aware boundary check of the maintained top-k set.
        if let Err(why) = check_topk(truth, &delta.top_k(), case.k, REL_TOL) {
            panic!(
                "[{}] op {step} ({op:?}): top-k violation: {why}",
                case.label
            );
        }
    }
    delta.validate();
}

/// Picks, per family, the first seeded scenario that carries a non-empty
/// update stream, and runs the full prefix check on it.
#[test]
fn every_prefix_matches_fresh_rebuild_across_families() {
    let seed = 1042u64;
    let mut covered: Vec<&str> = Vec::new();
    for idx in 0..64 {
        let case = scenario(seed, idx);
        let family = case.label.split(['[', '-']).next().unwrap().to_string();
        let Some(&fam) = FAMILIES.iter().find(|&&f| f == family) else {
            panic!("[{}] unknown family {family}", case.label);
        };
        if covered.contains(&fam) || case.ops.is_empty() {
            continue;
        }
        check_case_prefixes(&case);
        covered.push(fam);
        if covered.len() == FAMILIES.len() {
            break;
        }
    }
    assert_eq!(
        covered.len(),
        FAMILIES.len(),
        "stream scenarios must cover all families, got {covered:?}"
    );
}

/// The same contract at every k regime of the sweep, on one dense-ish
/// case where boundary ties actually occur.
#[test]
fn prefix_equivalence_across_k_regimes() {
    let seed = 7u64;
    // Find a streamed scenario, then re-run it at each k of the sweep.
    let base = (0..16)
        .map(|idx| scenario(seed, idx))
        .find(|c| !c.ops.is_empty() && c.n >= 6)
        .expect("sweep contains streamed scenarios");
    for k in conformance::scenario::k_sweep(base.n) {
        let case = Case {
            k,
            label: format!("{}-k{k}", base.label),
            ..base.clone()
        };
        check_case_prefixes(&case);
    }
}

/// Degenerate shapes the generator rarely emits: empty graph, single
/// vertex, and a stream that empties the graph and refills it.
#[test]
fn degenerate_graphs_and_full_teardown() {
    let empty = Case {
        n: 0,
        edges: vec![],
        k: 3,
        ops: vec![],
        label: "empty".into(),
    };
    check_case_prefixes(&empty);

    let lone = Case {
        n: 1,
        edges: vec![],
        k: 1,
        ops: vec![],
        label: "lone".into(),
    };
    check_case_prefixes(&lone);

    // Tear a triangle-rich graph down to nothing, then rebuild it.
    let g0 = egobtw_gen::classic::barbell(4);
    let edges: Vec<(VertexId, VertexId)> = g0.edges().collect();
    let mut ops: Vec<EdgeOp> = edges.iter().map(|&(u, v)| EdgeOp::Delete(u, v)).collect();
    ops.extend(edges.iter().map(|&(u, v)| EdgeOp::Insert(u, v)));
    let case = Case {
        n: g0.n(),
        edges,
        k: 3,
        ops,
        label: "barbell-teardown".into(),
    };
    check_case_prefixes(&case);
}
