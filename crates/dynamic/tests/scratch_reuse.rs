//! Regression tests for the scratch-buffer reuse in the maintainers'
//! update paths.
//!
//! `LocalIndex`, `LazyTopK`, and `DeltaIndex` now route per-op
//! common-neighbor/neighbor enumeration through reused scratch buffers
//! instead of fresh allocations. Buffer reuse is exactly the kind of
//! change that can silently corrupt results (a stale element surviving a
//! missing `clear`), so these tests pin the replay output of all three
//! maintainers against from-scratch rebuilds on dense seeded streams
//! where the buffers are taken and refilled thousands of times at
//! varying sizes.

use conformance::{approx_eq, check_topk, REL_TOL};
use egobtw_dynamic::{replay_graph, DeltaIndex, EdgeOp, LazyTopK, LocalIndex};
use egobtw_gen::gnp;
use egobtw_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeded_stream(n: usize, len: usize, seed: u64) -> Vec<EdgeOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let u = rng.random_range(0..n as VertexId);
        let v = rng.random_range(0..n as VertexId);
        if u == v {
            continue;
        }
        // Blind flips: duplicates and absent deletes are intentionally in
        // the mix, exercising the early-return paths around the take/put.
        if rng.random_bool(0.5) {
            ops.push(EdgeOp::Insert(u, v));
        } else {
            ops.push(EdgeOp::Delete(u, v));
        }
    }
    ops
}

#[test]
fn local_replay_identical_to_fresh_rebuild() {
    for seed in [3u64, 99] {
        let g0 = gnp(30, 0.25, seed);
        let ops = seeded_stream(30, 400, seed);
        let replayed = LocalIndex::replay(&g0, &ops);
        let fresh = LocalIndex::new(&replay_graph(&g0, &ops).to_csr());
        for v in 0..30u32 {
            assert!(
                approx_eq(replayed.cb(v), fresh.cb(v), REL_TOL),
                "seed {seed}: CB({v}) {} vs fresh {}",
                replayed.cb(v),
                fresh.cb(v)
            );
        }
        replayed.validate();
    }
}

#[test]
fn lazy_replay_identical_to_fresh_rebuild() {
    for (seed, k) in [(3u64, 1usize), (99, 7)] {
        let g0 = gnp(30, 0.25, seed);
        let ops = seeded_stream(30, 400, seed);
        let mut replayed = LazyTopK::replay(&g0, k, &ops);
        let fresh = LocalIndex::new(&replay_graph(&g0, &ops).to_csr());
        if let Err(why) = check_topk(fresh.all_cb(), &replayed.top_k(), k, REL_TOL) {
            panic!("seed {seed} k={k}: {why}");
        }
    }
}

#[test]
fn delta_replay_identical_to_fresh_rebuild() {
    for (seed, k) in [(3u64, 1usize), (99, 7)] {
        let g0 = gnp(30, 0.25, seed);
        let ops = seeded_stream(30, 400, seed);
        let replayed = DeltaIndex::replay(&g0, k, &ops);
        let fresh = LocalIndex::new(&replay_graph(&g0, &ops).to_csr());
        for v in 0..30u32 {
            assert!(
                approx_eq(replayed.cb(v), fresh.cb(v), REL_TOL),
                "seed {seed}: CB({v}) {} vs fresh {}",
                replayed.cb(v),
                fresh.cb(v)
            );
        }
        if let Err(why) = check_topk(fresh.all_cb(), &replayed.top_k(), k, REL_TOL) {
            panic!("seed {seed} k={k}: {why}");
        }
        replayed.validate();
    }
}

#[test]
fn interleaved_maintainers_share_nothing() {
    // Two indices fed the same ops in lockstep must not interfere through
    // any shared state (there is none — this pins it).
    let g0 = gnp(24, 0.3, 11);
    let ops = seeded_stream(24, 200, 11);
    let mut a = LocalIndex::new(&g0);
    let mut b = DeltaIndex::new(&g0, 5);
    for &op in &ops {
        a.apply(op);
        b.apply(op);
        for v in 0..24u32 {
            assert!(
                approx_eq(a.cb(v), b.cb(v), REL_TOL),
                "CB({v}) diverged: {} vs {}",
                a.cb(v),
                b.cb(v)
            );
        }
    }
}
