//! Ego-betweenness maintenance under edge updates (Section IV).
//!
//! Three maintainers, trading memory for work:
//!
//! * [`local::LocalIndex`] — **LocalInsert / LocalDelete** (Algorithms
//!   4–5): keeps the complete per-vertex maps `S_u` plus every `CB`, and
//!   applies exact delta updates. Observation 1 bounds the blast radius of
//!   an edge flip `(u,v)` to `{u, v} ∪ (N(u) ∩ N(v))`; Lemmas 4–7 give the
//!   per-pair deltas. Memory `O(Σ d(u)²)`, update cost local.
//! * [`lazy::LazyTopK`] — **LazyInsert / LazyDelete** (Algorithm 6): keeps
//!   only `O(n)` state (one value + staleness flag per vertex) and the
//!   current top-k. Monotonicity facts (insertion can only *decrease* a
//!   common neighbor's `CB`; deletion can only *increase* it; endpoint
//!   bounds move with the degree) let most affected vertices be marked
//!   stale instead of recomputed; exact recomputation happens on demand via
//!   the per-ego kernel.
//! * [`delta::DeltaIndex`] — dependency-delta maintenance: the full pair
//!   stores of `LocalIndex` (exact `CB` everywhere) *plus* an incrementally
//!   re-certified top-k set like `LazyTopK`'s, so an update costs
//!   O(affected pairs) and publishing the answer costs O(k log k) — no
//!   per-publish full sort. Its patch enumeration recounts affected terms
//!   directly from adjacency instead of reusing the Lemma 4–7 helper
//!   decomposition, making it an independent implementation the
//!   conformance net can diff against the other two.
//!
//! Both are verified against from-scratch recomputation after every
//! update in the property-test suites.
//!
//! [`stream`] gives updates a first-class data form ([`EdgeOp`]) with
//! replay constructors on both maintainers, so the conformance harness
//! can treat "maintainer fed a stream" as just another engine.

pub mod delta;
pub mod lazy;
pub mod local;
pub mod stream;

pub use delta::{DeltaFault, DeltaIndex, DeltaStats};
pub use lazy::{LazyTopK, TopKPeek};
pub use local::LocalIndex;
pub use stream::{replay_graph, EdgeOp};
