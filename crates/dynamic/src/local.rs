//! LocalInsert / LocalDelete (Algorithms 4–5): exact maintenance of every
//! vertex's ego-betweenness under edge updates.
//!
//! The index keeps the same map invariant as the static engine, for every
//! vertex `w` and unordered pair `{x,y} ⊆ N(w)`:
//!
//! * `(x,y) ∈ E` ⟺ `S_w(x,y) = 0`;
//! * `(x,y) ∉ E` with `c > 0` connectors inside `N(w)` ⟺ `S_w(x,y) = c`;
//! * `(x,y) ∉ E` with no connectors ⟺ no entry.
//!
//! Every mutation flows through contribution-tracked helpers, so
//! `CB[w] = Σ contributions` is maintained as a running total — the
//! Lemma 4–7 deltas fall out automatically instead of being transcribed
//! case by case (the transcription in the paper's own Example 6 has two
//! sign errors; see DESIGN.md §4).

use egobtw_core::smap::SMapStore;
use egobtw_graph::{CsrGraph, DynGraph, VertexId};

/// Contribution of a pair to its ego's `CB`, given the stored value
/// (`None` = non-adjacent, zero connectors).
#[inline]
fn contrib(val: Option<u32>) -> f64 {
    match val {
        None => 1.0,
        Some(0) => 0.0,
        Some(c) => 1.0 / (f64::from(c) + 1.0),
    }
}

/// Scratch buffers reused across updates, so a replayed stream does not
/// pay one round of allocations per op (capacity survives, contents do
/// not).
#[derive(Default)]
struct Scratch {
    common: Vec<VertexId>,
    xs: Vec<VertexId>,
    nbrs: Vec<VertexId>,
}

/// Exact dynamic index over all vertices.
pub struct LocalIndex {
    g: DynGraph,
    store: SMapStore,
    cb: Vec<f64>,
    scratch: Scratch,
}

impl LocalIndex {
    /// Builds the index from a static graph: one shared edge-centric pass
    /// (`build_store`, routed through the hybrid intersection kernels) to
    /// populate the maps.
    pub fn new(g: &CsrGraph) -> Self {
        let (store, _) = egobtw_core::compute_all::build_store(g);
        // Deterministic finalize, so the starting values are bit-identical
        // to `compute_all` (and hence to a fresh `LazyTopK`).
        let cb = (0..g.n() as VertexId)
            .map(|v| store.map(v).cb_given_degree_det(g.degree(v)))
            .collect();
        LocalIndex {
            g: DynGraph::from_csr(g),
            store,
            cb,
            scratch: Scratch::default(),
        }
    }

    /// Current graph.
    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// Current exact ego-betweenness of `v`.
    #[inline]
    pub fn cb(&self, v: VertexId) -> f64 {
        self.cb[v as usize]
    }

    /// All current values.
    pub fn all_cb(&self) -> &[f64] {
        &self.cb
    }

    /// The `k` highest-`CB` vertices right now (descending; ties toward
    /// smaller id).
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, f64)> {
        let mut v: Vec<(VertexId, f64)> = self
            .cb
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as VertexId, c))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Appends an isolated vertex.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.g.add_vertex();
        self.store.push_vertex();
        self.cb.push(0.0);
        v
    }

    // ---- contribution-tracked map mutations ----

    #[inline]
    fn add_connector(&mut self, w: VertexId, x: VertexId, y: VertexId) {
        let m = self.store.map_mut(w);
        let old = m.get(x, y);
        debug_assert_ne!(old, Some(0), "connector added to an edge pair");
        let new = m.add_connector(x, y);
        self.cb[w as usize] += contrib(Some(new)) - contrib(old);
    }

    #[inline]
    fn remove_connector(&mut self, w: VertexId, x: VertexId, y: VertexId) {
        let m = self.store.map_mut(w);
        let old = m.get(x, y);
        debug_assert!(matches!(old, Some(c) if c > 0), "removing absent connector");
        let new = m.remove_connector(x, y);
        let new_opt = if new == 0 { None } else { Some(new) };
        self.cb[w as usize] += contrib(new_opt) - contrib(old);
    }

    /// Pair `(x,y)` inside `N(w)` turns into an edge (insertion of `(x,y)`
    /// observed from common neighbor `w`).
    #[inline]
    fn pair_becomes_edge(&mut self, w: VertexId, x: VertexId, y: VertexId) {
        let m = self.store.map_mut(w);
        let old = m.get(x, y);
        m.set_raw(x, y, 0);
        self.cb[w as usize] -= contrib(old);
    }

    /// Pair `(x,y)` inside `N(w)` stops being an edge; it now has
    /// `connectors` connectors.
    #[inline]
    fn pair_stops_being_edge(&mut self, w: VertexId, x: VertexId, y: VertexId, connectors: u32) {
        let m = self.store.map_mut(w);
        debug_assert_eq!(m.get(x, y), Some(0), "pair was not an edge");
        if connectors == 0 {
            m.remove(x, y);
        } else {
            m.set_raw(x, y, connectors);
        }
        let new_opt = if connectors == 0 {
            None
        } else {
            Some(connectors)
        };
        self.cb[w as usize] += contrib(new_opt);
    }

    /// A brand-new pair `(x,y)` appears in `N(w)` (a neighbor arrived).
    /// `val`: `Some(0)` edge, `Some(c)` c connectors, `None` isolated pair.
    #[inline]
    fn pair_appears(&mut self, w: VertexId, x: VertexId, y: VertexId, val: Option<u32>) {
        if let Some(v) = val {
            self.store.map_mut(w).set_raw(x, y, v);
        }
        self.cb[w as usize] += contrib(val);
    }

    /// Pair `(x,y)` disappears from `N(w)` (a neighbor left).
    #[inline]
    fn pair_disappears(&mut self, w: VertexId, x: VertexId, y: VertexId) {
        let old = self.store.map_mut(w).remove(x, y);
        self.cb[w as usize] -= contrib(old);
    }

    /// Inserts edge `(u,v)`, updating `CB` for `u`, `v`, and all common
    /// neighbors (Observation 1). Returns `false` (no-op) if the edge
    /// already exists or `u == v`.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || self.g.has_edge(u, v) {
            return false;
        }
        // Everything below reasons about the OLD graph; the adjacency flip
        // happens last.
        let mut common = std::mem::take(&mut self.scratch.common);
        self.g.common_neighbors_into(u, v, &mut common);
        common.sort_unstable();

        // --- common neighbors w ∈ L (Lemma 5) ---
        for &w in &common {
            // (u,v) becomes an edge inside GE(w).
            self.pair_becomes_edge(w, u, v);
            // v is a new connector for pairs (u,x), x ∈ N(w) ∩ N(v).
            let mut xs = std::mem::take(&mut self.scratch.xs);
            self.g.common_neighbors_into(w, v, &mut xs);
            for &x in &xs {
                if x != u && !self.g.has_edge(x, u) {
                    self.add_connector(w, u, x);
                }
            }
            // u is a new connector for pairs (v,x), x ∈ N(w) ∩ N(u).
            self.g.common_neighbors_into(w, u, &mut xs);
            for &x in &xs {
                if x != v && !self.g.has_edge(x, v) {
                    self.add_connector(w, v, x);
                }
            }
            self.scratch.xs = xs;
        }

        // --- endpoints (Lemma 4 / Algorithm 5) ---
        self.endpoint_gains_neighbor(u, v, &common);
        self.endpoint_gains_neighbor(v, u, &common);

        self.g.insert_edge(u, v);
        self.scratch.common = common;
        true
    }

    /// Endpoint `u` gains neighbor `nv`; `common = N(u) ∩ N(nv)` in the old
    /// graph.
    fn endpoint_gains_neighbor(&mut self, u: VertexId, nv: VertexId, common: &[VertexId]) {
        // New pairs (nv, x) for every old neighbor x.
        let mut old_nbrs = std::mem::take(&mut self.scratch.nbrs);
        self.g.sorted_neighbors_into(u, &mut old_nbrs);
        for &x in &old_nbrs {
            if common.binary_search(&x).is_ok() {
                self.pair_appears(u, nv, x, Some(0)); // (nv,x) ∈ E
            } else {
                self.pair_appears(u, nv, x, None); // connectors added below
            }
        }
        self.scratch.nbrs = old_nbrs;
        // Connectors for the new pairs come exactly from L: p ∈ L is
        // adjacent to nv; it connects (nv, x) for x ∈ N(u) ∩ N(p), x ∉ L.
        for &p in common {
            let mut xs = std::mem::take(&mut self.scratch.xs);
            self.g.common_neighbors_into(u, p, &mut xs);
            for &x in &xs {
                if x != nv && common.binary_search(&x).is_err() {
                    self.add_connector(u, nv, x);
                }
            }
            self.scratch.xs = xs;
        }
        // nv becomes a connector for existing non-adjacent pairs inside L.
        for (i, &p) in common.iter().enumerate() {
            for &q in common.iter().skip(i + 1) {
                if !self.g.has_edge(p, q) {
                    self.add_connector(u, p, q);
                }
            }
        }
    }

    /// Deletes edge `(u,v)`, updating `CB` for `u`, `v`, and all common
    /// neighbors. Returns `false` (no-op) if the edge does not exist.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.g.has_edge(u, v) {
            return false;
        }
        let mut common = std::mem::take(&mut self.scratch.common);
        self.g.common_neighbors_into(u, v, &mut common);
        common.sort_unstable();

        // --- common neighbors w ∈ L (Lemma 7) ---
        for &w in &common {
            // (u,v) stops being an edge inside GE(w); its connector count
            // is |L ∩ N(w)|.
            let c = common
                .iter()
                .filter(|&&x| x != w && self.g.has_edge(x, w))
                .count() as u32;
            self.pair_stops_being_edge(w, u, v, c);
            // v stops connecting pairs (u,x), x ∈ N(w) ∩ N(v).
            let mut xs = std::mem::take(&mut self.scratch.xs);
            self.g.common_neighbors_into(w, v, &mut xs);
            for &x in &xs {
                if x != u && !self.g.has_edge(x, u) {
                    self.remove_connector(w, u, x);
                }
            }
            // u stops connecting pairs (v,x), x ∈ N(w) ∩ N(u).
            self.g.common_neighbors_into(w, u, &mut xs);
            for &x in &xs {
                if x != v && !self.g.has_edge(x, v) {
                    self.remove_connector(w, v, x);
                }
            }
            self.scratch.xs = xs;
        }

        // --- endpoints (Lemma 6) ---
        self.endpoint_loses_neighbor(u, v, &common);
        self.endpoint_loses_neighbor(v, u, &common);

        self.g.remove_edge(u, v);
        self.scratch.common = common;
        true
    }

    /// Endpoint `u` loses neighbor `nv`; `common = N(u) ∩ N(nv)`.
    fn endpoint_loses_neighbor(&mut self, u: VertexId, nv: VertexId, common: &[VertexId]) {
        let mut nbrs = std::mem::take(&mut self.scratch.nbrs);
        self.g.sorted_neighbors_into(u, &mut nbrs);
        for &x in &nbrs {
            if x != nv {
                self.pair_disappears(u, nv, x);
            }
        }
        self.scratch.nbrs = nbrs;
        for (i, &p) in common.iter().enumerate() {
            for &q in common.iter().skip(i + 1) {
                if !self.g.has_edge(p, q) {
                    self.remove_connector(u, p, q);
                }
            }
        }
    }

    /// Exhaustively re-derives every map entry and `CB` from the current
    /// graph and asserts they match the maintained state. Test helper —
    /// O(n · d³); call only on small graphs.
    pub fn validate(&self) {
        for w in 0..self.g.n() as VertexId {
            let nbrs = self.g.sorted_neighbors(w);
            let mut expect_cb = 0.0;
            let mut entries = 0usize;
            for (i, &x) in nbrs.iter().enumerate() {
                for &y in nbrs.iter().skip(i + 1) {
                    let stored = self.store.map(w).get(x, y);
                    if self.g.has_edge(x, y) {
                        assert_eq!(stored, Some(0), "S_{w}({x},{y}) should be an edge entry");
                        entries += 1;
                        continue;
                    }
                    let c = nbrs
                        .iter()
                        .filter(|&&z| {
                            z != x && z != y && self.g.has_edge(z, x) && self.g.has_edge(z, y)
                        })
                        .count() as u32;
                    if c == 0 {
                        assert_eq!(stored, None, "S_{w}({x},{y}) should be absent");
                    } else {
                        assert_eq!(stored, Some(c), "S_{w}({x},{y}) connector count");
                        entries += 1;
                    }
                    expect_cb += contrib(if c == 0 { None } else { Some(c) });
                }
            }
            assert_eq!(
                self.store.map(w).len(),
                entries,
                "S_{w} holds exactly the live pairs"
            );
            assert!(
                (self.cb[w as usize] - expect_cb).abs() < 1e-9,
                "CB({w}) drifted: {} vs {expect_cb}",
                self.cb[w as usize]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_core::naive::ego_betweenness_of;
    use egobtw_gen::{classic, gnp, toy};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_naive(idx: &LocalIndex) {
        let g = idx.graph();
        for v in 0..g.n() as VertexId {
            let expect = ego_betweenness_of(g, v);
            assert!(
                (idx.cb(v) - expect).abs() < 1e-9,
                "CB({v}) = {} expected {expect}",
                idx.cb(v)
            );
        }
    }

    #[test]
    fn initial_values_match_naive() {
        let idx = LocalIndex::new(&classic::karate_club());
        assert_matches_naive(&idx);
        idx.validate();
    }

    #[test]
    fn paper_example5_insert_ik() {
        let g = toy::paper_graph();
        let mut idx = LocalIndex::new(&g);
        assert!(idx.insert_edge(toy::ids::I, toy::ids::K));
        for (v, expect) in toy::example5_after_insert() {
            assert!(
                (idx.cb(v) - expect).abs() < 1e-9,
                "CB({}) = {} expected {expect}",
                toy::label(v),
                idx.cb(v)
            );
        }
        idx.validate();
        assert_matches_naive(&idx);
    }

    #[test]
    fn paper_example6_delete_cg_corrected() {
        // Corrected values (paper's own Example 6 contradicts Lemmas 6–7;
        // see DESIGN.md §4): CB(c)=14/3, CB(g)=1/2, CB(e)=13/2.
        let g = toy::paper_graph();
        let mut idx = LocalIndex::new(&g);
        assert!(idx.delete_edge(toy::ids::C, toy::ids::G));
        for (v, expect) in toy::example6_after_delete() {
            assert!(
                (idx.cb(v) - expect).abs() < 1e-9,
                "CB({}) = {} expected {expect}",
                toy::label(v),
                idx.cb(v)
            );
        }
        idx.validate();
        assert_matches_naive(&idx);
    }

    #[test]
    fn insert_then_delete_is_identity() {
        let g = classic::karate_club();
        let before = LocalIndex::new(&g);
        let mut idx = LocalIndex::new(&g);
        assert!(idx.insert_edge(3, 9));
        assert!(idx.delete_edge(3, 9));
        for v in 0..g.n() as VertexId {
            assert!(
                (idx.cb(v) - before.cb(v)).abs() < 1e-9,
                "vertex {v} not restored"
            );
        }
        idx.validate();
    }

    #[test]
    fn noop_on_duplicate_or_missing() {
        let mut idx = LocalIndex::new(&classic::path(4));
        assert!(!idx.insert_edge(0, 1), "edge already present");
        assert!(!idx.insert_edge(2, 2), "self-loop");
        assert!(!idx.delete_edge(0, 2), "edge absent");
    }

    #[test]
    fn randomized_update_stream_stays_exact() {
        let mut rng = StdRng::seed_from_u64(2024);
        let g0 = gnp(24, 0.18, 3);
        let mut idx = LocalIndex::new(&g0);
        for step in 0..160 {
            let u = rng.random_range(0..24u32);
            let v = rng.random_range(0..24u32);
            if u == v {
                continue;
            }
            if idx.graph().has_edge(u, v) {
                idx.delete_edge(u, v);
            } else {
                idx.insert_edge(u, v);
            }
            if step % 20 == 0 {
                idx.validate();
            }
            assert_matches_naive(&idx);
        }
        idx.validate();
    }

    #[test]
    fn grow_from_empty_matches() {
        // Insert the whole toy graph edge by edge into an empty index.
        let mut idx = LocalIndex::new(&egobtw_graph::CsrGraph::from_edges(16, &[]));
        for &(a, b) in toy::EDGES.iter() {
            idx.insert_edge(a, b);
        }
        for (v, expect) in toy::expected_cb() {
            assert!(
                (idx.cb(v) - expect).abs() < 1e-9,
                "CB({}) after incremental build",
                toy::label(v)
            );
        }
        idx.validate();
    }

    #[test]
    fn shrink_to_empty() {
        let g = classic::barbell(4);
        let mut idx = LocalIndex::new(&g);
        let edges: Vec<_> = g.edges().collect();
        for (a, b) in edges {
            idx.delete_edge(a, b);
            assert_matches_naive(&idx);
        }
        for v in 0..g.n() as VertexId {
            assert_eq!(idx.cb(v), 0.0);
        }
    }

    #[test]
    fn add_vertex_and_wire_up() {
        let mut idx = LocalIndex::new(&classic::star(4));
        let v = idx.add_vertex();
        assert_eq!(v, 4);
        idx.insert_edge(0, v);
        idx.insert_edge(1, v);
        assert_matches_naive(&idx);
        idx.validate();
    }

    #[test]
    fn top_k_tracks_updates() {
        let g = toy::paper_graph();
        let mut idx = LocalIndex::new(&g);
        assert_eq!(idx.top_k(1)[0].0, toy::ids::F);
        // Example 7: inserting (i,k) makes i the new top-1 (10.5 > 9.5).
        idx.insert_edge(toy::ids::I, toy::ids::K);
        assert_eq!(idx.top_k(1)[0].0, toy::ids::I);
    }
}
