//! `DeltaIndex`: true incremental maintenance via dependency deltas.
//!
//! The third maintainer combines the other two's strengths: like
//! [`LocalIndex`](crate::LocalIndex) it keeps the full per-ego pair-term
//! store (`S_w`, the `PairMap` invariant) and every `CB` as a running
//! total, so updates are exact; like [`LazyTopK`](crate::LazyTopK) it
//! keeps the top-k *set* materialized, so publishing an answer is
//! `O(k log k)` instead of the `O(n log n)` full sort `LocalIndex::top_k`
//! pays on every call.
//!
//! Per edge flip `(u,v)` the affected egos are exactly
//! `{u, v} ∪ (N(u) ∩ N(v))` (Observation 1), and inside each affected ego
//! only pair terms involving `u` or `v` change (plus, in the endpoint
//! egos, the pairs of common neighbors that gain/lose `u`/`v` as a
//! connector). `DeltaIndex` patches exactly those terms — O(affected
//! pairs) — and then *re-certifies* the top-k boundary lazily: touched
//! egos are pushed into a max-heap of candidate outsiders, stale heap
//! entries (value no longer current, or vertex already a member) are
//! discarded on pop, and members are swapped out only while the best live
//! outsider strictly beats the weakest member.
//!
//! The patching deliberately does **not** reuse `LocalIndex`'s Lemma 4–7
//! helper decomposition: terms for new pairs are *recounted directly*
//! from the post-flip adjacency (`c = |{z ∈ N(u)∩N(v) : z ∼ x}|`) rather
//! than accumulated connector-by-connector. Two independently derived
//! delta paths that must agree bit-for-bit on the same stream is the
//! point — the conformance harness diffs them against each other and
//! against the definitional reference on every scenario.
//!
//! Invariants (checked exhaustively by [`DeltaIndex::validate`]):
//!
//! * **map/CB**: the `S_w` entry invariant of the static engine holds for
//!   every ego, and `CB[w]` equals the sum of its pair contributions;
//! * **boundary**: no non-member's `CB` strictly exceeds the weakest
//!   member's (`total_cmp`), and `|top| = min(k, n)`;
//! * **heap coverage**: every outsider whose `CB` changed since its last
//!   heap entry has a fresh entry — guaranteed because every touched ego
//!   is re-queued before re-certification.

use egobtw_core::smap::SMapStore;
use egobtw_core::topk::OrdF64;
use egobtw_graph::{CsrGraph, DynGraph, VertexId};
use std::collections::BinaryHeap;

/// Contribution of a pair to its ego's `CB`, given the stored term
/// (`None` = non-adjacent, zero connectors).
#[inline]
fn contrib(val: Option<u32>) -> f64 {
    match val {
        None => 1.0,
        Some(0) => 0.0,
        Some(c) => 1.0 / (f64::from(c) + 1.0),
    }
}

/// Deliberate defect classes planted inside the delta path, for
/// mutation-testing the conformance net (`stress --mutate delta-*`).
/// Test-only: a faulty index is built via [`DeltaIndex::with_fault`] and
/// must be caught by the harness, proving the net actually covers the
/// delta-specific failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaFault {
    /// On delete, skip removing `u`/`v` as connectors of pairs inside the
    /// common-neighbor egos — the classic stale-pair-term bug: `CB` of
    /// those egos ends up too low (connector counts stay inflated).
    StalePairOnDelete,
    /// Skip the last common-neighbor ego when enumerating the affected
    /// set — an off-by-one in the `N(u) ∩ N(v)` walk. That ego's terms
    /// and `CB` silently rot.
    MissEgo,
    /// Never re-certify the top-k boundary after scores move — membership
    /// freezes at the initial top-k even when an outsider overtakes it.
    SkipRecertify,
}

/// Work counters for the delta path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Pair terms patched (set, bumped, added, or removed).
    pub patched_pairs: usize,
    /// Stale candidate-heap entries discarded during re-certification.
    pub discards: usize,
    /// Membership swaps in the top-k set.
    pub swaps: usize,
}

/// Scratch buffers reused across updates (capacity survives, contents
/// do not).
#[derive(Default)]
struct Scratch {
    common: Vec<VertexId>,
    xs: Vec<VertexId>,
    nbrs: Vec<VertexId>,
}

/// Exact dynamic index with an incrementally maintained top-k set.
pub struct DeltaIndex {
    g: DynGraph,
    store: SMapStore,
    cb: Vec<f64>,
    k: usize,
    in_top: Vec<bool>,
    /// Current top-k members, unordered (sorted only on read-out).
    top: Vec<VertexId>,
    /// Lazy max-heap over outsiders: entries `(cb-at-push, v)`; an entry
    /// is live iff `v` is an outsider and the value still matches `cb[v]`.
    cand: BinaryHeap<(OrdF64, VertexId)>,
    scratch: Scratch,
    fault: Option<DeltaFault>,
    /// Work counters.
    pub stats: DeltaStats,
}

impl DeltaIndex {
    /// Builds the index from a static graph: the shared edge-centric pass
    /// populates the maps (deterministic finalize, so starting values are
    /// bit-identical to `compute_all` and to a fresh `LocalIndex`), then
    /// the top-k set is read off directly.
    pub fn new(g: &CsrGraph, k: usize) -> Self {
        Self::build(g, k, None)
    }

    /// [`DeltaIndex::new`] with a planted defect. Mutation-testing only.
    pub fn with_fault(g: &CsrGraph, k: usize, fault: DeltaFault) -> Self {
        Self::build(g, k, Some(fault))
    }

    fn build(g: &CsrGraph, k: usize, fault: Option<DeltaFault>) -> Self {
        let (store, _) = egobtw_core::compute_all::build_store(g);
        let cb: Vec<f64> = (0..g.n() as VertexId)
            .map(|v| store.map(v).cb_given_degree_det(g.degree(v)))
            .collect();
        let n = g.n();
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.sort_by(|&a, &b| cb[b as usize].total_cmp(&cb[a as usize]).then(a.cmp(&b)));
        let top: Vec<VertexId> = order.iter().copied().take(k).collect();
        let mut in_top = vec![false; n];
        for &v in &top {
            in_top[v as usize] = true;
        }
        let mut cand = BinaryHeap::with_capacity(n.saturating_sub(k));
        if k > 0 {
            for v in 0..n as VertexId {
                if !in_top[v as usize] {
                    cand.push((OrdF64(cb[v as usize]), v));
                }
            }
        }
        DeltaIndex {
            g: DynGraph::from_csr(g),
            store,
            cb,
            k,
            in_top,
            top,
            cand,
            scratch: Scratch::default(),
            fault,
            stats: DeltaStats::default(),
        }
    }

    /// Current graph.
    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current exact ego-betweenness of `v`.
    #[inline]
    pub fn cb(&self, v: VertexId) -> f64 {
        self.cb[v as usize]
    }

    /// All current values.
    pub fn all_cb(&self) -> &[f64] {
        &self.cb
    }

    /// The maintained top-k (descending `CB`, ties toward smaller id).
    /// `&self` and `O(k log k)` — membership is kept current by the
    /// re-certification step of every update, so reading it costs only
    /// the sort of `k` entries.
    pub fn top_k(&self) -> Vec<(VertexId, f64)> {
        let mut out: Vec<(VertexId, f64)> =
            self.top.iter().map(|&v| (v, self.cb[v as usize])).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Appends an isolated vertex (promoted directly while the top set is
    /// under capacity).
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.g.add_vertex();
        self.store.push_vertex();
        self.cb.push(0.0);
        self.in_top.push(false);
        if self.top.len() < self.k {
            self.promote(v);
        } else {
            self.requeue(v);
        }
        v
    }

    // ---- contribution-tracked term patches ----

    /// Overwrites the term of an *existing* pair `(x,y)` of ego `w`.
    fn set_term(&mut self, w: VertexId, x: VertexId, y: VertexId, new: Option<u32>) {
        let m = self.store.map_mut(w);
        let old = m.get(x, y);
        if old == new {
            return;
        }
        match new {
            None => {
                m.remove(x, y);
            }
            Some(c) => m.set_raw(x, y, c),
        }
        self.cb[w as usize] += contrib(new) - contrib(old);
        self.stats.patched_pairs += 1;
    }

    /// Adds (`up`) or removes one connector on the non-edge pair `(x,y)`
    /// of ego `w`.
    fn bump_term(&mut self, w: VertexId, x: VertexId, y: VertexId, up: bool) {
        let m = self.store.map_mut(w);
        let old = m.get(x, y);
        let new = if up {
            match old {
                None => 1,
                Some(c) => {
                    debug_assert!(
                        self.fault.is_some() || c > 0,
                        "connector added to an edge pair"
                    );
                    c + 1
                }
            }
        } else {
            match old {
                Some(c) if c > 0 => c - 1,
                _ => {
                    debug_assert!(self.fault.is_some(), "removing absent connector");
                    return;
                }
            }
        };
        if new == 0 {
            m.remove(x, y);
        } else {
            m.set_raw(x, y, new);
        }
        let new_opt = if new == 0 { None } else { Some(new) };
        self.cb[w as usize] += contrib(new_opt) - contrib(old);
        self.stats.patched_pairs += 1;
    }

    /// A brand-new pair `(x,y)` appears in ego `w` with term `val`.
    fn pair_add(&mut self, w: VertexId, x: VertexId, y: VertexId, val: Option<u32>) {
        if let Some(c) = val {
            self.store.map_mut(w).set_raw(x, y, c);
        }
        self.cb[w as usize] += contrib(val);
        self.stats.patched_pairs += 1;
    }

    /// Pair `(x,y)` disappears from ego `w` (a neighbor left).
    fn pair_remove(&mut self, w: VertexId, x: VertexId, y: VertexId) {
        let old = self.store.map_mut(w).remove(x, y);
        self.cb[w as usize] -= contrib(old);
        self.stats.patched_pairs += 1;
    }

    /// The slice of common-neighbor egos actually processed (the planted
    /// `MissEgo` fault drops the last one).
    fn upto(&self, common: &[VertexId]) -> usize {
        if matches!(self.fault, Some(DeltaFault::MissEgo)) {
            common.len().saturating_sub(1)
        } else {
            common.len()
        }
    }

    /// Inserts edge `(u,v)`, patching exactly the affected pair terms and
    /// re-certifying the top-k. Returns `false` (no-op) if the edge
    /// already exists or `u == v`.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || self.g.has_edge(u, v) {
            return false;
        }
        let mut common = std::mem::take(&mut self.scratch.common);
        self.g.common_neighbors_into(u, v, &mut common);
        common.sort_unstable();
        // Flip first: every count below reads the NEW adjacency (the
        // guards keep the endpoints themselves out of connector counts,
        // and N(u)∩N(v) is unchanged by the flip).
        self.g.insert_edge(u, v);

        for &w in &common[..self.upto(&common)] {
            // (u,v) becomes an edge inside GE(w).
            self.set_term(w, u, v, Some(0));
            // v is a new connector for pairs (u,x), x ∈ N(w) ∩ N(v).
            let mut xs = std::mem::take(&mut self.scratch.xs);
            self.g.common_neighbors_into(w, v, &mut xs);
            for &x in &xs {
                if x != u && !self.g.has_edge(x, u) {
                    self.bump_term(w, u, x, true);
                }
            }
            // u is a new connector for pairs (v,x), x ∈ N(w) ∩ N(u).
            self.g.common_neighbors_into(w, u, &mut xs);
            for &x in &xs {
                if x != v && !self.g.has_edge(x, v) {
                    self.bump_term(w, v, x, true);
                }
            }
            self.scratch.xs = xs;
        }

        self.endpoint_attach(u, v, &common);
        self.endpoint_attach(v, u, &common);

        self.requeue(u);
        self.requeue(v);
        for &w in &common {
            self.requeue(w);
        }
        self.scratch.common = common;
        self.recertify();
        true
    }

    /// Ego `u` gains neighbor `nv`; `common = N(u) ∩ N(nv)` (sorted). The
    /// adjacency flip has already happened.
    fn endpoint_attach(&mut self, u: VertexId, nv: VertexId, common: &[VertexId]) {
        let mut nbrs = std::mem::take(&mut self.scratch.nbrs);
        self.g.sorted_neighbors_into(u, &mut nbrs);
        for &x in &nbrs {
            if x == nv {
                continue;
            }
            // Direct recount: connectors of (nv,x) inside N(u) are exactly
            // the z ∈ N(u) ∩ N(nv) adjacent to x.
            let val = if self.g.has_edge(nv, x) {
                Some(0)
            } else {
                let c = common
                    .iter()
                    .filter(|&&z| z != x && self.g.has_edge(z, x))
                    .count() as u32;
                if c == 0 {
                    None
                } else {
                    Some(c)
                }
            };
            self.pair_add(u, nv, x, val);
        }
        // nv becomes a connector for existing non-adjacent pairs of common
        // neighbors.
        for (i, &p) in common.iter().enumerate() {
            for &q in common.iter().skip(i + 1) {
                if !self.g.has_edge(p, q) {
                    self.bump_term(u, p, q, true);
                }
            }
        }
        self.scratch.nbrs = nbrs;
    }

    /// Deletes edge `(u,v)`, patching exactly the affected pair terms and
    /// re-certifying the top-k. Returns `false` (no-op) if the edge does
    /// not exist.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.g.has_edge(u, v) {
            return false;
        }
        let mut common = std::mem::take(&mut self.scratch.common);
        self.g.common_neighbors_into(u, v, &mut common);
        common.sort_unstable();
        self.g.remove_edge(u, v);

        let skip_pair_terms = matches!(self.fault, Some(DeltaFault::StalePairOnDelete));
        for &w in &common[..self.upto(&common)] {
            // (u,v) stops being an edge inside GE(w); recount its term
            // directly: connectors are the common neighbors adjacent to w.
            let c = common
                .iter()
                .filter(|&&z| z != w && self.g.has_edge(z, w))
                .count() as u32;
            self.set_term(w, u, v, if c == 0 { None } else { Some(c) });
            if skip_pair_terms {
                continue;
            }
            // v stops connecting pairs (u,x), x ∈ N(w) ∩ N(v).
            let mut xs = std::mem::take(&mut self.scratch.xs);
            self.g.common_neighbors_into(w, v, &mut xs);
            for &x in &xs {
                if x != u && !self.g.has_edge(x, u) {
                    self.bump_term(w, u, x, false);
                }
            }
            // u stops connecting pairs (v,x), x ∈ N(w) ∩ N(u).
            self.g.common_neighbors_into(w, u, &mut xs);
            for &x in &xs {
                if x != v && !self.g.has_edge(x, v) {
                    self.bump_term(w, v, x, false);
                }
            }
            self.scratch.xs = xs;
        }

        self.endpoint_detach(u, v, &common);
        self.endpoint_detach(v, u, &common);

        self.requeue(u);
        self.requeue(v);
        for &w in &common {
            self.requeue(w);
        }
        self.scratch.common = common;
        self.recertify();
        true
    }

    /// Ego `u` loses neighbor `nv`; `common = N(u) ∩ N(nv)` (sorted). The
    /// adjacency flip has already happened.
    fn endpoint_detach(&mut self, u: VertexId, nv: VertexId, common: &[VertexId]) {
        let mut nbrs = std::mem::take(&mut self.scratch.nbrs);
        self.g.sorted_neighbors_into(u, &mut nbrs); // excludes nv already
        for &x in &nbrs {
            self.pair_remove(u, nv, x);
        }
        for (i, &p) in common.iter().enumerate() {
            for &q in common.iter().skip(i + 1) {
                if !self.g.has_edge(p, q) {
                    self.bump_term(u, p, q, false);
                }
            }
        }
        self.scratch.nbrs = nbrs;
    }

    // ---- lazy top-k re-certification ----

    /// Pushes a fresh candidate entry for a touched outsider. Members need
    /// nothing: the weakest-member scan reads `cb` directly.
    fn requeue(&mut self, v: VertexId) {
        if self.k > 0 && !self.in_top[v as usize] {
            self.cand.push((OrdF64(self.cb[v as usize]), v));
        }
    }

    fn promote(&mut self, v: VertexId) {
        debug_assert!(!self.in_top[v as usize]);
        self.in_top[v as usize] = true;
        self.top.push(v);
    }

    /// Index and id of the weakest member (ties resolved toward evicting
    /// the larger id, so smaller ids stay — the repo-wide tie convention).
    fn weakest_member(&self) -> Option<(usize, VertexId)> {
        self.top
            .iter()
            .enumerate()
            .map(|(i, &v)| (i, v))
            .min_by(|a, b| {
                self.cb[a.1 as usize]
                    .total_cmp(&self.cb[b.1 as usize])
                    .then(b.1.cmp(&a.1))
            })
    }

    /// Discards dead heap entries until the top one is live, and returns
    /// it without popping.
    fn peek_live_best(&mut self) -> Option<(f64, VertexId)> {
        while let Some(&(OrdF64(val), v)) = self.cand.peek() {
            if self.in_top[v as usize] || val != self.cb[v as usize] {
                self.cand.pop();
                self.stats.discards += 1;
            } else {
                return Some((val, v));
            }
        }
        None
    }

    /// Restores the boundary invariant: fill to capacity, then swap while
    /// the best live outsider strictly beats the weakest member.
    fn recertify(&mut self) {
        if matches!(self.fault, Some(DeltaFault::SkipRecertify)) {
            return;
        }
        while self.top.len() < self.k {
            let Some((_, v)) = self.peek_live_best() else {
                break;
            };
            self.cand.pop();
            self.promote(v);
        }
        while let Some((wi, wv)) = self.weakest_member() {
            let wval = self.cb[wv as usize];
            let Some((bval, bv)) = self.peek_live_best() else {
                break;
            };
            if bval > wval {
                self.cand.pop();
                self.top.swap_remove(wi);
                self.in_top[wv as usize] = false;
                self.cand.push((OrdF64(wval), wv));
                self.promote(bv);
                self.stats.swaps += 1;
            } else {
                break;
            }
        }
    }

    /// Exhaustively re-derives every map entry and `CB` from the current
    /// graph and asserts the maintained state matches, then checks the
    /// top-k boundary invariant. Test helper — O(n · d³); call only on
    /// small graphs.
    pub fn validate(&self) {
        for w in 0..self.g.n() as VertexId {
            let nbrs = self.g.sorted_neighbors(w);
            let mut expect_cb = 0.0;
            let mut entries = 0usize;
            for (i, &x) in nbrs.iter().enumerate() {
                for &y in nbrs.iter().skip(i + 1) {
                    let stored = self.store.map(w).get(x, y);
                    if self.g.has_edge(x, y) {
                        assert_eq!(stored, Some(0), "S_{w}({x},{y}) should be an edge entry");
                        entries += 1;
                        continue;
                    }
                    let c = nbrs
                        .iter()
                        .filter(|&&z| {
                            z != x && z != y && self.g.has_edge(z, x) && self.g.has_edge(z, y)
                        })
                        .count() as u32;
                    if c == 0 {
                        assert_eq!(stored, None, "S_{w}({x},{y}) should be absent");
                    } else {
                        assert_eq!(stored, Some(c), "S_{w}({x},{y}) connector count");
                        entries += 1;
                    }
                    expect_cb += contrib(if c == 0 { None } else { Some(c) });
                }
            }
            assert_eq!(
                self.store.map(w).len(),
                entries,
                "S_{w} holds exactly the live pairs"
            );
            assert!(
                (self.cb[w as usize] - expect_cb).abs() < 1e-9,
                "CB({w}) drifted: {} vs {expect_cb}",
                self.cb[w as usize]
            );
        }
        // Boundary invariant.
        assert_eq!(self.top.len(), self.k.min(self.g.n()), "top set size");
        if let Some((_, wv)) = self.weakest_member() {
            let min_top = self.cb[wv as usize];
            for v in 0..self.g.n() as VertexId {
                if !self.in_top[v as usize] {
                    assert!(
                        self.cb[v as usize] <= min_top,
                        "outsider {v} ({}) beats weakest member {wv} ({min_top})",
                        self.cb[v as usize]
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalIndex;
    use egobtw_core::naive::ego_betweenness_of;
    use egobtw_gen::{classic, gnp, toy};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_naive(idx: &DeltaIndex) {
        let g = idx.graph();
        for v in 0..g.n() as VertexId {
            let expect = ego_betweenness_of(g, v);
            assert!(
                (idx.cb(v) - expect).abs() < 1e-9,
                "CB({v}) = {} expected {expect}",
                idx.cb(v)
            );
        }
    }

    /// The maintained top-k value multiset must equal the true one.
    fn assert_topk_correct(idx: &DeltaIndex) {
        let g = idx.graph();
        let mut truth: Vec<f64> = (0..g.n() as VertexId)
            .map(|v| ego_betweenness_of(g, v))
            .collect();
        truth.sort_by(|a, b| b.total_cmp(a));
        let got = idx.top_k();
        assert_eq!(got.len(), idx.k().min(g.n()));
        for (rank, &(v, cb)) in got.iter().enumerate() {
            let direct = ego_betweenness_of(g, v);
            assert!((cb - direct).abs() < 1e-9, "reported value for {v} stale");
            assert!(
                (cb - truth[rank]).abs() < 1e-9,
                "rank {rank}: {cb} vs oracle {}",
                truth[rank]
            );
        }
    }

    #[test]
    fn initial_values_match_naive_and_local() {
        let g = classic::karate_club();
        let idx = DeltaIndex::new(&g, 5);
        assert_matches_naive(&idx);
        idx.validate();
        // Bit-identical start: same build path as LocalIndex.
        let local = LocalIndex::new(&g);
        for v in 0..g.n() as VertexId {
            assert_eq!(idx.cb(v), local.cb(v), "init not bit-identical at {v}");
        }
    }

    #[test]
    fn paper_example5_insert_ik() {
        let g = toy::paper_graph();
        let mut idx = DeltaIndex::new(&g, 3);
        assert!(idx.insert_edge(toy::ids::I, toy::ids::K));
        for (v, expect) in toy::example5_after_insert() {
            assert!(
                (idx.cb(v) - expect).abs() < 1e-9,
                "CB({}) = {} expected {expect}",
                toy::label(v),
                idx.cb(v)
            );
        }
        idx.validate();
        assert_matches_naive(&idx);
    }

    #[test]
    fn paper_example6_delete_cg_corrected() {
        let g = toy::paper_graph();
        let mut idx = DeltaIndex::new(&g, 3);
        assert!(idx.delete_edge(toy::ids::C, toy::ids::G));
        for (v, expect) in toy::example6_after_delete() {
            assert!(
                (idx.cb(v) - expect).abs() < 1e-9,
                "CB({}) = {} expected {expect}",
                toy::label(v),
                idx.cb(v)
            );
        }
        idx.validate();
        assert_matches_naive(&idx);
    }

    #[test]
    fn paper_example7_insert_flips_top1() {
        let g = toy::paper_graph();
        let mut idx = DeltaIndex::new(&g, 1);
        assert_eq!(idx.top_k()[0].0, toy::ids::F);
        idx.insert_edge(toy::ids::I, toy::ids::K);
        let top = idx.top_k();
        assert_eq!(top[0].0, toy::ids::I);
        assert!((top[0].1 - 10.5).abs() < 1e-9);
        assert!(idx.stats.swaps >= 1, "the flip must be a recorded swap");
    }

    #[test]
    fn insert_then_delete_is_identity() {
        let g = classic::karate_club();
        let before = DeltaIndex::new(&g, 4);
        let mut idx = DeltaIndex::new(&g, 4);
        assert!(idx.insert_edge(3, 9));
        assert!(idx.delete_edge(3, 9));
        for v in 0..g.n() as VertexId {
            assert!(
                (idx.cb(v) - before.cb(v)).abs() < 1e-9,
                "vertex {v} not restored"
            );
        }
        idx.validate();
        assert_topk_correct(&idx);
    }

    #[test]
    fn noop_on_duplicate_missing_or_self_loop() {
        let mut idx = DeltaIndex::new(&classic::path(4), 2);
        assert!(!idx.insert_edge(0, 1), "edge already present");
        assert!(!idx.insert_edge(2, 2), "self-loop");
        assert!(!idx.delete_edge(0, 2), "edge absent");
        assert!(!idx.delete_edge(3, 3), "self-loop delete");
        idx.validate();
    }

    #[test]
    fn randomized_stream_stays_exact_and_certified() {
        let mut rng = StdRng::seed_from_u64(2024);
        for k in [1usize, 5, 24] {
            let g0 = gnp(24, 0.18, 3);
            let mut idx = DeltaIndex::new(&g0, k);
            for step in 0..160 {
                let u = rng.random_range(0..24u32);
                let v = rng.random_range(0..24u32);
                if u == v {
                    continue;
                }
                if idx.graph().has_edge(u, v) {
                    idx.delete_edge(u, v);
                } else {
                    idx.insert_edge(u, v);
                }
                if step % 20 == 0 {
                    idx.validate();
                }
                assert_topk_correct(&idx);
            }
            idx.validate();
        }
    }

    #[test]
    fn stream_against_local_index_bitwise() {
        // The two exact maintainers run structurally different patch
        // enumerations; on the same stream their running totals must
        // still agree to the last bit achievable (1e-9 relative is the
        // repo-wide contract; in practice the sums are identical).
        let mut rng = StdRng::seed_from_u64(5);
        let g0 = gnp(40, 0.15, 8);
        let mut delta = DeltaIndex::new(&g0, 6);
        let mut local = LocalIndex::new(&g0);
        for _ in 0..200 {
            let u = rng.random_range(0..40u32);
            let v = rng.random_range(0..40u32);
            if u == v {
                continue;
            }
            if delta.graph().has_edge(u, v) {
                delta.delete_edge(u, v);
                local.delete_edge(u, v);
            } else {
                delta.insert_edge(u, v);
                local.insert_edge(u, v);
            }
            for w in 0..40u32 {
                assert!(
                    (delta.cb(w) - local.cb(w)).abs() < 1e-9,
                    "maintainers disagree at {w}: {} vs {}",
                    delta.cb(w),
                    local.cb(w)
                );
            }
        }
    }

    #[test]
    fn grow_from_empty_matches() {
        let mut idx = DeltaIndex::new(&egobtw_graph::CsrGraph::from_edges(16, &[]), 3);
        for &(a, b) in toy::EDGES.iter() {
            idx.insert_edge(a, b);
        }
        for (v, expect) in toy::expected_cb() {
            assert!(
                (idx.cb(v) - expect).abs() < 1e-9,
                "CB({}) after incremental build",
                toy::label(v)
            );
        }
        idx.validate();
        assert_topk_correct(&idx);
    }

    #[test]
    fn shrink_to_empty() {
        let g = classic::barbell(4);
        let mut idx = DeltaIndex::new(&g, 3);
        let edges: Vec<_> = g.edges().collect();
        for (a, b) in edges {
            idx.delete_edge(a, b);
            assert_topk_correct(&idx);
        }
        for v in 0..g.n() as VertexId {
            assert_eq!(idx.cb(v), 0.0);
        }
        idx.validate();
    }

    #[test]
    fn add_vertex_and_wire_up() {
        let mut idx = DeltaIndex::new(&classic::star(4), 2);
        let v = idx.add_vertex();
        assert_eq!(v, 4);
        idx.insert_edge(0, v);
        idx.insert_edge(1, v);
        assert_matches_naive(&idx);
        idx.validate();
        assert_topk_correct(&idx);
    }

    #[test]
    fn k_zero_and_k_exceeding_n() {
        let g = classic::path(5);
        let mut idx = DeltaIndex::new(&g, 0);
        idx.insert_edge(0, 4);
        assert!(idx.top_k().is_empty());
        idx.validate();
        let mut idx = DeltaIndex::new(&g, 50);
        idx.insert_edge(0, 4);
        assert_eq!(idx.top_k().len(), 5);
        idx.validate();
        assert_topk_correct(&idx);
    }

    #[test]
    fn planted_faults_actually_corrupt() {
        // Each fault must produce an observable divergence on a small
        // scripted stream — otherwise the conformance mutants are vacuous.
        let g = toy::paper_graph();

        // StalePairOnDelete: deleting (c,g) leaves connector counts
        // inflated in the common-neighbor egos.
        let mut bad = DeltaIndex::with_fault(&g, 3, DeltaFault::StalePairOnDelete);
        let mut good = DeltaIndex::new(&g, 3);
        bad.delete_edge(toy::ids::C, toy::ids::G);
        good.delete_edge(toy::ids::C, toy::ids::G);
        let diverged = (0..g.n() as VertexId).any(|v| (bad.cb(v) - good.cb(v)).abs() > 1e-9);
        assert!(diverged, "StalePairOnDelete is not observable");

        // MissEgo: the skipped common-neighbor ego keeps its old CB.
        let mut bad = DeltaIndex::with_fault(&g, 3, DeltaFault::MissEgo);
        let mut good = DeltaIndex::new(&g, 3);
        bad.insert_edge(toy::ids::I, toy::ids::K);
        good.insert_edge(toy::ids::I, toy::ids::K);
        let diverged = (0..g.n() as VertexId).any(|v| (bad.cb(v) - good.cb(v)).abs() > 1e-9);
        assert!(diverged, "MissEgo is not observable");

        // SkipRecertify: Example 7's top-1 flip never happens.
        let mut bad = DeltaIndex::with_fault(&g, 1, DeltaFault::SkipRecertify);
        bad.insert_edge(toy::ids::I, toy::ids::K);
        assert_eq!(
            bad.top_k()[0].0,
            toy::ids::F,
            "SkipRecertify should freeze membership"
        );
    }

    #[test]
    fn scratch_buffers_actually_reused() {
        let g = classic::karate_club();
        let mut idx = DeltaIndex::new(&g, 4);
        idx.insert_edge(3, 9);
        let cap = idx.scratch.common.capacity();
        assert!(cap > 0, "scratch must retain capacity");
        idx.delete_edge(3, 9);
        assert!(
            idx.scratch.common.capacity() >= cap,
            "scratch capacity must survive ops"
        );
    }
}
