//! LazyInsert / LazyDelete (Algorithm 6): top-k maintenance with `O(n)`
//! state and as little recomputation as the monotonicity facts allow.
//!
//! Per vertex we keep `(val, stale)`; `R` is the current top-k set. The
//! invariants (a hardened version of the paper's scheme — Algorithm 6
//! leaves the staleness semantics implicit):
//!
//! * **I1 (fresh = exact):** `!stale[v] ⟹ val[v] = CB(v)`.
//! * **I2 (outsider upper bound):** `v ∉ R ⟹ val[v] ≥ CB(v)`. Where
//!   monotonicity does not supply a bound (an endpoint, or a common
//!   neighbor under deletion), the degree bound `d(d−1)/2` is substituted
//!   — exactly the paper's `ub(u) ≤ min CB(R)` skip rule.
//! * **I3 (member lower bound):** `v ∈ R` and `stale[v]` only in the
//!   delete/common-neighbor case, where `CB` is non-decreasing, so
//!   `val[v] ≤ CB(v)` and membership stays valid without recomputation
//!   (the paper's Example 8 optimization).
//!
//! I2 makes the lazy max-heap sound: the best *fresh* entry popped
//! dominates the true `CB` of every other outsider, so promotion and
//! demotion decisions made against it are exact.

use egobtw_core::naive::ego_betweenness_of;
use egobtw_core::topk::OrdF64;
use egobtw_graph::{CsrGraph, DynGraph, VertexId};
use std::collections::BinaryHeap;

/// Counters distinguishing lazy skips from forced recomputations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LazyStats {
    /// Exact per-ego recomputations performed.
    pub recomputations: usize,
    /// Affected vertices handled by staleness marking alone.
    pub lazy_skips: usize,
    /// Membership swaps in the top-k set.
    pub swaps: usize,
}

/// Result of [`LazyTopK::peek_top_k`]: the maintained set without paying
/// any refresh cost.
#[derive(Clone, Debug)]
pub struct TopKPeek {
    /// The members of the maintained top-k, sorted by descending stored
    /// value (ascending id on exact ties). Membership is exact; values of
    /// stale members are lower bounds on their true `CB`.
    pub entries: Vec<(VertexId, f64)>,
    /// How many members carry a stale (lower-bound) value. `0` means
    /// every value in `entries` is exact.
    pub stale_members: usize,
}

/// Lazily maintained top-k ego-betweenness set.
pub struct LazyTopK {
    g: DynGraph,
    k: usize,
    val: Vec<f64>,
    stale: Vec<bool>,
    in_r: Vec<bool>,
    r: Vec<VertexId>,
    /// Lazy max-heap over outsiders: entries `(val-at-push, v)`; an entry
    /// is live iff it matches `val[v]` and `v ∉ R`.
    heap: BinaryHeap<(OrdF64, VertexId)>,
    /// Common-neighbor scratch reused across updates (capacity survives,
    /// contents do not).
    scratch_common: Vec<VertexId>,
    /// Work counters.
    pub stats: LazyStats,
}

impl LazyTopK {
    /// Builds the maintainer: one full exact pass, then the top-k is read
    /// off directly.
    pub fn new(g: &CsrGraph, k: usize) -> Self {
        let (cb, _) = egobtw_core::compute_all(g);
        let n = g.n();
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.sort_by(|&a, &b| cb[b as usize].total_cmp(&cb[a as usize]).then(a.cmp(&b)));
        let r: Vec<VertexId> = order.iter().copied().take(k).collect();
        let mut in_r = vec![false; n];
        for &v in &r {
            in_r[v as usize] = true;
        }
        let mut heap = BinaryHeap::with_capacity(n.saturating_sub(k));
        for v in 0..n as VertexId {
            if !in_r[v as usize] {
                heap.push((OrdF64(cb[v as usize]), v));
            }
        }
        LazyTopK {
            g: DynGraph::from_csr(g),
            k,
            val: cb,
            stale: vec![false; n],
            in_r,
            r,
            heap,
            scratch_common: Vec::new(),
            stats: LazyStats::default(),
        }
    }

    /// Current graph.
    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Non-destructive read of the maintained set: no refresh is paid, so
    /// this is `&self` and O(k log k).
    ///
    /// Semantics (from invariants I1/I3): the *membership* of the returned
    /// set is always a correct top-k — `rebalance` restores it before every
    /// `insert_edge`/`delete_edge` returns. Values are exact for fresh
    /// members; a stale member (only possible via the delete/common-neighbor
    /// path, where `CB` is non-decreasing) carries a **lower bound** on its
    /// true score. `stale_members` counts them, so a caller can decide
    /// whether the exact values are worth a [`LazyTopK::top_k`] refresh —
    /// the query service serves `stale_members == 0` peeks directly and
    /// defers the refresh cost otherwise.
    pub fn peek_top_k(&self) -> TopKPeek {
        let mut entries: Vec<(VertexId, f64)> =
            self.r.iter().map(|&v| (v, self.val[v as usize])).collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let stale_members = self.r.iter().filter(|&&v| self.stale[v as usize]).count();
        TopKPeek {
            entries,
            stale_members,
        }
    }

    /// The maintained top-k, with exact values (stale members are refreshed
    /// on the way out), sorted by descending `CB`.
    pub fn top_k(&mut self) -> Vec<(VertexId, f64)> {
        let members = self.r.clone();
        for v in members {
            self.freshen(v);
        }
        let mut out: Vec<(VertexId, f64)> =
            self.r.iter().map(|&v| (v, self.val[v as usize])).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    fn freshen(&mut self, v: VertexId) {
        if self.stale[v as usize] {
            self.val[v as usize] = ego_betweenness_of(&self.g, v);
            self.stale[v as usize] = false;
            self.stats.recomputations += 1;
            if !self.in_r[v as usize] {
                self.heap.push((OrdF64(self.val[v as usize]), v));
            }
        }
    }

    /// Minimum `val` across `R` (lower-bounds `min CB(R)` thanks to I3;
    /// exact when every member is fresh).
    fn min_r_val(&self) -> Option<f64> {
        self.r
            .iter()
            .map(|&v| self.val[v as usize])
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Pops the outsider with the highest exact `CB` (recomputing stale
    /// candidates it encounters), pushing it back for future queries.
    fn best_outsider(&mut self) -> Option<(VertexId, f64)> {
        while let Some((OrdF64(b), v)) = self.heap.pop() {
            if self.in_r[v as usize] || b != self.val[v as usize] {
                continue; // stale heap entry
            }
            if self.stale[v as usize] {
                self.val[v as usize] = ego_betweenness_of(&self.g, v);
                self.stale[v as usize] = false;
                self.stats.recomputations += 1;
                self.heap.push((OrdF64(self.val[v as usize]), v));
                continue; // re-pop with the refreshed key
            }
            self.heap.push((OrdF64(b), v));
            return Some((v, b));
        }
        None
    }

    /// Restores the top-k invariant after the per-vertex handlers ran.
    fn rebalance(&mut self) {
        // Fill up if under capacity.
        while self.r.len() < self.k {
            let Some((o, vo)) = self.best_outsider() else {
                break;
            };
            self.promote(o, vo);
        }
        // Swap while the best outsider beats the weakest member.
        while let Some((o, vo)) = self.best_outsider() {
            let Some((ri, rv)) = self
                .r
                .iter()
                .enumerate()
                .map(|(i, &v)| (i, v))
                .min_by(|a, b| self.val[a.1 as usize].total_cmp(&self.val[b.1 as usize]))
            else {
                break;
            };
            let rval = self.val[rv as usize];
            if vo <= rval {
                break; // vo ≤ val(r) ≤ CB(r) for every member (I3)
            }
            if self.stale[rv as usize] {
                // The weakest member's value is a lower bound; sharpen it
                // before deciding the swap.
                self.freshen(rv);
                continue;
            }
            // Exact comparison: outsider wins — swap.
            self.r.swap_remove(ri);
            self.in_r[rv as usize] = false;
            self.heap.push((OrdF64(rval), rv));
            self.promote(o, vo);
            self.stats.swaps += 1;
        }
    }

    fn promote(&mut self, v: VertexId, val: f64) {
        debug_assert!(!self.in_r[v as usize]);
        debug_assert_eq!(self.val[v as usize], val);
        debug_assert!(!self.stale[v as usize]);
        self.in_r[v as usize] = true;
        self.r.push(v);
    }

    /// An endpoint's `CB` moved in an unknown direction; its degree bound
    /// is `ub`.
    fn handle_endpoint(&mut self, w: VertexId) {
        let d = self.g.degree(w) as f64;
        let ub = d * (d - 1.0) / 2.0;
        if self.in_r[w as usize] {
            self.stale[w as usize] = true;
            self.freshen(w); // members must stay comparable
            return;
        }
        match self.min_r_val() {
            Some(min_r) if self.r.len() >= self.k && ub <= min_r => {
                // Cannot enter the top-k: park it under its degree bound
                // (I2) without recomputation.
                self.val[w as usize] = ub;
                self.stale[w as usize] = true;
                self.heap.push((OrdF64(ub), w));
                self.stats.lazy_skips += 1;
            }
            _ => {
                self.stale[w as usize] = true;
                self.freshen(w);
            }
        }
    }

    /// Inserts edge `(u,v)` and repairs the top-k. Returns `false` if the
    /// edge was already present.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || self.g.has_edge(u, v) {
            return false;
        }
        let mut common = std::mem::take(&mut self.scratch_common);
        self.g.common_neighbors_into(u, v, &mut common);
        self.g.insert_edge(u, v);
        self.handle_endpoint(u);
        self.handle_endpoint(v);
        for &w in &common {
            if self.in_r[w as usize] {
                // Decreasing: may fall out of R — recompute and rebalance.
                self.stale[w as usize] = true;
                self.freshen(w);
            } else {
                // Decreasing: the old value stays an upper bound (I2).
                self.stale[w as usize] = true;
                self.stats.lazy_skips += 1;
            }
        }
        self.scratch_common = common;
        self.rebalance();
        true
    }

    /// Deletes edge `(u,v)` and repairs the top-k. Returns `false` if the
    /// edge was absent.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.g.has_edge(u, v) {
            return false;
        }
        let mut common = std::mem::take(&mut self.scratch_common);
        self.g.common_neighbors_into(u, v, &mut common);
        self.g.remove_edge(u, v);
        self.handle_endpoint(u);
        self.handle_endpoint(v);
        for &w in &common {
            if self.in_r[w as usize] {
                // Non-decreasing: membership is safe; value becomes a
                // lower bound (I3). The paper's Example 8 optimization.
                self.stale[w as usize] = true;
                self.stats.lazy_skips += 1;
            } else {
                // Non-decreasing: old val may under-bound. Substitute the
                // degree bound if that cannot reach the top-k; else
                // recompute.
                let d = self.g.degree(w) as f64;
                let ub = d * (d - 1.0) / 2.0;
                match self.min_r_val() {
                    Some(min_r) if self.r.len() >= self.k && ub <= min_r => {
                        self.val[w as usize] = ub;
                        self.stale[w as usize] = true;
                        self.heap.push((OrdF64(ub), w));
                        self.stats.lazy_skips += 1;
                    }
                    _ => {
                        self.stale[w as usize] = true;
                        self.freshen(w);
                    }
                }
            }
        }
        self.scratch_common = common;
        self.rebalance();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_core::compute_all_naive;
    use egobtw_gen::{classic, gnp, toy};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Oracle check: the maintained top-k value multiset equals the true
    /// one (ties make the vertex set ambiguous, values are not).
    fn assert_topk_correct(lazy: &mut LazyTopK, k: usize) {
        let g = lazy.graph().to_csr();
        let mut truth = compute_all_naive(&g);
        truth.sort_by(|a, b| b.total_cmp(a));
        let got = lazy.top_k();
        assert_eq!(got.len(), k.min(g.n()));
        for (rank, &(v, cb)) in got.iter().enumerate() {
            let direct = egobtw_core::naive::ego_betweenness_of(&g, v);
            assert!((cb - direct).abs() < 1e-9, "reported value for {v} stale");
            assert!(
                (cb - truth[rank]).abs() < 1e-9,
                "rank {rank}: {cb} vs oracle {}",
                truth[rank]
            );
        }
    }

    #[test]
    fn initial_topk_matches_oracle() {
        let g = classic::karate_club();
        for k in [1, 3, 10, 34, 50] {
            let mut lazy = LazyTopK::new(&g, k);
            assert_topk_correct(&mut lazy, k);
        }
    }

    #[test]
    fn paper_example7_insert_flips_top1() {
        // k=1, R={f}; inserting (i,k) must: skip recomputing k (bound 3 <
        // 11), recompute i (bound 21 > 11), and land on R={i} (10.5 > 9.5).
        let g = toy::paper_graph();
        let mut lazy = LazyTopK::new(&g, 1);
        assert_eq!(lazy.top_k()[0].0, toy::ids::F);
        lazy.insert_edge(toy::ids::I, toy::ids::K);
        let top = lazy.top_k();
        assert_eq!(top[0].0, toy::ids::I);
        assert!((top[0].1 - 10.5).abs() < 1e-9);
    }

    #[test]
    fn paper_example8_delete_keeps_top1() {
        // k=1: deleting (c,g) leaves f on top (bound of g is 3 < 11; c's
        // bound 15 > 11 forces a recompute, but 14/3 < 11).
        let g = toy::paper_graph();
        let mut lazy = LazyTopK::new(&g, 1);
        lazy.delete_edge(toy::ids::C, toy::ids::G);
        let top = lazy.top_k();
        assert_eq!(top[0].0, toy::ids::F);
        assert!((top[0].1 - 11.0).abs() < 1e-9);
    }

    #[test]
    fn paper_example8_k12_common_neighbor_stays() {
        // k=12: the top-12 before deleting (c,g) is V − {u,v,y,z}; e is a
        // common neighbor whose CB is non-decreasing, so it stays without
        // recomputation.
        let g = toy::paper_graph();
        let mut lazy = LazyTopK::new(&g, 12);
        let before: Vec<VertexId> = {
            let mut vs: Vec<VertexId> = lazy.top_k().iter().map(|e| e.0).collect();
            vs.sort_unstable();
            vs
        };
        let mut expect: Vec<VertexId> = (0..16)
            .filter(|v| ![toy::ids::U, toy::ids::V, toy::ids::Y, toy::ids::Z].contains(v))
            .collect();
        expect.sort_unstable();
        assert_eq!(before, expect);
        lazy.delete_edge(toy::ids::C, toy::ids::G);
        assert_topk_correct(&mut lazy, 12);
    }

    #[test]
    fn lazy_skips_happen() {
        // On a star, inserting a leaf-leaf edge must not recompute the far
        // leaves.
        let g = classic::star(30);
        let mut lazy = LazyTopK::new(&g, 1);
        lazy.insert_edge(1, 2);
        assert!(lazy.stats.lazy_skips > 0, "expected at least one lazy skip");
        assert_topk_correct(&mut lazy, 1);
    }

    #[test]
    fn randomized_stream_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(77);
        for k in [1usize, 4, 10] {
            let g0 = gnp(22, 0.2, k as u64);
            let mut lazy = LazyTopK::new(&g0, k);
            for _ in 0..120 {
                let u = rng.random_range(0..22u32);
                let v = rng.random_range(0..22u32);
                if u == v {
                    continue;
                }
                if lazy.graph().has_edge(u, v) {
                    lazy.delete_edge(u, v);
                } else {
                    lazy.insert_edge(u, v);
                }
                assert_topk_correct(&mut lazy, k);
            }
        }
    }

    #[test]
    fn k_exceeding_n_holds_everyone() {
        let g = classic::path(5);
        let mut lazy = LazyTopK::new(&g, 50);
        lazy.insert_edge(0, 4);
        assert_topk_correct(&mut lazy, 50);
    }

    #[test]
    fn peek_is_fresh_after_build_and_insert_rebalance() {
        let g = classic::karate_club();
        let mut lazy = LazyTopK::new(&g, 5);
        let peek = lazy.peek_top_k();
        assert_eq!(peek.stale_members, 0, "initial build is fully exact");
        assert_eq!(peek.entries, lazy.top_k());
        // An endpoint update freshens members (handle_endpoint forces it),
        // so a pure insert on non-member-adjacent vertices keeps members
        // fresh too; either way top_k() and a fresh peek must agree.
        lazy.insert_edge(4, 12);
        let peek = lazy.peek_top_k();
        let exact = lazy.top_k();
        if peek.stale_members == 0 {
            assert_eq!(peek.entries, exact);
        }
        assert_eq!(lazy.peek_top_k().stale_members, 0, "top_k() refreshed all");
    }

    #[test]
    fn peek_reports_stale_lower_bounds_after_delete() {
        // Delete (c,g) in the paper graph with a large k: common neighbors
        // inside R keep lower-bound values (Example 8), so peek must flag
        // them stale while membership stays a correct top-k set.
        let g = toy::paper_graph();
        let mut lazy = LazyTopK::new(&g, 12);
        let before = lazy.top_k();
        lazy.delete_edge(toy::ids::C, toy::ids::G);
        let peek = lazy.peek_top_k();
        assert!(
            peek.stale_members > 0,
            "Example 8 path must leave stale members"
        );
        assert_eq!(peek.entries.len(), before.len());
        // Peek must not mutate: a second peek sees the identical state.
        let again = lazy.peek_top_k();
        assert_eq!(peek.entries, again.entries);
        assert_eq!(peek.stale_members, again.stale_members);
        // Stale values are lower bounds on the exact refreshed scores, and
        // the membership already matches the refreshed answer.
        let peek_vals: std::collections::HashMap<VertexId, f64> =
            peek.entries.iter().copied().collect();
        let exact = lazy.top_k();
        let mut peek_set: Vec<VertexId> = peek_vals.keys().copied().collect();
        let mut exact_set: Vec<VertexId> = exact.iter().map(|e| e.0).collect();
        peek_set.sort_unstable();
        exact_set.sort_unstable();
        assert_eq!(peek_set, exact_set, "peek membership must already be exact");
        for &(v, cb) in &exact {
            assert!(
                peek_vals[&v] <= cb + 1e-9,
                "stale value {} for {v} must lower-bound exact {cb}",
                peek_vals[&v]
            );
        }
        assert_eq!(
            lazy.peek_top_k().stale_members,
            0,
            "refresh clears staleness"
        );
        assert_topk_correct(&mut lazy, 12);
    }

    #[test]
    fn peek_membership_matches_oracle_on_random_stream() {
        let mut rng = StdRng::seed_from_u64(901);
        let g0 = gnp(20, 0.25, 3);
        let k = 5;
        let mut lazy = LazyTopK::new(&g0, k);
        for _ in 0..60 {
            let u = rng.random_range(0..20u32);
            let v = rng.random_range(0..20u32);
            if u == v {
                continue;
            }
            if lazy.graph().has_edge(u, v) {
                lazy.delete_edge(u, v);
            } else {
                lazy.insert_edge(u, v);
            }
            // Peek first (must not disturb state), then verify exactness.
            let peek = lazy.peek_top_k();
            assert_eq!(peek.entries.len(), k.min(lazy.graph().n()));
            let exact = lazy.top_k();
            let mut ps: Vec<VertexId> = peek.entries.iter().map(|e| e.0).collect();
            let mut es: Vec<VertexId> = exact.iter().map(|e| e.0).collect();
            ps.sort_unstable();
            es.sort_unstable();
            assert_eq!(ps, es);
            assert_topk_correct(&mut lazy, k);
        }
    }

    #[test]
    fn stream_against_local_index() {
        // Cross-check the two maintainers against each other on a denser
        // stream than the naive-oracle test can afford.
        let mut rng = StdRng::seed_from_u64(5);
        let g0 = gnp(40, 0.15, 8);
        let k = 6;
        let mut lazy = LazyTopK::new(&g0, k);
        let mut local = crate::local::LocalIndex::new(&g0);
        for _ in 0..200 {
            let u = rng.random_range(0..40u32);
            let v = rng.random_range(0..40u32);
            if u == v {
                continue;
            }
            if lazy.graph().has_edge(u, v) {
                lazy.delete_edge(u, v);
                local.delete_edge(u, v);
            } else {
                lazy.insert_edge(u, v);
                local.insert_edge(u, v);
            }
            let lv: Vec<f64> = lazy.top_k().iter().map(|e| e.1).collect();
            let tv: Vec<f64> = local.top_k(k).iter().map(|e| e.1).collect();
            for (a, b) in lv.iter().zip(&tv) {
                assert!((a - b).abs() < 1e-9, "maintainers disagree: {a} vs {b}");
            }
        }
    }
}
