//! Edge-update streams and replay constructors.
//!
//! An update stream is a plain list of [`EdgeOp`]s. Replay semantics are
//! deliberately forgiving — inserting a present edge, deleting an absent
//! one, or naming a self-loop is a *no-op*, exactly mirroring what the
//! maintainers' `insert_edge`/`delete_edge` already return `false` for.
//! That forgiveness is what makes streams shrinkable: the conformance
//! harness can drop any prefix, suffix, or subset of a failing stream and
//! the remainder still has well-defined meaning.
//!
//! [`replay_graph`] is the stream's ground truth: the graph an oblivious
//! observer ends up with. [`LazyTopK::replay`] and [`LocalIndex::replay`]
//! build a maintainer on the initial graph and push the same ops through
//! its incremental path, so "maintained state" and "state rebuilt from
//! scratch on [`replay_graph`]'s output" can be compared differentially.

use crate::{DeltaIndex, LazyTopK, LocalIndex};
use egobtw_graph::{CsrGraph, DynGraph, VertexId};

/// One edge update. Endpoints must be `< n` of the graph the stream is
/// replayed onto; ops that do not apply (duplicate insert, absent delete,
/// self-loop) are skipped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert the undirected edge `(u, v)`.
    Insert(VertexId, VertexId),
    /// Delete the undirected edge `(u, v)`.
    Delete(VertexId, VertexId),
}

impl EdgeOp {
    /// Byte length of one op in the binary wire form used by the service's
    /// write-ahead log: a tag byte plus two little-endian `u32` endpoints.
    pub const WIRE_LEN: usize = 9;

    /// The op's endpoints, insert or delete alike.
    pub fn endpoints(self) -> (VertexId, VertexId) {
        match self {
            EdgeOp::Insert(u, v) | EdgeOp::Delete(u, v) => (u, v),
        }
    }

    /// Appends the binary wire form (`tag u8 | u u32 le | v u32 le`,
    /// tag 0 = insert, 1 = delete) to `buf`.
    pub fn encode_into(self, buf: &mut Vec<u8>) {
        let (tag, (u, v)) = match self {
            EdgeOp::Insert(u, v) => (0u8, (u, v)),
            EdgeOp::Delete(u, v) => (1u8, (u, v)),
        };
        buf.push(tag);
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Decodes one op from the start of `bytes` ([`EdgeOp::encode_into`]'s
    /// inverse). Returns `None` on a short buffer or an unknown tag —
    /// never panics, so a torn or corrupted log record degrades to a clean
    /// decode failure.
    pub fn decode(bytes: &[u8]) -> Option<EdgeOp> {
        if bytes.len() < Self::WIRE_LEN {
            return None;
        }
        let u = u32::from_le_bytes(bytes[1..5].try_into().ok()?);
        let v = u32::from_le_bytes(bytes[5..9].try_into().ok()?);
        match bytes[0] {
            0 => Some(EdgeOp::Insert(u, v)),
            1 => Some(EdgeOp::Delete(u, v)),
            _ => None,
        }
    }
}

/// Replays `ops` onto a mutable copy of `g0` and returns it — the
/// definitional final state of a stream, with no maintenance cleverness.
pub fn replay_graph(g0: &CsrGraph, ops: &[EdgeOp]) -> DynGraph {
    let mut g = DynGraph::from_csr(g0);
    for &op in ops {
        match op {
            EdgeOp::Insert(u, v) => {
                g.insert_edge(u, v);
            }
            EdgeOp::Delete(u, v) => {
                g.remove_edge(u, v);
            }
        }
    }
    g
}

impl LazyTopK {
    /// Applies one op through the lazy maintenance path. Returns whether
    /// the graph changed.
    pub fn apply(&mut self, op: EdgeOp) -> bool {
        match op {
            EdgeOp::Insert(u, v) => self.insert_edge(u, v),
            EdgeOp::Delete(u, v) => self.delete_edge(u, v),
        }
    }

    /// Builds the maintainer on `g0`, then replays `ops` in order through
    /// the incremental path.
    pub fn replay(g0: &CsrGraph, k: usize, ops: &[EdgeOp]) -> Self {
        let mut lazy = LazyTopK::new(g0, k);
        for &op in ops {
            lazy.apply(op);
        }
        lazy
    }
}

impl LocalIndex {
    /// Applies one op through the exact local-update path. Returns whether
    /// the graph changed.
    pub fn apply(&mut self, op: EdgeOp) -> bool {
        match op {
            EdgeOp::Insert(u, v) => self.insert_edge(u, v),
            EdgeOp::Delete(u, v) => self.delete_edge(u, v),
        }
    }

    /// Builds the index on `g0`, then replays `ops` in order through the
    /// incremental path.
    pub fn replay(g0: &CsrGraph, ops: &[EdgeOp]) -> Self {
        let mut local = LocalIndex::new(g0);
        for &op in ops {
            local.apply(op);
        }
        local
    }
}

impl DeltaIndex {
    /// Applies one op through the dependency-delta path. Returns whether
    /// the graph changed.
    pub fn apply(&mut self, op: EdgeOp) -> bool {
        match op {
            EdgeOp::Insert(u, v) => self.insert_edge(u, v),
            EdgeOp::Delete(u, v) => self.delete_edge(u, v),
        }
    }

    /// Builds the index on `g0`, then replays `ops` in order through the
    /// incremental path.
    pub fn replay(g0: &CsrGraph, k: usize, ops: &[EdgeOp]) -> Self {
        let mut delta = DeltaIndex::new(g0, k);
        for &op in ops {
            delta.apply(op);
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_gen::classic;

    fn ops() -> Vec<EdgeOp> {
        vec![
            EdgeOp::Insert(1, 2), // applies
            EdgeOp::Insert(1, 2), // duplicate: no-op
            EdgeOp::Insert(3, 3), // self-loop: no-op
            EdgeOp::Delete(0, 4), // applies (star edge)
            EdgeOp::Delete(0, 4), // absent: no-op
            EdgeOp::Insert(2, 3), // applies
            EdgeOp::Delete(2, 3), // undoes the previous op
        ]
    }

    #[test]
    fn replay_graph_applies_and_skips() {
        let g0 = classic::star(6);
        let g = replay_graph(&g0, &ops());
        assert_eq!(g.validate(), Ok(()));
        assert_eq!(g.m(), g0.m()); // +1 edge, −1 edge, rest no-ops
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 4));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn maintainers_replay_to_the_same_graph() {
        let g0 = classic::karate_club();
        let stream = ops();
        let truth = replay_graph(&g0, &stream).to_csr();
        let mut lazy = LazyTopK::replay(&g0, 5, &stream);
        let local = LocalIndex::replay(&g0, &stream);
        let delta = DeltaIndex::replay(&g0, 5, &stream);
        assert_eq!(lazy.graph().m(), truth.m());
        assert_eq!(local.graph().m(), truth.m());
        assert_eq!(delta.graph().m(), truth.m());
        // And on the same values: maintained top-k vs fresh search.
        let fresh = egobtw_core::base_bsearch(&truth, 5);
        for ((_, a), (_, b)) in lazy.top_k().iter().zip(&fresh.entries) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        for ((_, a), (_, b)) in local.top_k(5).iter().zip(&fresh.entries) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        for ((_, a), (_, b)) in delta.top_k().iter().zip(&fresh.entries) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn endpoints_accessor() {
        assert_eq!(EdgeOp::Insert(3, 7).endpoints(), (3, 7));
        assert_eq!(EdgeOp::Delete(9, 1).endpoints(), (9, 1));
    }

    #[test]
    fn wire_codec_roundtrip_and_rejection() {
        let mut buf = Vec::new();
        for op in [
            EdgeOp::Insert(0, 1),
            EdgeOp::Delete(7, 3),
            EdgeOp::Insert(u32::MAX, 0),
        ] {
            buf.clear();
            op.encode_into(&mut buf);
            assert_eq!(buf.len(), EdgeOp::WIRE_LEN);
            assert_eq!(EdgeOp::decode(&buf), Some(op));
        }
        // Short buffers and unknown tags decode to None, never panic.
        for cut in 0..EdgeOp::WIRE_LEN {
            assert_eq!(EdgeOp::decode(&buf[..cut]), None);
        }
        let mut bad = buf.clone();
        bad[0] = 2;
        assert_eq!(EdgeOp::decode(&bad), None);
        assert_eq!(EdgeOp::decode(&[]), None);
    }
}
