//! Planted-partition (stochastic block) graphs.
//!
//! Collaboration networks such as DBLP consist of dense co-author groups
//! bridged by a few prolific authors. The planted-partition model
//! reproduces exactly that: dense intra-community blocks (high triangle
//! count — expensive egos) and sparse inter-community edges (the bridges
//! that earn high ego-betweenness). Used for the DBLP stand-in and the
//! DB/IR case-study graphs of Exp-7.

use egobtw_graph::{pack_pair, CsrGraph, FxHashSet, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`planted_partition`].
#[derive(Clone, Copy, Debug)]
pub struct PlantedPartition {
    /// Number of communities.
    pub communities: usize,
    /// Vertices per community (n = communities × community_size).
    pub community_size: usize,
    /// Intra-community edge probability.
    pub p_in: f64,
    /// Expected number of inter-community edges **per vertex** (sampled as
    /// uniformly random cross pairs; a rate rather than a per-pair
    /// probability so the parameter stays meaningful as n grows).
    pub cross_edges_per_vertex: f64,
}

/// Generates a planted-partition graph. Community `c` owns the contiguous
/// id range `[c * community_size, (c+1) * community_size)`.
pub fn planted_partition(p: PlantedPartition, seed: u64) -> CsrGraph {
    assert!(p.communities >= 1 && p.community_size >= 1);
    assert!((0.0..=1.0).contains(&p.p_in));
    assert!(p.cross_edges_per_vertex >= 0.0);
    let n = p.communities * p.community_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();

    // Dense intra-community blocks: communities are small, so the O(size²)
    // pair loop per community is the fast path.
    for c in 0..p.communities {
        let base = (c * p.community_size) as VertexId;
        for i in 0..p.community_size as VertexId {
            for j in i + 1..p.community_size as VertexId {
                if rng.random_bool(p.p_in) {
                    edges.push((base + i, base + j));
                }
            }
        }
    }

    // Sparse cross edges: sample the target count directly instead of
    // flipping a coin for every one of the O(n²) cross pairs.
    if p.communities > 1 {
        let target = (p.cross_edges_per_vertex * n as f64).round() as usize;
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        seen.reserve(target);
        let mut placed = 0usize;
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(20).max(64);
        while placed < target && attempts < max_attempts {
            attempts += 1;
            let u = rng.random_range(0..n as VertexId);
            let v = rng.random_range(0..n as VertexId);
            let same_comm = (u as usize) / p.community_size == (v as usize) / p.community_size;
            if u != v && !same_comm && seen.insert(pack_pair(u, v)) {
                edges.push((u, v));
                placed += 1;
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PlantedPartition {
        PlantedPartition {
            communities: 20,
            community_size: 10,
            p_in: 0.5,
            cross_edges_per_vertex: 0.5,
        }
    }

    #[test]
    fn vertex_count_and_density() {
        let g = planted_partition(small(), 1);
        assert_eq!(g.n(), 200);
        // Expected intra edges: 20 * C(10,2) * 0.5 = 450; cross: 100.
        let m = g.m() as f64;
        assert!((400.0..650.0).contains(&m), "m = {m}");
    }

    #[test]
    fn communities_are_denser_than_cross() {
        let g = planted_partition(small(), 2);
        let mut intra = 0usize;
        let mut cross = 0usize;
        for (u, v) in g.edges() {
            if u / 10 == v / 10 {
                intra += 1;
            } else {
                cross += 1;
            }
        }
        assert!(intra > 3 * cross, "intra={intra} cross={cross}");
    }

    #[test]
    fn single_community_has_no_cross() {
        let p = PlantedPartition {
            communities: 1,
            community_size: 30,
            p_in: 0.3,
            cross_edges_per_vertex: 5.0,
        };
        let g = planted_partition(p, 3);
        assert_eq!(g.n(), 30);
    }

    #[test]
    fn deterministic() {
        let a = planted_partition(small(), 7);
        let b = planted_partition(small(), 7);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn triangle_rich() {
        let g = planted_partition(small(), 4);
        assert!(egobtw_graph::triangle::count_triangles(&g) > 100);
    }
}
