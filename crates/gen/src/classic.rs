//! Deterministic graph families and small named graphs.
//!
//! These have hand-checkable ego-betweenness values, which makes them the
//! backbone of the unit-test suites: stars (the hub gets the maximal
//! `d(d-1)/2`), complete graphs (everything is 0), paths, cycles, and
//! Zachary's karate club for realistic-but-tiny demos.

use egobtw_graph::{CsrGraph, VertexId};

/// Complete graph `K_n`. Every ego network is a clique, so every
/// ego-betweenness is exactly 0.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Star `S_n`: vertex 0 is the hub joined to `n-1` leaves. The hub's
/// ego-betweenness is `(n-1)(n-2)/2` (every leaf pair routes through it);
/// leaves score 0.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 1);
    let edges: Vec<_> = (1..n as VertexId).map(|v| (0, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// Path `P_n` (vertices 0–1–2–⋯). Interior vertices have ego-betweenness 1
/// (their two neighbors are non-adjacent with no common connector).
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<_> = (1..n as VertexId).map(|v| (v - 1, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// Cycle `C_n`. For `n ≥ 4` every vertex has ego-betweenness 1: its two
/// neighbors are non-adjacent and their only other common neighbor (in
/// `C_4`, the antipode) lies outside the ego network. `C_3` gives 0.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3);
    let mut edges: Vec<_> = (1..n as VertexId).map(|v| (v - 1, v)).collect();
    edges.push((n as VertexId - 1, 0));
    CsrGraph::from_edges(n, &edges)
}

/// Two cliques of size `s` joined by a single bridge edge between vertex
/// `s-1` and vertex `s`. The bridge endpoints are the classic
/// high-betweenness "broker" vertices.
pub fn barbell(s: usize) -> CsrGraph {
    assert!(s >= 2);
    let mut edges = Vec::new();
    for u in 0..s as VertexId {
        for v in u + 1..s as VertexId {
            edges.push((u, v));
        }
    }
    for u in 0..s as VertexId {
        for v in u + 1..s as VertexId {
            edges.push((s as VertexId + u, s as VertexId + v));
        }
    }
    edges.push((s as VertexId - 1, s as VertexId));
    CsrGraph::from_edges(2 * s, &edges)
}

/// Zachary's karate club (34 vertices, 78 edges) — the standard
/// social-network toy dataset, hardcoded.
pub fn karate_club() -> CsrGraph {
    #[rustfmt::skip]
    const EDGES: [(VertexId, VertexId); 78] = [
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
        (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31), (1, 2),
        (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30), (2, 3),
        (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32), (3, 7),
        (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16), (6, 16),
        (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
        (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
        (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
        (24, 25), (24, 27), (24, 31), (25, 31), (26, 29), (26, 33), (27, 33),
        (28, 31), (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
        (31, 33), (32, 33),
    ];
    CsrGraph::from_edges(34, &EDGES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_sizes() {
        let g = complete(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 15);
        assert!(g.vertices().all(|u| g.degree(u) == 5));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|v| g.degree(v as u32) == 1));
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert!(cycle(5).vertices().all(|u| cycle(5).degree(u) == 2));
    }

    #[test]
    fn barbell_bridge() {
        let g = barbell(4);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 6 + 6 + 1);
        assert!(g.has_edge(3, 4));
        assert_eq!(g.degree(3), 4);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn karate_canonical_stats() {
        let g = karate_club();
        assert_eq!(g.n(), 34);
        assert_eq!(g.m(), 78);
        assert_eq!(g.degree(33), 17, "instructor");
        assert_eq!(g.degree(0), 16, "president");
        assert_eq!(egobtw_graph::triangle::count_triangles(&g), 45);
    }
}
