//! Synthetic graph generators.
//!
//! The paper evaluates on five SNAP datasets that are unavailable offline;
//! these generators produce deterministic stand-ins that preserve the three
//! structural axes the algorithms are sensitive to (degree skew, triangle
//! density, community structure) — see DESIGN.md §5 for the mapping.
//!
//! All generators take an explicit `seed` and are fully deterministic: the
//! same `(parameters, seed)` always yields the same graph, so experiment
//! tables are reproducible run to run.
//!
//! * [`ba::barabasi_albert`] — preferential attachment (heavy-tailed social
//!   networks: Youtube / Pokec / LiveJournal stand-ins);
//! * [`rmat::rmat`] — recursive-matrix sampling (extreme hub skew:
//!   WikiTalk stand-in);
//! * [`community::planted_partition`] — dense intra-community cliques
//!   (collaboration networks: DBLP / case-study stand-ins);
//! * [`er`] — Erdős–Rényi G(n,m) and G(n,p) reference models;
//! * [`ws::watts_strogatz`] — small-world ring rewiring;
//! * [`classic`] — deterministic families (complete, star, path, …) plus
//!   Zachary's karate club for human-scale examples;
//! * [`toy::paper_graph`] — the exact 16-vertex running example of the
//!   paper's Fig. 1, reconstructed from the worked examples, with golden
//!   ego-betweenness values for testing;
//! * [`sample`] — uniform edge / vertex subsampling (scalability
//!   experiment, Fig. 9).

pub mod ba;
pub mod classic;
pub mod community;
pub mod er;
pub mod rmat;
pub mod sample;
pub mod toy;
pub mod ws;

pub use ba::barabasi_albert;
pub use community::planted_partition;
pub use er::{gnm, gnp};
pub use rmat::rmat;
pub use ws::watts_strogatz;

use egobtw_graph::CsrGraph;

/// The families [`synth_family`] accepts, with base sizes at scale 1.0.
pub const SYNTH_FAMILIES: &[&str] = &[
    "karate",
    "toy",
    "er",
    "ba",
    "ws",
    "rmat",
    "community",
    "hub",
];

/// One-stop named-family synthesis, shared by the `mkdata` binary and the
/// service's `egobtw-cli loadgen --gen` so "the same `(family, scale,
/// seed)` is the same graph" holds *across tools*, not just within one.
/// `scale` multiplies the family's base size (ignored by the fixed
/// `karate`/`toy` fixtures); the floor is 8 vertices.
pub fn synth_family(family: &str, scale: f64, seed: u64) -> Result<CsrGraph, String> {
    let n = |base: usize| ((base as f64 * scale) as usize).max(8);
    Ok(match family {
        "karate" => classic::karate_club(),
        "toy" => toy::paper_graph(),
        "er" => gnp(n(200), 0.05, seed),
        "ba" => barabasi_albert(n(200), 3, seed),
        // Hub-heavy but sparse (m ≈ n): attachment 1 grows a scale-free
        // tree whose high-degree hubs dominate the ranking while common
        // neighborhoods stay tiny, so per-op incremental work is small
        // and the per-publish cost (sorting all n scores vs reading off
        // a k-heap) dominates an update-heavy serving workload.
        "hub" => barabasi_albert(n(2000), 1, seed),
        "ws" => watts_strogatz(n(200), 6, 0.1, seed),
        "rmat" => {
            let target = n(256);
            let s = (usize::BITS - 1 - target.leading_zeros()).max(3);
            rmat(s, 4, rmat::RmatParams::skewed(), seed)
        }
        "community" => planted_partition(
            community::PlantedPartition {
                communities: n(20),
                community_size: 10,
                p_in: 0.45,
                cross_edges_per_vertex: 0.4,
            },
            seed,
        ),
        other => {
            return Err(format!(
                "unknown family {other:?} (families: {})",
                SYNTH_FAMILIES.join(", ")
            ))
        }
    })
}

#[cfg(test)]
mod synth_tests {
    use super::*;

    #[test]
    fn every_family_synthesizes_deterministically() {
        for &family in SYNTH_FAMILIES {
            let a = synth_family(family, 0.5, 9).unwrap();
            let b = synth_family(family, 0.5, 9).unwrap();
            assert!(a.n() >= 8, "{family}");
            assert_eq!((a.n(), a.m()), (b.n(), b.m()), "{family}");
            assert_eq!(a.validate(), Ok(()), "{family}");
        }
        assert!(synth_family("nope", 1.0, 0).is_err());
    }
}
