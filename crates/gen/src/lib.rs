//! Synthetic graph generators.
//!
//! The paper evaluates on five SNAP datasets that are unavailable offline;
//! these generators produce deterministic stand-ins that preserve the three
//! structural axes the algorithms are sensitive to (degree skew, triangle
//! density, community structure) — see DESIGN.md §5 for the mapping.
//!
//! All generators take an explicit `seed` and are fully deterministic: the
//! same `(parameters, seed)` always yields the same graph, so experiment
//! tables are reproducible run to run.
//!
//! * [`ba::barabasi_albert`] — preferential attachment (heavy-tailed social
//!   networks: Youtube / Pokec / LiveJournal stand-ins);
//! * [`rmat::rmat`] — recursive-matrix sampling (extreme hub skew:
//!   WikiTalk stand-in);
//! * [`community::planted_partition`] — dense intra-community cliques
//!   (collaboration networks: DBLP / case-study stand-ins);
//! * [`er`] — Erdős–Rényi G(n,m) and G(n,p) reference models;
//! * [`ws::watts_strogatz`] — small-world ring rewiring;
//! * [`classic`] — deterministic families (complete, star, path, …) plus
//!   Zachary's karate club for human-scale examples;
//! * [`toy::paper_graph`] — the exact 16-vertex running example of the
//!   paper's Fig. 1, reconstructed from the worked examples, with golden
//!   ego-betweenness values for testing;
//! * [`sample`] — uniform edge / vertex subsampling (scalability
//!   experiment, Fig. 9).

pub mod ba;
pub mod classic;
pub mod community;
pub mod er;
pub mod rmat;
pub mod sample;
pub mod toy;
pub mod ws;

pub use ba::barabasi_albert;
pub use community::planted_partition;
pub use er::{gnm, gnp};
pub use rmat::rmat;
pub use ws::watts_strogatz;
