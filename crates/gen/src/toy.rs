//! The paper's Fig. 1 running example, reconstructed exactly.
//!
//! The paper never lists the edge set, but the worked examples pin it down
//! uniquely (see DESIGN.md §4). This module hardcodes that reconstruction
//! together with every ego-betweenness value the paper states, so the whole
//! stack can be golden-tested against the authors' own numbers:
//!
//! * upper bounds / processing order of Fig. 2 (`c i f d x e h g b a …`),
//! * `CB` values of Fig. 2 (41/6, 8, 11, 14/3, 10, 9/2, 2/3, 2/3, 1, 1),
//! * top-k answers of Example 2 (`k=1 → {f}`, `k=3 → {f,x,i}`),
//! * Example 5's post-insert values (insert `(i,k)`: `CB(i)=10.5`,
//!   `CB(k)=0.5`, `CB(f)=9.5`),
//! * Example 6's post-delete values for `g` (`CB(g)=0.5`). The paper's
//!   claims for `c` and `e` after deleting `(c,g)` contradict its own
//!   Lemmas 6–7; the corrected values (`14/3` and `13/2`) are recorded
//!   here — see DESIGN.md §4 ("paper errata").
//!
//! Vertex ids are assigned so the paper's tie-break ("larger id first"
//! among equal degrees) reproduces the exact processing order of Fig. 2.

use egobtw_graph::{CsrGraph, VertexId};

/// Ids for the 16 labeled vertices of Fig. 1(a).
#[allow(missing_docs)]
pub mod ids {
    use egobtw_graph::VertexId;
    pub const A: VertexId = 0;
    pub const B: VertexId = 1;
    pub const G: VertexId = 2;
    pub const H: VertexId = 3;
    pub const E: VertexId = 4;
    pub const X: VertexId = 5;
    pub const D: VertexId = 6;
    pub const F: VertexId = 7;
    pub const I: VertexId = 8;
    pub const C: VertexId = 9;
    pub const J: VertexId = 10;
    pub const K: VertexId = 11;
    pub const Y: VertexId = 12;
    pub const Z: VertexId = 13;
    pub const U: VertexId = 14;
    pub const V: VertexId = 15;
}

/// The 30 edges of Fig. 1(a).
#[rustfmt::skip]
pub const EDGES: [(VertexId, VertexId); 30] = {
    use ids::*;
    [
        (A, B), (A, C), (A, D), (A, E),
        (B, C), (B, D), (B, F),
        (C, D), (C, E), (C, G), (C, H), (C, F),
        (D, G), (D, H), (D, I),
        (E, G), (E, I), (E, J),
        (F, H), (F, I), (F, K), (F, X),
        (G, I),
        (H, I),
        (I, J),
        (J, K),
        (X, Y), (X, Z), (X, U), (X, V),
    ]
};

/// Builds the Fig. 1(a) graph (16 vertices, 30 edges).
pub fn paper_graph() -> CsrGraph {
    CsrGraph::from_edges(16, &EDGES)
}

/// Human-readable label of a toy-graph vertex.
pub fn label(v: VertexId) -> char {
    const LABELS: [char; 16] = [
        'a', 'b', 'g', 'h', 'e', 'x', 'd', 'f', 'i', 'c', 'j', 'k', 'y', 'z', 'u', 'v',
    ];
    LABELS[v as usize]
}

/// Exact ego-betweenness of every vertex (from the paper's Fig. 2 /
/// examples; `j`'s value is derived — the paper prunes it before exact
/// computation).
pub fn expected_cb() -> Vec<(VertexId, f64)> {
    use ids::*;
    vec![
        (A, 1.0),
        (B, 1.0),
        (C, 41.0 / 6.0),
        (D, 14.0 / 3.0),
        (E, 4.5),
        (F, 11.0),
        (G, 2.0 / 3.0),
        (H, 2.0 / 3.0),
        (I, 8.0),
        (J, 2.0),
        (K, 1.0),
        (X, 10.0),
        (Y, 0.0),
        (Z, 0.0),
        (U, 0.0),
        (V, 0.0),
    ]
}

/// Fig. 2's processing order of BaseBSearch for `k = 5` (the ten vertices
/// whose ego-betweenness is computed exactly, in order).
pub fn fig2_processing_order() -> Vec<VertexId> {
    use ids::*;
    vec![C, I, F, D, X, E, H, G, B, A]
}

/// Example 5: after inserting `(i,k)`, the affected vertices and their new
/// exact values (`i`, `k`, and their single common neighbor `f`).
pub fn example5_after_insert() -> Vec<(VertexId, f64)> {
    use ids::*;
    vec![(I, 10.5), (K, 0.5), (F, 9.5)]
}

/// Example 6 (corrected per Lemmas 6–7; see module docs): after deleting
/// `(c,g)`, the affected vertices and their new exact values.
pub fn example6_after_delete() -> Vec<(VertexId, f64)> {
    use ids::*;
    vec![(C, 14.0 / 3.0), (G, 0.5), (E, 6.5)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::*;

    #[test]
    fn degrees_match_fig2_upper_bounds() {
        let g = paper_graph();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 30);
        // ub(u) = d(d-1)/2 must equal Fig. 2's row: c:21 i:15 f:15 d:15
        // x:10 e:10 h:6 g:6 b:6 a:6, j:3, k:1.
        let ub = |v: VertexId| g.degree_bound(v);
        assert_eq!(ub(C), 21.0);
        assert_eq!(ub(I), 15.0);
        assert_eq!(ub(F), 15.0);
        assert_eq!(ub(D), 15.0);
        assert_eq!(ub(X), 10.0);
        assert_eq!(ub(E), 10.0);
        for v in [H, G, B, A] {
            assert_eq!(ub(v), 6.0);
        }
        assert_eq!(ub(J), 3.0);
        assert_eq!(ub(K), 1.0);
        for v in [Y, Z, U, V] {
            assert_eq!(ub(v), 0.0);
        }
    }

    #[test]
    fn total_order_matches_fig2() {
        let g = paper_graph();
        let order = egobtw_graph::DegreeOrder::new(&g);
        let prefix: Vec<VertexId> = order.iter().take(10).collect();
        assert_eq!(prefix, fig2_processing_order());
    }

    #[test]
    fn example1_ego_network_of_d() {
        let g = paper_graph();
        // N(d) = {a,b,c,g,h,i} with exactly the 7 edges listed in Ex. 1.
        let mut nd: Vec<VertexId> = g.neighbors(D).to_vec();
        nd.sort_unstable();
        let mut expect = vec![A, B, C, G, H, I];
        expect.sort_unstable();
        assert_eq!(nd, expect);
        // The three shortest c–i paths of Example 1: via g, h, d.
        assert!(g.has_edge(C, G) && g.has_edge(G, I));
        assert!(g.has_edge(C, H) && g.has_edge(H, I));
        assert!(!g.has_edge(C, I));
    }

    #[test]
    fn labels_roundtrip() {
        assert_eq!(label(C), 'c');
        assert_eq!(label(V), 'v');
        let mut seen: Vec<char> = (0..16).map(label).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16, "labels are distinct");
    }
}
