//! Erdős–Rényi random graphs.

use egobtw_graph::{pack_pair, CsrGraph, FxHashSet, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// G(n, m): exactly `m` distinct edges sampled uniformly among all pairs.
///
/// Panics if `m` exceeds the number of available pairs.
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= pairs,
        "requested {m} edges but only {pairs} pairs exist"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.reserve(m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n as VertexId);
        let v = rng.random_range(0..n as VertexId);
        if u != v && seen.insert(pack_pair(u, v)) {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// G(n, p): each pair independently an edge with probability `p`.
///
/// O(n²) sampling — intended for small test graphs; use [`gnm`] at scale.
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            if rng.random_bool(p) {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(100, 250, 1);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 250);
    }

    #[test]
    fn gnm_deterministic() {
        let a = gnm(50, 100, 9);
        let b = gnm(50, 100, 9);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = gnm(50, 100, 10);
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn gnm_saturated() {
        let g = gnm(5, 10, 3);
        assert_eq!(g.m(), 10, "complete graph on 5 vertices");
    }

    #[test]
    #[should_panic(expected = "pairs exist")]
    fn gnm_too_many_edges() {
        gnm(3, 4, 0);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 0).m(), 0);
        assert_eq!(gnp(10, 1.0, 0).m(), 45);
    }

    #[test]
    fn gnp_density_plausible() {
        let g = gnp(200, 0.1, 4);
        let expect = 0.1 * (200.0 * 199.0 / 2.0);
        let m = g.m() as f64;
        assert!((m - expect).abs() < expect * 0.25, "m={m} expect≈{expect}");
    }
}
