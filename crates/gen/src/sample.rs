//! Uniform subsampling for the scalability experiment (Fig. 9).
//!
//! The paper generates four subgraphs per dataset "by randomly picking
//! 20%–80% of the edges (vertices)". Edge sampling keeps all vertices and a
//! uniform fraction of edges; vertex sampling keeps an induced subgraph on
//! a uniform vertex subset, relabeled densely.

use egobtw_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Keeps `round(frac · m)` uniformly random edges on the same vertex set.
pub fn edge_sample(g: &CsrGraph, frac: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&frac));
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let keep = ((g.m() as f64) * frac).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);
    edges.truncate(keep);
    CsrGraph::from_edges(g.n(), &edges)
}

/// Induced subgraph on `round(frac · n)` uniformly random vertices,
/// relabeled to a dense `0..n'` range. Returns the subgraph and the map
/// `kept[new_id] = old_id`.
pub fn vertex_sample(g: &CsrGraph, frac: f64, seed: u64) -> (CsrGraph, Vec<VertexId>) {
    assert!((0.0..=1.0).contains(&frac));
    let mut verts: Vec<VertexId> = (0..g.n() as VertexId).collect();
    let keep = ((g.n() as f64) * frac).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    verts.shuffle(&mut rng);
    verts.truncate(keep);
    verts.sort_unstable();
    let mut new_id = vec![VertexId::MAX; g.n()];
    for (i, &v) in verts.iter().enumerate() {
        new_id[v as usize] = i as VertexId;
    }
    let mut edges = Vec::new();
    for &v in &verts {
        for &w in g.neighbors(v) {
            if v < w && new_id[w as usize] != VertexId::MAX {
                edges.push((new_id[v as usize], new_id[w as usize]));
            }
        }
    }
    (CsrGraph::from_edges(verts.len(), &edges), verts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::gnm;

    #[test]
    fn edge_sample_counts() {
        let g = gnm(100, 400, 0);
        let s = edge_sample(&g, 0.25, 1);
        assert_eq!(s.n(), 100);
        assert_eq!(s.m(), 100);
        let full = edge_sample(&g, 1.0, 1);
        assert_eq!(full.m(), 400);
        let empty = edge_sample(&g, 0.0, 1);
        assert_eq!(empty.m(), 0);
    }

    #[test]
    fn edge_sample_is_subset() {
        let g = gnm(50, 200, 2);
        let s = edge_sample(&g, 0.5, 3);
        for (u, v) in s.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn vertex_sample_induces() {
        let g = gnm(60, 300, 4);
        let (s, kept) = vertex_sample(&g, 0.5, 5);
        assert_eq!(s.n(), 30);
        assert_eq!(kept.len(), 30);
        // Every sampled edge must exist between the original endpoints,
        // and every original edge between kept vertices must survive.
        for (u, v) in s.edges() {
            assert!(g.has_edge(kept[u as usize], kept[v as usize]));
        }
        let mut expected = 0;
        for (i, &a) in kept.iter().enumerate() {
            for &b in kept.iter().skip(i + 1) {
                if g.has_edge(a, b) {
                    expected += 1;
                }
            }
        }
        assert_eq!(s.m(), expected);
    }

    #[test]
    fn deterministic() {
        let g = gnm(80, 300, 6);
        let a = edge_sample(&g, 0.4, 9);
        let b = edge_sample(&g, 0.4, 9);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
