//! R-MAT recursive-matrix graphs.
//!
//! R-MAT with skewed quadrant probabilities produces a few enormous hubs
//! and a long thin tail — the WikiTalk communication-network profile
//! (d_max ≈ 100k on 2.4M vertices in the paper's Table I). That extreme
//! skew is what stresses the upper-bound pruning (few vertices dominate)
//! and the vertex-parallel load balance.

use egobtw_graph::{pack_pair, CsrGraph, FxHashSet, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters: quadrant probabilities, summing to 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability (the "hub" mass).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The classic skewed parameterization (a=0.57, b=c=0.19, d=0.05).
    pub fn skewed() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// A replayable stream of the distinct R-MAT edges for one seed: a fresh
/// instance re-runs the identical RNG trajectory and accept/reject
/// decisions, so two passes over `edge_stream(...)` see the same edges
/// in the same order. The dedup set is the only per-edge state — there
/// is never a materialized `Vec<(u, v)>`.
fn edge_stream(
    scale: u32,
    edge_factor: usize,
    params: RmatParams,
    seed: u64,
) -> impl Iterator<Item = (VertexId, VertexId)> {
    let n = 1usize << scale;
    let target = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.reserve(target);
    let max_attempts = target.saturating_mul(20);
    let mut attempts = 0usize;
    std::iter::from_fn(move || {
        while seen.len() < target && attempts < max_attempts {
            attempts += 1;
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..scale {
                let r: f64 = rng.random();
                let (du, dv) = if r < params.a {
                    (0, 0)
                } else if r < params.a + params.b {
                    (0, 1)
                } else if r < params.a + params.b + params.c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            let (u, v) = (u as VertexId, v as VertexId);
            if u != v && seen.insert(pack_pair(u, v)) {
                return Some((u, v));
            }
        }
        None
    })
}

/// Generates an undirected R-MAT graph with `2^scale` vertices and
/// `edge_factor * 2^scale` *distinct* edges (self-loops and duplicates are
/// re-sampled, so the edge count is met exactly unless the space is too
/// small, in which case generation stops after a bounded number of
/// attempts and the graph may have fewer edges).
///
/// Edges are *streamed* into the CSR via seeded two-pass replay
/// ([`CsrGraph::from_edge_stream`]): pass one counts degrees, pass two
/// re-runs the generator and scatters endpoints in place. Peak transient
/// memory is the dedup set plus the CSR itself — no edge vector, no
/// sort buffer — so large scales are bounded by the output, not the
/// construction.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> CsrGraph {
    assert!((1..31).contains(&scale), "scale out of range");
    let n = 1usize << scale;
    CsrGraph::from_edge_stream(n, || edge_stream(scale, edge_factor, params, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_edge_target() {
        let g = rmat(10, 4, RmatParams::skewed(), 3);
        assert_eq!(g.n(), 1024);
        assert_eq!(g.m(), 4096);
    }

    #[test]
    fn skew_exceeds_uniform() {
        let skew = rmat(12, 4, RmatParams::skewed(), 3);
        let unif = rmat(
            12,
            4,
            RmatParams {
                a: 0.25,
                b: 0.25,
                c: 0.25,
            },
            3,
        );
        assert!(
            skew.max_degree() > 2 * unif.max_degree(),
            "skewed dmax {} vs uniform dmax {}",
            skew.max_degree(),
            unif.max_degree()
        );
    }

    #[test]
    fn deterministic() {
        let a = rmat(8, 2, RmatParams::skewed(), 42);
        let b = rmat(8, 2, RmatParams::skewed(), 42);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn bounded_attempts_on_dense_request() {
        // Tiny space, huge request: generation must terminate.
        let g = rmat(2, 10, RmatParams::skewed(), 0);
        assert!(g.m() <= 6, "at most C(4,2) edges");
    }

    #[test]
    fn streamed_build_matches_materialized_build() {
        // The streaming path must be a pure refactor: collecting the
        // same replayable stream into a vector and building through
        // `from_edges` yields an identical graph.
        let (scale, factor, seed) = (9u32, 4usize, 77u64);
        let streamed = rmat(scale, factor, RmatParams::skewed(), seed);
        let collected: Vec<_> = edge_stream(scale, factor, RmatParams::skewed(), seed).collect();
        let materialized = CsrGraph::from_edges(1 << scale, &collected);
        assert_eq!(streamed.m(), collected.len());
        assert_eq!(
            streamed.edges().collect::<Vec<_>>(),
            materialized.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_replays_identically() {
        let a: Vec<_> = edge_stream(8, 2, RmatParams::skewed(), 5).collect();
        let b: Vec<_> = edge_stream(8, 2, RmatParams::skewed(), 5).collect();
        assert_eq!(a, b);
    }
}
