//! R-MAT recursive-matrix graphs.
//!
//! R-MAT with skewed quadrant probabilities produces a few enormous hubs
//! and a long thin tail — the WikiTalk communication-network profile
//! (d_max ≈ 100k on 2.4M vertices in the paper's Table I). That extreme
//! skew is what stresses the upper-bound pruning (few vertices dominate)
//! and the vertex-parallel load balance.

use egobtw_graph::{pack_pair, CsrGraph, FxHashSet, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters: quadrant probabilities, summing to 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability (the "hub" mass).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The classic skewed parameterization (a=0.57, b=c=0.19, d=0.05).
    pub fn skewed() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates an undirected R-MAT graph with `2^scale` vertices and
/// `edge_factor * 2^scale` *distinct* edges (self-loops and duplicates are
/// re-sampled, so the edge count is met exactly unless the space is too
/// small, in which case generation stops after a bounded number of
/// attempts and the graph may have fewer edges).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> CsrGraph {
    assert!((1..31).contains(&scale), "scale out of range");
    let n = 1usize << scale;
    let target = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.reserve(target);
    let mut edges = Vec::with_capacity(target);
    let max_attempts = target.saturating_mul(20);
    let mut attempts = 0usize;
    while edges.len() < target && attempts < max_attempts {
        attempts += 1;
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.random();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        let (u, v) = (u as VertexId, v as VertexId);
        if u != v && seen.insert(pack_pair(u, v)) {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_edge_target() {
        let g = rmat(10, 4, RmatParams::skewed(), 3);
        assert_eq!(g.n(), 1024);
        assert_eq!(g.m(), 4096);
    }

    #[test]
    fn skew_exceeds_uniform() {
        let skew = rmat(12, 4, RmatParams::skewed(), 3);
        let unif = rmat(
            12,
            4,
            RmatParams {
                a: 0.25,
                b: 0.25,
                c: 0.25,
            },
            3,
        );
        assert!(
            skew.max_degree() > 2 * unif.max_degree(),
            "skewed dmax {} vs uniform dmax {}",
            skew.max_degree(),
            unif.max_degree()
        );
    }

    #[test]
    fn deterministic() {
        let a = rmat(8, 2, RmatParams::skewed(), 42);
        let b = rmat(8, 2, RmatParams::skewed(), 42);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn bounded_attempts_on_dense_request() {
        // Tiny space, huge request: generation must terminate.
        let g = rmat(2, 10, RmatParams::skewed(), 0);
        assert!(g.m() <= 6, "at most C(4,2) edges");
    }
}
