//! `mkdata` — emit any generator family to an edge-list or binary
//! snapshot file, so the query service and loadgen have reproducible
//! datasets without network access.
//!
//! ```text
//! cargo run --release -p egobtw-gen --bin mkdata -- \
//!     --family ba --scale 1.0 --seed 7 --out data/ba.snap
//!
//! flags:
//!   --family F    karate | toy | er | ba | ws | rmat | community | hub (required)
//!   --scale S     size multiplier on the family's base size (default 1.0;
//!                 ignored by the fixed-size karate/toy fixtures)
//!   --seed N      generator seed (default 42; karate/toy are deterministic)
//!   --out PATH    output file (required)
//!   --format X    edges | snapshot (default: snapshot iff PATH ends .snap)
//!   --print-rss   also print `peak-rss-kb=N` (VmHWM) after writing, so
//!                 smoke tests can assert generation stays RSS-bounded
//! ```
//!
//! The same `(family, scale, seed)` always produces the same file.

use egobtw_gen::synth_family;
use egobtw_graph::io::{write_edge_list_file, write_snapshot_file};

struct Args {
    family: String,
    scale: f64,
    seed: u64,
    out: String,
    snapshot: bool,
    print_rss: bool,
}

/// Peak resident set size (VmHWM) of this process in KiB, if the
/// platform exposes it (`/proc/self/status` — Linux only).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut family = None;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut out = None;
    let mut format: Option<String> = None;
    let mut print_rss = false;
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--family" => family = Some(value(i)?.clone()),
            "--scale" => scale = value(i)?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--seed" => seed = value(i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => out = Some(value(i)?.clone()),
            "--format" => format = Some(value(i)?.clone()),
            "--print-rss" => {
                print_rss = true;
                i += 1;
                continue;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    let family = family.ok_or("--family is required")?;
    let out = out.ok_or("--out is required")?;
    let snapshot = match format.as_deref() {
        Some("snapshot") => true,
        Some("edges") => false,
        Some(other) => return Err(format!("--format {other:?}: edges or snapshot")),
        None => out.ends_with(".snap"),
    };
    Ok(Args {
        family,
        scale,
        seed,
        out,
        snapshot,
        print_rss,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mkdata: {e}");
            eprintln!(
                "usage: mkdata --family F --out PATH [--scale S] [--seed N] \
                 [--format edges|snapshot] [--print-rss]"
            );
            std::process::exit(2);
        }
    };
    let g = match synth_family(&args.family, args.scale, args.seed) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("mkdata: {e}");
            std::process::exit(2);
        }
    };
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("mkdata: create {dir:?}: {e}");
                std::process::exit(1);
            }
        }
    }
    let result = if args.snapshot {
        write_snapshot_file(&g, None, &args.out)
    } else {
        write_edge_list_file(&g, &args.out)
    };
    if let Err(e) = result {
        eprintln!("mkdata: write {:?}: {e}", args.out);
        std::process::exit(1);
    }
    println!(
        "wrote {} family={} scale={} seed={} n={} m={} format={}",
        args.out,
        args.family,
        args.scale,
        args.seed,
        g.n(),
        g.m(),
        if args.snapshot { "snapshot" } else { "edges" }
    );
    if args.print_rss {
        match peak_rss_kb() {
            Some(kb) => println!("peak-rss-kb={kb}"),
            None => println!("peak-rss-kb=unavailable"),
        }
    }
}
