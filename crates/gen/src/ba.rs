//! Barabási–Albert preferential attachment.
//!
//! Produces the heavy-tailed degree distributions characteristic of the
//! paper's social-network datasets (Youtube, Pokec, LiveJournal). Degree
//! skew is what drives the upper-bound ordering, the pruning power of the
//! searches, and the load imbalance of `VertexPEBW`, so this is the key
//! structural property the stand-ins must reproduce.

use egobtw_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// BA graph: starts from a clique on `m_attach + 1` seed vertices, then each
/// new vertex attaches to `m_attach` distinct existing vertices chosen
/// preferentially by degree (implemented with the classic repeated-endpoint
/// list, so sampling is O(1) per draw).
///
/// Panics if `n <= m_attach`.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1, "each vertex must attach at least once");
    assert!(n > m_attach, "need more vertices than attachments");
    let mut rng = StdRng::seed_from_u64(seed);
    let m0 = m_attach + 1;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * m_attach);
    // Every edge endpoint is pushed here; uniform draws from it are
    // degree-proportional draws over vertices.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);

    for u in 0..m0 as VertexId {
        for v in u + 1..m0 as VertexId {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut targets: Vec<VertexId> = Vec::with_capacity(m_attach);
    for u in m0 as VertexId..n as VertexId {
        targets.clear();
        // Rejection-sample m distinct targets; the endpoint list is large
        // relative to m so collisions are rare.
        while targets.len() < m_attach {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((u, t));
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_formula() {
        // m0 clique edges + m per subsequent vertex.
        let (n, m) = (500, 4);
        let g = barabasi_albert(n, m, 11);
        let m0 = m + 1;
        assert_eq!(g.n(), n);
        assert_eq!(g.m(), m0 * (m0 - 1) / 2 + (n - m0) * m);
    }

    #[test]
    fn min_degree_is_m() {
        let g = barabasi_albert(300, 3, 5);
        for u in g.vertices() {
            assert!(g.degree(u) >= 3, "vertex {u} has degree {}", g.degree(u));
        }
    }

    #[test]
    fn heavy_tail_present() {
        let g = barabasi_albert(2000, 3, 1);
        // A hub should greatly exceed the mean degree (≈6).
        assert!(g.max_degree() > 40, "max degree {}", g.max_degree());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(200, 2, 7);
        let b = barabasi_albert(200, 2, 7);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn rejects_tiny_n() {
        barabasi_albert(3, 3, 0);
    }
}
