//! Watts–Strogatz small-world graphs.
//!
//! High clustering with short paths; included as a high-triangle-density
//! regime for stress-testing the S-map engine (every triangle costs map
//! updates) and for the ablation suite.

use egobtw_graph::{CsrGraph, FxHashSet, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ring lattice on `n` vertices where each vertex connects to its `k/2`
/// nearest neighbors on each side, then each edge's far endpoint is
/// rewired with probability `p` (rewirings that would create self-loops or
/// duplicates are skipped, keeping the original edge).
///
/// `k` must be even and `< n`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> CsrGraph {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n, "lattice degree must be below n");
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut present: FxHashSet<u64> = FxHashSet::default();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k / 2);
    for u in 0..n {
        for d in 1..=k / 2 {
            let v = (u + d) % n;
            let (a, b) = (u as VertexId, v as VertexId);
            present.insert(egobtw_graph::pack_pair(a, b));
            edges.push((a, b));
        }
    }
    for e in &mut edges {
        if !rng.random_bool(p) {
            continue;
        }
        let u = e.0;
        let w = rng.random_range(0..n as VertexId);
        if w == u {
            continue;
        }
        let new_key = egobtw_graph::pack_pair(u, w);
        if present.contains(&new_key) {
            continue;
        }
        let old_key = egobtw_graph::pack_pair(e.0, e.1);
        present.remove(&old_key);
        present.insert(new_key);
        *e = (u, w);
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_when_p_zero() {
        let g = watts_strogatz(10, 4, 0.0, 0);
        assert_eq!(g.m(), 20);
        for u in g.vertices() {
            assert_eq!(g.degree(u), 4);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 9));
        assert!(g.has_edge(0, 8));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edge_count_preserved_under_rewiring() {
        let g = watts_strogatz(200, 6, 0.3, 5);
        assert_eq!(g.m(), 600, "rewiring never changes the edge count");
    }

    #[test]
    fn rewiring_changes_structure() {
        let lattice = watts_strogatz(100, 4, 0.0, 1);
        let rewired = watts_strogatz(100, 4, 0.5, 1);
        let le: Vec<_> = lattice.edges().collect();
        let re: Vec<_> = rewired.edges().collect();
        assert_ne!(le, re);
    }

    #[test]
    fn high_clustering_at_low_p() {
        let g = watts_strogatz(300, 8, 0.05, 2);
        let triangles = egobtw_graph::triangle::count_triangles(&g);
        // A k=8 ring lattice has 3 triangles per vertex per ... many;
        // just assert the small-world regime keeps plenty of them.
        assert!(triangles > 500, "triangles = {triangles}");
    }
}
