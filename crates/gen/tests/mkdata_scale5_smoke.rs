//! RSS-bounded `mkdata --scale 5` smoke.
//!
//! The R-MAT path streams edges into the CSR via two-pass seeded replay
//! — no materialized edge vector, no packed-key sort buffer — so peak
//! memory for a generation run is the dedup set plus the output graph.
//! This smoke runs the real `mkdata` binary at `--scale 5` and asserts
//! its kernel-reported peak RSS (VmHWM) stays under a bound far below
//! what an accidental O(attempts) or O(edge-list-copy) allocation would
//! reach, guarding the streaming property end-to-end (flag parsing,
//! synthesis, snapshot write).

use std::process::Command;

#[test]
fn mkdata_rmat_scale5_is_rss_bounded() {
    let out = std::env::temp_dir().join("egobtw-mkdata-scale5-smoke.snap");
    let result = Command::new(env!("CARGO_BIN_EXE_mkdata"))
        .args([
            "--family",
            "rmat",
            "--scale",
            "5",
            "--seed",
            "42",
            "--out",
            out.to_str().unwrap(),
            "--print-rss",
        ])
        .output()
        .expect("mkdata must run");
    let stdout = String::from_utf8_lossy(&result.stdout);
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(
        result.status.success(),
        "mkdata failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(out.exists(), "snapshot not written");
    let _ = std::fs::remove_file(&out);

    let rss_line = stdout
        .lines()
        .find(|l| l.starts_with("peak-rss-kb="))
        .expect("mkdata --print-rss must report peak RSS");
    let value = rss_line.trim_start_matches("peak-rss-kb=");
    if value == "unavailable" {
        // Non-Linux fallback: the run itself succeeding is the smoke.
        return;
    }
    let kb: u64 = value.parse().expect("peak-rss-kb must be numeric");
    // Scale-5 R-MAT is ~2^11 vertices / 2^13 edges: well under a
    // megabyte of graph. 256 MiB leaves room for allocator slack and
    // debug builds while still catching runaway materialization.
    assert!(
        kb < 256 * 1024,
        "mkdata --scale 5 peaked at {kb} KiB — generation is not streaming"
    );
}
