//! Deterministic scenario generation: every `gen` model × k-sweep ×
//! optional seeded update stream.
//!
//! `scenario(seed, idx)` is a pure function — the stress binary, the CI
//! job, and a developer reproducing a failure all see the identical case
//! for the same `(seed, idx)`. Families rotate with `idx` so any prefix
//! of the index space covers all of them; the k-sweep rotates on a
//! coprime stride so every family meets every k regime; every second
//! scenario carries an insert/delete stream (which is how the dynamic
//! maintainers and the replay path get exercised at all).
//!
//! Graphs are deliberately small (n ≤ ~64): the reference truth is cubic
//! per vertex, divergence on big graphs virtually always reproduces on
//! small ones, and small cases shrink into readable regression tests.

use crate::case::Case;
use egobtw_dynamic::stream::EdgeOp;
use egobtw_gen::community::PlantedPartition;
use egobtw_gen::rmat::RmatParams;
use egobtw_gen::sample::{edge_sample, vertex_sample};
use egobtw_gen::{
    barabasi_albert, classic, gnm, gnp, planted_partition, rmat, toy, watts_strogatz,
};
use egobtw_graph::{CsrGraph, DynGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator families the sweep rotates through.
pub const FAMILIES: [&str; 8] = [
    "er",
    "ba",
    "ws",
    "rmat",
    "community",
    "classic",
    "toy",
    "sample",
];

/// The k regimes of the sweep, as functions of the vertex count:
/// degenerate (0), minimal (1), half, all, and over-subscribed (n+5).
pub fn k_sweep(n: usize) -> [usize; 5] {
    [0, 1, n / 2, n, n + 5]
}

fn rng_for(seed: u64, idx: usize) -> StdRng {
    // SplitMix64-style index whitening so nearby indices decorrelate.
    let mut z = (idx as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(seed ^ z ^ (z >> 31))
}

fn graph_for(family: &str, rng: &mut StdRng) -> CsrGraph {
    match family {
        "er" => {
            let n = rng.random_range(8..48);
            if rng.random_bool(0.5) {
                gnp(
                    n,
                    rng.random_range(0.05..0.3),
                    rng.random_range(0..u64::MAX),
                )
            } else {
                let pairs = n * (n - 1) / 2;
                gnm(n, rng.random_range(0..pairs), rng.random_range(0..u64::MAX))
            }
        }
        "ba" => {
            let m_attach = rng.random_range(1..4);
            let n = rng.random_range(m_attach + 2..48);
            barabasi_albert(n, m_attach, rng.random_range(0..u64::MAX))
        }
        "ws" => {
            let k = 2 * rng.random_range(1..4);
            let n = rng.random_range(k + 1..48);
            watts_strogatz(
                n,
                k,
                rng.random_range(0.0..0.4),
                rng.random_range(0..u64::MAX),
            )
        }
        "rmat" => rmat(
            rng.random_range(3..6),
            rng.random_range(1..4),
            RmatParams::skewed(),
            rng.random_range(0..u64::MAX),
        ),
        "community" => planted_partition(
            PlantedPartition {
                communities: rng.random_range(2..5),
                community_size: rng.random_range(4..9),
                p_in: rng.random_range(0.4..0.9),
                cross_edges_per_vertex: rng.random_range(0.3..1.5),
            },
            rng.random_range(0..u64::MAX),
        ),
        "classic" => match rng.random_range(0..6u32) {
            0 => classic::complete(rng.random_range(2..10)),
            1 => classic::star(rng.random_range(1..24)),
            2 => classic::path(rng.random_range(1..24)),
            3 => classic::cycle(rng.random_range(3..24)),
            4 => classic::barbell(rng.random_range(3..8)),
            _ => classic::karate_club(),
        },
        "toy" => toy::paper_graph(),
        "sample" => {
            let base = gnm(36, 150, rng.random_range(0..u64::MAX));
            let frac = rng.random_range(0.2..0.9);
            let sub_seed = rng.random_range(0..u64::MAX);
            if rng.random_bool(0.5) {
                edge_sample(&base, frac, sub_seed)
            } else {
                vertex_sample(&base, frac, sub_seed).0
            }
        }
        other => unreachable!("unknown family {other}"),
    }
}

/// Generates a seeded insert/delete stream of `len` ops against a replica
/// of `g0`, flipping present edges off and absent edges on so roughly
/// every op actually applies.
pub fn random_stream(g0: &CsrGraph, len: usize, rng: &mut StdRng) -> Vec<EdgeOp> {
    let n = g0.n();
    if n < 2 {
        return Vec::new();
    }
    let mut replica = DynGraph::from_csr(g0);
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let u = rng.random_range(0..n as VertexId);
        let v = rng.random_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let op = if replica.has_edge(u, v) {
            replica.remove_edge(u, v);
            EdgeOp::Delete(u, v)
        } else {
            replica.insert_edge(u, v);
            EdgeOp::Insert(u, v)
        };
        ops.push(op);
    }
    ops
}

/// The `idx`-th scenario of the sweep keyed by `seed`, as a concrete case.
pub fn scenario(seed: u64, idx: usize) -> Case {
    let family = FAMILIES[idx % FAMILIES.len()];
    let mut rng = rng_for(seed, idx);
    let g = graph_for(family, &mut rng);
    let n = g.n();
    // Stride 1 over a 5-long sweep per family block; 8 and 5 are coprime,
    // so every (family, k-regime) pair appears within 40 indices.
    let k = k_sweep(n)[(idx / FAMILIES.len()) % 5];
    // Alternate streams per family *block*, not per raw index: family is
    // `idx % 8`, so raw-index parity would pin each family to always (or
    // never) carry a stream — half the families would never exercise the
    // dynamic maintainers. Folding in the block number flips the phase
    // every 8 scenarios, so every family alternates.
    let ops = if (idx + idx / FAMILIES.len()).is_multiple_of(2) && n >= 2 {
        let len = rng.random_range(n..2 * n + 1);
        random_stream(&g, len, &mut rng)
    } else {
        Vec::new()
    };
    Case {
        n,
        edges: g.edges().collect(),
        k,
        label: format!("{family}[n={n},m={}]-k{k}-ops{}-#{idx}", g.m(), ops.len()),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_index() {
        for idx in [0usize, 3, 17, 40] {
            assert_eq!(scenario(42, idx), scenario(42, idx), "idx {idx}");
        }
        assert_ne!(scenario(42, 0).edges, scenario(43, 0).edges);
    }

    #[test]
    fn prefix_covers_all_families_and_k_regimes() {
        let mut fams = std::collections::BTreeSet::new();
        let mut k_classes = std::collections::BTreeSet::new();
        let mut with_ops = 0usize;
        for idx in 0..40 {
            let c = scenario(7, idx);
            fams.insert(FAMILIES[idx % FAMILIES.len()]);
            k_classes.insert((idx / FAMILIES.len()) % 5);
            with_ops += usize::from(!c.ops.is_empty());
            assert!(c.initial().validate().is_ok());
        }
        assert_eq!(fams.len(), FAMILIES.len());
        assert_eq!(k_classes.len(), 5);
        assert!(with_ops >= 15, "streams too rare: {with_ops}/40");
        // Every family must carry a stream somewhere in the sweep — a
        // family the dynamic maintainers never replay is a conformance
        // blind spot (this was once true for half of them).
        let mut streamed = std::collections::BTreeSet::new();
        for idx in 0..80 {
            if !scenario(7, idx).ops.is_empty() {
                streamed.insert(FAMILIES[idx % FAMILIES.len()]);
            }
        }
        assert_eq!(
            streamed.len(),
            FAMILIES.len(),
            "families without streams: {:?}",
            FAMILIES
                .iter()
                .filter(|f| !streamed.contains(*f))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_target_valid_endpoints() {
        for idx in 0..24 {
            let c = scenario(9, idx);
            for op in &c.ops {
                let (u, v) = op.endpoints();
                assert!(u != v);
                assert!((u as usize) < c.n && (v as usize) < c.n);
            }
        }
    }
}
