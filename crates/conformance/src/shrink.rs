//! Greedy case shrinking: turn a failing scenario into the smallest case
//! that still fails.
//!
//! Delta-debugging style, specialised to this domain. Each round tries,
//! in order: dropping chunks of the update stream (halves down to single
//! ops), dropping chunks of the edge list, shrinking `k`, and removing
//! whole vertices (relabeling the survivors densely). A candidate is kept
//! iff the predicate still fails on it; rounds repeat until a fixpoint or
//! the round budget runs out. Because update-stream replay skips
//! inapplicable ops by definition, every subset of a stream is still a
//! meaningful stream — the property that makes this simple greedy loop
//! sound.

use crate::case::Case;
use egobtw_dynamic::stream::EdgeOp;
use egobtw_graph::VertexId;

/// Shrinks `case` under `fails` (true = still failing). `max_rounds`
/// bounds the number of full passes; the result is the smallest failing
/// case found, at worst `case` itself.
pub fn shrink(case: &Case, fails: &dyn Fn(&Case) -> bool, max_rounds: usize) -> Case {
    debug_assert!(fails(case), "shrinking a passing case");
    let mut best = case.clone();
    for _ in 0..max_rounds {
        let before = best.weight();
        shrink_ops(&mut best, fails);
        shrink_edges(&mut best, fails);
        shrink_k(&mut best, fails);
        shrink_vertices(&mut best, fails);
        if best.weight() >= before {
            break; // fixpoint
        }
    }
    best
}

/// Tries removing chunks (halving sizes) of one sequence dimension.
/// `apply(case, lo, hi)` must return the case without elements `lo..hi`.
fn shrink_sequence(
    best: &mut Case,
    len_of: fn(&Case) -> usize,
    drop_range: fn(&Case, usize, usize) -> Case,
    fails: &dyn Fn(&Case) -> bool,
) {
    let mut chunk = len_of(best).div_ceil(2).max(1);
    loop {
        let mut lo = 0;
        while lo < len_of(best) {
            let hi = (lo + chunk).min(len_of(best));
            let candidate = drop_range(best, lo, hi);
            if fails(&candidate) {
                *best = candidate; // keep the cut; retry same offset
            } else {
                lo = hi;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2).max(1);
    }
}

fn shrink_ops(best: &mut Case, fails: &dyn Fn(&Case) -> bool) {
    shrink_sequence(
        best,
        |c| c.ops.len(),
        |c, lo, hi| {
            let mut n = c.clone();
            n.ops.drain(lo..hi);
            n
        },
        fails,
    );
}

fn shrink_edges(best: &mut Case, fails: &dyn Fn(&Case) -> bool) {
    shrink_sequence(
        best,
        |c| c.edges.len(),
        |c, lo, hi| {
            let mut n = c.clone();
            n.edges.drain(lo..hi);
            n
        },
        fails,
    );
}

fn shrink_k(best: &mut Case, fails: &dyn Fn(&Case) -> bool) {
    for candidate_k in [0, 1, best.k / 2, best.k.saturating_sub(1)] {
        if candidate_k >= best.k {
            continue;
        }
        let mut candidate = best.clone();
        candidate.k = candidate_k;
        if fails(&candidate) {
            *best = candidate;
        }
    }
}

/// Case without vertex `v`: incident edges and ops dropped, ids above `v`
/// shifted down.
fn without_vertex(c: &Case, v: VertexId) -> Case {
    let relabel = |x: VertexId| if x > v { x - 1 } else { x };
    let mut n = c.clone();
    n.n -= 1;
    n.edges = c
        .edges
        .iter()
        .filter(|&&(a, b)| a != v && b != v)
        .map(|&(a, b)| (relabel(a), relabel(b)))
        .collect();
    n.ops = c
        .ops
        .iter()
        .filter(|op| {
            let (a, b) = op.endpoints();
            a != v && b != v
        })
        .map(|op| match *op {
            EdgeOp::Insert(a, b) => EdgeOp::Insert(relabel(a), relabel(b)),
            EdgeOp::Delete(a, b) => EdgeOp::Delete(relabel(a), relabel(b)),
        })
        .collect();
    n
}

fn shrink_vertices(best: &mut Case, fails: &dyn Fn(&Case) -> bool) {
    // Highest ids first: removing them never relabels lower survivors.
    let mut v = best.n;
    while v > 0 {
        v -= 1;
        if best.n <= 1 {
            break;
        }
        let candidate = without_vertex(best, v as VertexId);
        if fails(&candidate) {
            *best = candidate;
        }
        v = v.min(best.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(n: usize, edges: &[(VertexId, VertexId)], k: usize, ops: &[EdgeOp]) -> Case {
        Case {
            n,
            edges: edges.to_vec(),
            k,
            ops: ops.to_vec(),
            label: "unit".into(),
        }
    }

    /// A synthetic defect: "fails whenever edge (0,1) is present in the
    /// final graph". The minimal failing case is 2 vertices, 1 edge.
    fn edge01_fails(c: &Case) -> bool {
        c.n >= 2 && c.final_graph().has_edge(0, 1)
    }

    #[test]
    fn shrinks_to_the_minimal_witness() {
        let big = case(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (0, 7),
            ],
            5,
            &[EdgeOp::Insert(2, 5), EdgeOp::Delete(3, 4)],
        );
        assert!(edge01_fails(&big));
        let small = shrink(&big, &edge01_fails, 10);
        assert!(edge01_fails(&small));
        assert_eq!(small.n, 2);
        assert_eq!(small.edges, vec![(0, 1)]);
        assert!(small.ops.is_empty());
        assert_eq!(small.k, 0);
    }

    #[test]
    fn shrinks_stream_dependent_failures() {
        // Fails when the stream leaves ≥ 1 edge on vertex 0.
        let pred = |c: &Case| c.n >= 1 && c.final_graph().degree(0) >= 1;
        let big = case(
            6,
            &[],
            3,
            &[
                EdgeOp::Insert(1, 2),
                EdgeOp::Insert(0, 3),
                EdgeOp::Insert(4, 5),
                EdgeOp::Delete(1, 2),
            ],
        );
        assert!(pred(&big));
        let small = shrink(&big, &pred, 10);
        assert!(pred(&small));
        assert_eq!(small.n, 2, "one surviving edge needs two vertices");
        assert_eq!(small.ops.len(), 1);
        assert!(small.edges.is_empty());
    }

    #[test]
    fn without_vertex_relabels_consistently() {
        let c = case(
            4,
            &[(0, 2), (2, 3), (1, 3)],
            2,
            &[EdgeOp::Insert(1, 2), EdgeOp::Delete(2, 3)],
        );
        let r = without_vertex(&c, 2);
        assert_eq!(r.n, 3);
        assert_eq!(r.edges, vec![(1, 2)]); // old (1,3) survives relabeled
        assert!(r.ops.is_empty(), "both ops touched vertex 2");
    }

    #[test]
    fn already_minimal_case_is_stable() {
        let minimal = case(2, &[(0, 1)], 0, &[]);
        let small = shrink(&minimal, &edge01_fails, 10);
        assert_eq!(small, minimal);
    }
}
