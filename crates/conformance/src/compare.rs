//! Tie-aware top-k comparison against a full truth vector.
//!
//! Comparing two top-k answers entry-by-entry is wrong in the presence of
//! ties: when ranks `k−1, k, k+1` share a score, *any* subset of the tied
//! score class is a correct boundary fill, so two correct engines may
//! legitimately return different vertex sets. What is invariant is:
//!
//! 1. the returned *score multiset* — rank `i`'s score must equal the
//!    `i`-th largest true score;
//! 2. per-vertex honesty — each returned vertex must carry its own true
//!    score;
//! 3. boundary discipline — every vertex scoring *strictly above* the k-th
//!    true score must be present; only the boundary score class is
//!    interchangeable.
//!
//! All float comparisons are relative (`|a−b| ≤ tol·max(|a|,|b|,1)`):
//! engines sum identical contribution terms in different orders, so
//! last-bit divergence is expected and correct.

use egobtw_graph::VertexId;

/// Relative tolerance for cross-engine score comparison. Scores are sums
/// of `O(d²)` terms of magnitude ≤ 1; `1e-9` leaves six orders of margin
/// above accumulated association error on any graph this harness runs.
pub const REL_TOL: f64 = 1e-9;

/// Relative float equality with an absolute floor of `tol` near zero.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Checks one engine's top-k answer against the full truth vector.
/// Returns a human-readable description of the first violation.
pub fn check_topk(
    truth: &[f64],
    got: &[(VertexId, f64)],
    k: usize,
    tol: f64,
) -> Result<(), String> {
    let n = truth.len();
    let expect_len = k.min(n);
    if got.len() != expect_len {
        return Err(format!(
            "returned {} entries, expected {expect_len} (k={k}, n={n})",
            got.len()
        ));
    }

    // Per-vertex honesty, id range, duplicates, descending order.
    let mut seen = vec![false; n];
    for (rank, &(v, score)) in got.iter().enumerate() {
        let Some(&truth_v) = truth.get(v as usize) else {
            return Err(format!("rank {rank}: vertex {v} out of range (n={n})"));
        };
        if seen[v as usize] {
            return Err(format!("vertex {v} returned twice"));
        }
        seen[v as usize] = true;
        if !approx_eq(score, truth_v, tol) {
            return Err(format!(
                "rank {rank}: vertex {v} reported {score}, true CB is {truth_v}"
            ));
        }
        if rank > 0 && got[rank - 1].1 < score && !approx_eq(got[rank - 1].1, score, tol) {
            return Err(format!(
                "ranks {}..{rank} not descending: {} then {score}",
                rank - 1,
                got[rank - 1].1
            ));
        }
    }

    if expect_len == 0 {
        return Ok(());
    }

    // Score multiset: rank i must carry the i-th largest true score.
    let mut sorted = truth.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    for (rank, &(v, score)) in got.iter().enumerate() {
        if !approx_eq(score, sorted[rank], tol) {
            return Err(format!(
                "rank {rank}: got {score} (vertex {v}), the {rank}-th best true score is {}",
                sorted[rank]
            ));
        }
    }

    // Boundary discipline: strictly-above-boundary vertices are mandatory.
    let boundary = sorted[expect_len - 1];
    for (v, &t) in truth.iter().enumerate() {
        if t > boundary && !approx_eq(t, boundary, tol) && !seen[v] {
            return Err(format!(
                "vertex {v} (CB {t}) is strictly above the k-boundary {boundary} but missing"
            ));
        }
    }
    Ok(())
}

/// Checks a *randomized* engine's top-k answer against the truth vector
/// with statistical tolerance — the [`check_topk`] analogue for engines
/// registered as `EngineKind::Approx { eps, .. }`.
///
/// With probability ≥ 1 − δ the sampler promises, for true k-th score
/// `c*_k`: every returned vertex's true score is at least
/// `c*_k − ε·max(1, c*_k)` (bounded displacement), and every returned
/// estimate sits within `ε·max(1, c*_k, true score)` of that vertex's
/// true score — estimates and true values share a confidence interval,
/// and the stopping rule is *relative*-precision for settled members
/// whose scores dwarf `c*_k`, absolute near the boundary. Structure
/// (length, id range, duplicates, descending order) is checked exactly.
/// Violations of this check are the δ-events the repeated-trials driver
/// counts.
pub fn check_topk_statistical(
    truth: &[f64],
    got: &[(VertexId, f64)],
    k: usize,
    eps: f64,
    tol: f64,
) -> Result<(), String> {
    let n = truth.len();
    let expect_len = k.min(n);
    if got.len() != expect_len {
        return Err(format!(
            "returned {} entries, expected {expect_len} (k={k}, n={n})",
            got.len()
        ));
    }
    let mut seen = vec![false; n];
    for (rank, &(v, score)) in got.iter().enumerate() {
        if truth.get(v as usize).is_none() {
            return Err(format!("rank {rank}: vertex {v} out of range (n={n})"));
        }
        if seen[v as usize] {
            return Err(format!("vertex {v} returned twice"));
        }
        seen[v as usize] = true;
        if rank > 0 && got[rank - 1].1 < score && !approx_eq(got[rank - 1].1, score, tol) {
            return Err(format!(
                "ranks {}..{rank} not descending: {} then {score}",
                rank - 1,
                got[rank - 1].1
            ));
        }
    }
    if expect_len == 0 {
        return Ok(());
    }

    let mut sorted = truth.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let ck = sorted[expect_len - 1];
    let slack = eps * ck.max(1.0) + tol * ck.abs().max(1.0);
    for (rank, &(v, score)) in got.iter().enumerate() {
        let truth_v = truth[v as usize];
        if truth_v < ck - slack {
            return Err(format!(
                "rank {rank}: vertex {v} (true CB {truth_v}) displaced below \
                 the k-th true score {ck} by more than ε-slack {slack}"
            ));
        }
        // Settled members resolve at precision relative to their own
        // (possibly much larger) score, so their slack scales with it.
        let est_slack = eps * ck.max(truth_v).max(1.0) + tol * ck.abs().max(1.0);
        if (score - truth_v).abs() > est_slack {
            return Err(format!(
                "rank {rank}: vertex {v} estimate {score} is more than \
                 ε-slack {est_slack} from its true CB {truth_v}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: &[f64] = &[5.0, 3.0, 3.0, 3.0, 1.0, 0.0];

    #[test]
    fn accepts_any_tie_class_fill() {
        // k=2: rank 1 may be any of vertices 1, 2, 3 (all score 3).
        for boundary_pick in [1u32, 2, 3] {
            assert_eq!(
                check_topk(T, &[(0, 5.0), (boundary_pick, 3.0)], 2, REL_TOL),
                Ok(())
            );
        }
    }

    #[test]
    fn rejects_wrong_multiset() {
        // Vertex 4's true score (1.0) cannot appear at rank 1.
        let err = check_topk(T, &[(0, 5.0), (4, 1.0)], 2, REL_TOL).unwrap_err();
        assert!(err.contains("best true score"), "{err}");
    }

    #[test]
    fn rejects_dishonest_score() {
        let err = check_topk(T, &[(0, 5.0), (1, 2.9)], 2, REL_TOL).unwrap_err();
        assert!(err.contains("reported"), "{err}");
    }

    #[test]
    fn rejects_missing_strictly_better_vertex() {
        // k=4 covers the whole tie class {1,2,3} plus vertex 0; dropping
        // vertex 0 for vertex 4 is a multiset violation, and dropping a
        // *mandatory* above-boundary vertex is flagged even if scores were
        // somehow patched to look right.
        let err = check_topk(T, &[(1, 3.0), (2, 3.0), (3, 3.0), (4, 1.0)], 4, REL_TOL).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn rejects_duplicates_and_length() {
        assert!(check_topk(T, &[(0, 5.0), (0, 5.0)], 2, REL_TOL)
            .unwrap_err()
            .contains("twice"));
        assert!(check_topk(T, &[(0, 5.0)], 2, REL_TOL)
            .unwrap_err()
            .contains("expected 2"));
    }

    #[test]
    fn k_zero_and_k_over_n() {
        assert_eq!(check_topk(T, &[], 0, REL_TOL), Ok(()));
        let full: Vec<(VertexId, f64)> =
            vec![(0, 5.0), (1, 3.0), (2, 3.0), (3, 3.0), (4, 1.0), (5, 0.0)];
        assert_eq!(check_topk(T, &full, 100, REL_TOL), Ok(()));
    }

    #[test]
    fn tolerates_last_bit_divergence() {
        let wiggle = 3.0 + 3.0 * 1e-13;
        assert_eq!(check_topk(T, &[(0, 5.0), (2, wiggle)], 2, REL_TOL), Ok(()));
    }

    #[test]
    fn statistical_accepts_within_eps_displacement() {
        // k=2 boundary is 3.0; ε=0.4 ⇒ slack 1.2, so vertex 4 (CB 1.0
        // < 3.0 − 1.2) is too far displaced but an estimate drift on a
        // legitimate member passes.
        assert_eq!(
            check_topk_statistical(T, &[(0, 4.9), (1, 3.2)], 2, 0.4, REL_TOL),
            Ok(())
        );
        let err = check_topk_statistical(T, &[(0, 5.0), (4, 2.9)], 2, 0.4, REL_TOL).unwrap_err();
        assert!(err.contains("displaced"), "{err}");
    }

    #[test]
    fn statistical_rejects_wild_estimates_and_structure() {
        let err = check_topk_statistical(T, &[(0, 9.9), (1, 3.0)], 2, 0.1, REL_TOL).unwrap_err();
        assert!(err.contains("ε-slack"), "{err}");
        assert!(
            check_topk_statistical(T, &[(0, 5.0), (0, 5.0)], 2, 0.1, REL_TOL)
                .unwrap_err()
                .contains("twice")
        );
        assert!(check_topk_statistical(T, &[(0, 5.0)], 2, 0.1, REL_TOL)
            .unwrap_err()
            .contains("expected 2"));
        assert_eq!(check_topk_statistical(T, &[], 0, 0.1, REL_TOL), Ok(()));
    }
}
