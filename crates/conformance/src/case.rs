//! The unit of differential testing: one concrete, self-contained case.
//!
//! A [`Case`] pins everything an engine's answer can depend on — vertex
//! count, explicit edge list, `k`, and an update stream — as plain data.
//! Scenarios *generate* cases; the shrinker *reduces* them; and a reduced
//! case prints itself as a ready-to-paste `#[test]` so a stress failure
//! becomes a permanent regression test in one copy-paste.

use egobtw_dynamic::stream::{replay_graph, EdgeOp};
use egobtw_graph::{CsrGraph, DynGraph, VertexId};

/// One concrete conformance case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Case {
    /// Number of vertices (update streams never add vertices).
    pub n: usize,
    /// Initial undirected edge list (endpoints `< n`).
    pub edges: Vec<(VertexId, VertexId)>,
    /// How many top entries to ask every engine for.
    pub k: usize,
    /// Update stream replayed before comparison (empty = static case).
    pub ops: Vec<EdgeOp>,
    /// Provenance for reports, e.g. `er[n=32]-k16-ops64-#12`. Not part of
    /// the case's semantics.
    pub label: String,
}

impl Case {
    /// The initial graph.
    pub fn initial(&self) -> CsrGraph {
        CsrGraph::from_edges(self.n, &self.edges)
    }

    /// The graph after replaying the update stream (mutable form).
    pub fn final_dyn(&self) -> DynGraph {
        replay_graph(&self.initial(), &self.ops)
    }

    /// The graph after replaying the update stream (frozen form).
    pub fn final_graph(&self) -> CsrGraph {
        self.final_dyn().to_csr()
    }

    /// Rough size measure used to report shrink progress.
    pub fn weight(&self) -> usize {
        self.n + self.edges.len() + self.ops.len()
    }

    /// Renders the case as a ready-to-paste regression test that calls
    /// [`crate::assert_case`]. `why` lands in the test's comment.
    pub fn to_test_code(&self, why: &str) -> String {
        let mut s = String::new();
        s.push_str("#[test]\n");
        s.push_str("fn shrunk_conformance_regression() {\n");
        for line in why.lines() {
            s.push_str(&format!("    // {line}\n"));
        }
        s.push_str("    use egobtw_dynamic::stream::EdgeOp::*;\n");
        s.push_str(&format!("    let edges = {};\n", fmt_edges(&self.edges)));
        s.push_str(&format!("    let ops = {};\n", fmt_ops(&self.ops)));
        s.push_str(&format!(
            "    conformance::assert_case({}, &edges, {}, &ops);\n",
            self.n, self.k
        ));
        s.push_str("}\n");
        s
    }
}

fn fmt_edges(edges: &[(VertexId, VertexId)]) -> String {
    let body: Vec<String> = edges.iter().map(|&(u, v)| format!("({u}, {v})")).collect();
    format!("[{}]", body.join(", "))
}

fn fmt_ops(ops: &[EdgeOp]) -> String {
    let body: Vec<String> = ops
        .iter()
        .map(|op| match op {
            EdgeOp::Insert(u, v) => format!("Insert({u}, {v})"),
            EdgeOp::Delete(u, v) => format!("Delete({u}, {v})"),
        })
        .collect();
    format!("[{}]", body.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_graph_replays_ops() {
        let case = Case {
            n: 4,
            edges: vec![(0, 1), (1, 2)],
            k: 2,
            ops: vec![EdgeOp::Insert(2, 3), EdgeOp::Delete(0, 1)],
            label: "test".into(),
        };
        let g = case.final_graph();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 1));
        assert_eq!(case.weight(), 4 + 2 + 2);
    }

    #[test]
    fn test_code_is_complete() {
        let case = Case {
            n: 3,
            edges: vec![(0, 1)],
            k: 1,
            ops: vec![EdgeOp::Insert(1, 2)],
            label: "test".into(),
        };
        let code = case.to_test_code("engines disagreed\non two lines");
        assert!(code.contains("fn shrunk_conformance_regression()"));
        assert!(code.contains("// engines disagreed"));
        assert!(code.contains("// on two lines"));
        assert!(code.contains("let edges = [(0, 1)];"));
        assert!(code.contains("let ops = [Insert(1, 2)];"));
        assert!(code.contains("conformance::assert_case(3, &edges, 1, &ops);"));
    }
}
