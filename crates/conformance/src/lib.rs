//! Differential conformance harness for every ego-betweenness engine.
//!
//! The paper's contract is strong: the optimized top-k searches, the
//! parallel all-vertices engines, and both dynamic maintainers must all
//! return *exactly* what the naive ego-network definition gives — faster,
//! never different. This crate turns that contract into an executable
//! oracle layer, in the spirit of the differential validation used for
//! evolving-graph betweenness (Kourtellis et al., arXiv:1401.6981) and
//! adaptive-estimation cross-checks (Chehreghani et al., arXiv:1810.10094):
//!
//! * [`oracle`] — the [`Oracle`] trait plus adapters for every algorithm
//!   path: the enumerated `core` engine registry, `parallel` PEBW at
//!   several thread counts, and the `dynamic` maintainers replayed over
//!   update streams;
//! * [`scenario`] — deterministic scenario generation over every `gen`
//!   model family, a k-sweep (`0, 1, n/2, n, n+5`), and seeded
//!   insert/delete streams;
//! * [`compare`] — the tie-aware top-k comparator (score-multiset
//!   equality with interchangeable boundary tie classes, relative float
//!   tolerance);
//! * [`harness`] — one case through all oracles, including the graph
//!   layer's structural invariant checks;
//! * [`shrink`] — greedy reduction of a failing case to a minimal one;
//! * [`chaos`] — a seeded fault-injection TCP proxy plus an
//!   oracle-checked chaos workload that turns the same replay truth
//!   against the *serving* path under delays, stalls, cuts, corruption,
//!   and resets;
//! * the `stress` binary — reproducible sweeps (`--seed`, `--budget`),
//!   printing any shrunk failure as a ready-to-paste `#[test]`, and a
//!   `--chaos` mode that drives a real daemon through the proxy.
//!
//! See `docs/TESTING.md` for the full oracle matrix and workflows.

#![warn(missing_docs)]

pub mod case;
pub mod chaos;
pub mod compare;
pub mod harness;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use case::Case;
pub use chaos::{
    run_chaos_workload, verify_outcome_accounting, verify_recovered, ChaosProxy, ChaosReport,
    FaultKind, FaultPlan, OutcomeAccounting,
};
pub use compare::{approx_eq, check_topk, check_topk_statistical, REL_TOL};
pub use harness::{assert_case, check_case, check_case_with, Mismatch};
pub use oracle::{all_oracles, approx_check, ApproxOracle, FaultyOracle, Mutation, Oracle};
pub use scenario::{scenario, FAMILIES};
pub use shrink::shrink;
