//! The [`Oracle`] trait: one uniform face over every algorithm path.
//!
//! Static engines (everything in `core`'s registry, plus the parallel
//! PEBW variants) answer on the case's *final* graph; stream engines (the
//! two dynamic maintainers) build on the *initial* graph and replay the
//! update stream through their incremental paths. Both kinds return the
//! same shape, so the harness compares them all against one truth vector.
//!
//! [`all_oracles`] is the discovery point: `core` engines come from
//! [`egobtw_core::registry::builtin_engines`] (a new core engine is picked
//! up with zero changes here), and the parallel/dynamic adapters are
//! appended because those crates sit above `core` in the dependency graph
//! and cannot self-register.

use crate::case::Case;
use crate::compare::{check_topk, check_topk_statistical, REL_TOL};
use egobtw_core::approx::{approx_topk_with_fault, ApproxFault, ApproxParams, SamplingStrategy};
use egobtw_core::registry::{builtin_engines, topk_from_scores, EngineKind, RegisteredEngine};
use egobtw_dynamic::{DeltaFault, DeltaIndex, LazyTopK, LocalIndex};
use egobtw_graph::{CsrGraph, VertexId};
use egobtw_parallel::{edge_pebw, vertex_pebw};

/// One engine under differential test.
pub trait Oracle {
    /// Stable name used in reports and failure messages.
    fn name(&self) -> String;
    /// The engine's top-k answer for the case. `final_g` is the graph
    /// after stream replay (precomputed once by the harness); static
    /// engines answer on it, stream engines ignore it and replay
    /// `case.ops` themselves.
    fn topk(&self, case: &Case, final_g: &CsrGraph) -> Vec<(VertexId, f64)>;
    /// Validates this oracle's answer against the truth vector. The
    /// default is the exact tie-aware comparator; randomized oracles
    /// override it with the statistical-tolerance tier.
    fn check(&self, case: &Case, final_g: &CsrGraph, truth: &[f64]) -> Result<(), String> {
        check_topk(truth, &self.topk(case, final_g), case.k, REL_TOL)
    }
}

/// Adapter over a [`RegisteredEngine`] from `core`'s registry. Engines
/// tagged [`EngineKind::Approx`] are judged by the statistical comparator;
/// everything else must match the reference exactly.
pub struct StaticOracle(pub RegisteredEngine);

impl Oracle for StaticOracle {
    fn name(&self) -> String {
        self.0.name().to_string()
    }
    fn topk(&self, case: &Case, final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        self.0.topk(final_g, case.k)
    }
    fn check(&self, case: &Case, final_g: &CsrGraph, truth: &[f64]) -> Result<(), String> {
        let got = self.topk(case, final_g);
        match self.0.kind() {
            EngineKind::Exact => check_topk(truth, &got, case.k, REL_TOL),
            EngineKind::Approx { eps, .. } => {
                check_topk_statistical(truth, &got, case.k, eps, REL_TOL)
            }
        }
    }
}

/// Which PEBW work-distribution strategy a [`ParallelOracle`] runs.
#[derive(Clone, Copy, Debug)]
pub enum PebwVariant {
    /// Vertices as the unit of work.
    Vertex,
    /// Oriented edges as the unit of work.
    Edge,
}

/// Adapter over the parallel all-vertices engines at a fixed thread count.
pub struct ParallelOracle {
    /// Strategy under test.
    pub variant: PebwVariant,
    /// Worker threads.
    pub threads: usize,
}

impl Oracle for ParallelOracle {
    fn name(&self) -> String {
        match self.variant {
            PebwVariant::Vertex => format!("parallel::vertex_pebw(t={})", self.threads),
            PebwVariant::Edge => format!("parallel::edge_pebw(t={})", self.threads),
        }
    }
    fn topk(&self, case: &Case, final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        let scores = match self.variant {
            PebwVariant::Vertex => vertex_pebw(final_g, self.threads),
            PebwVariant::Edge => edge_pebw(final_g, self.threads),
        };
        topk_from_scores(&scores, case.k)
    }
}

/// Adapter over [`LazyTopK`] replayed across the case's update stream.
pub struct LazyOracle;

impl Oracle for LazyOracle {
    fn name(&self) -> String {
        "dynamic::lazy(replay)".into()
    }
    fn topk(&self, case: &Case, _final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        LazyTopK::replay(&case.initial(), case.k, &case.ops).top_k()
    }
}

/// Adapter over [`LocalIndex`] replayed across the case's update stream.
pub struct LocalOracle;

impl Oracle for LocalOracle {
    fn name(&self) -> String {
        "dynamic::local(replay)".into()
    }
    fn topk(&self, case: &Case, _final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        LocalIndex::replay(&case.initial(), &case.ops).top_k(case.k)
    }
}

/// Adapter over [`DeltaIndex`] replayed across the case's update stream.
pub struct DeltaOracle;

impl Oracle for DeltaOracle {
    fn name(&self) -> String {
        "dynamic::delta(replay)".into()
    }
    fn topk(&self, case: &Case, _final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        DeltaIndex::replay(&case.initial(), case.k, &case.ops).top_k()
    }
}

/// Direct adapter over the approx sampler with *forced* sampling
/// (`exact_pair_cutoff = 0`), so the small conformance graphs actually
/// exercise the estimator instead of falling through to the exact path.
/// Unlike the registry's approx engines (checked through the plain
/// statistical comparator), this oracle sees the full [`ApproxTopk`]
/// evidence and re-checks CI containment, certificate soundness,
/// certified membership, and the reported rank slack.
pub struct ApproxOracle {
    /// Budget-allocation strategy under test.
    pub strategy: SamplingStrategy,
    /// `true` keeps egos sampling up to `32 · P_p` draws before the exact
    /// fallback, reaching the variance-dominated stopping regime (needed
    /// to expose the no-variance-term mutant); `false` is the cheap
    /// always-on configuration.
    pub deep: bool,
}

impl ApproxOracle {
    /// The forced-sampling parameters this oracle runs with.
    pub fn forced_params(&self) -> ApproxParams {
        ApproxParams {
            eps: 0.1,
            delta: 0.005,
            seed: 0x5EED_CAFE,
            strategy: self.strategy,
            threads: 1,
            exact_pair_cutoff: 0,
            initial_batch: 32,
            max_rounds: 48,
            exact_fallback_factor: if self.deep { 32.0 } else { 2.0 },
        }
    }
}

impl Oracle for ApproxOracle {
    fn name(&self) -> String {
        let tag = match self.strategy {
            SamplingStrategy::Uniform => "uniform",
            SamplingStrategy::HubStratified => "hub-strat",
        };
        let depth = if self.deep { ", deep" } else { "" };
        format!("approx::sampler({tag}, forced{depth})")
    }
    fn topk(&self, case: &Case, final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        approx_topk_with_fault(final_g, case.k, &self.forced_params(), ApproxFault::None)
            .topk_entries()
    }
    fn check(&self, case: &Case, final_g: &CsrGraph, truth: &[f64]) -> Result<(), String> {
        approx_check(
            final_g,
            case.k,
            &self.forced_params(),
            ApproxFault::None,
            truth,
        )
    }
}

/// Runs the sampler (optionally with a planted fault) and validates the
/// full statistical contract against the truth vector:
///
/// 1. the plain statistical comparator (structure + bounded displacement
///    + ε-accurate estimates);
/// 2. CI containment — every returned vertex's true CB inside `[lo, hi]`;
/// 3. certificate soundness — a `certified` entry's lower bound must
///    clear the reported non-returned upper-bound boundary;
/// 4. certified membership — certified entries are tie-aware true top-k
///    members, with *exact* tolerance (no ε slack);
/// 5. displacement within the reported `rank_slack`, and (on a clean
///    stop) `rank_slack ≤ ε·max(1, c*_k)`.
///
/// Violations of 1/2/4/5 are the δ-events the trials driver counts;
/// violation 3 is deterministic evidence of a broken certifier.
pub fn approx_check(
    g: &CsrGraph,
    k: usize,
    params: &ApproxParams,
    fault: ApproxFault,
    truth: &[f64],
) -> Result<(), String> {
    let out = approx_topk_with_fault(g, k, params, fault);
    check_topk_statistical(truth, &out.topk_entries(), k, params.eps, REL_TOL)?;
    let expect_len = k.min(truth.len());
    if expect_len == 0 {
        return Ok(());
    }
    let mut sorted = truth.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let ck = sorted[expect_len - 1];
    let atol = REL_TOL * ck.abs().max(1.0);
    for (rank, e) in out.entries.iter().enumerate() {
        let t = truth[e.vertex as usize];
        if t < e.lo - atol || t > e.hi + atol {
            return Err(format!(
                "rank {rank}: vertex {} true CB {t} outside its reported CI [{}, {}]",
                e.vertex, e.lo, e.hi
            ));
        }
        if e.certified {
            if e.lo < out.uncovered_hi - atol {
                return Err(format!(
                    "rank {rank}: vertex {} certified but lo {} does not clear \
                     the non-returned boundary {} — unsound certificate",
                    e.vertex, e.lo, out.uncovered_hi
                ));
            }
            if t < ck - atol {
                return Err(format!(
                    "rank {rank}: vertex {} certified but true CB {t} is below \
                     the k-th true score {ck} — certified non-member",
                    e.vertex
                ));
            }
        }
        if t < ck - out.rank_slack - atol {
            return Err(format!(
                "rank {rank}: vertex {} true CB {t} displaced below {ck} by more \
                 than the reported rank slack {}",
                e.vertex, out.rank_slack
            ));
        }
    }
    if !out.budget_exhausted && out.rank_slack > params.eps * ck.max(1.0) + atol {
        return Err(format!(
            "clean stop but rank slack {} exceeds ε·max(1, c*_k) = {}",
            out.rank_slack,
            params.eps * ck.max(1.0)
        ));
    }
    Ok(())
}

/// Every registered algorithm path: the enumerated `core` registry (the
/// approx engines judged statistically via [`EngineKind`]), both PEBW
/// variants at 1/2/4 threads, all three dynamic maintainers replayed over
/// the update stream, and both forced-sampling approx oracles.
pub fn all_oracles() -> Vec<Box<dyn Oracle>> {
    let mut oracles: Vec<Box<dyn Oracle>> = builtin_engines()
        .into_iter()
        .map(|e| Box::new(StaticOracle(e)) as Box<dyn Oracle>)
        .collect();
    for threads in [1usize, 2, 4] {
        for variant in [PebwVariant::Vertex, PebwVariant::Edge] {
            oracles.push(Box::new(ParallelOracle { variant, threads }));
        }
    }
    oracles.push(Box::new(LazyOracle));
    oracles.push(Box::new(LocalOracle));
    oracles.push(Box::new(DeltaOracle));
    for strategy in [SamplingStrategy::Uniform, SamplingStrategy::HubStratified] {
        oracles.push(Box::new(ApproxOracle {
            strategy,
            deep: false,
        }));
    }
    oracles
}

/// Deliberate defect classes for mutation-testing the harness itself
/// (`stress --mutate <kind>`). If the harness cannot catch these, its
/// green runs mean nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Drops entries tied with the k-th score — the classic tie-boundary
    /// truncation bug. Caught by the length check.
    TieDrop,
    /// Perturbs the last returned score by a small bias — stands in for
    /// an accumulated-delta bug in a maintainer. Caught by per-vertex
    /// honesty / multiset checks.
    Bias,
    /// Swallows the update stream and answers on the initial graph —
    /// stands in for a maintainer that forgets to apply updates. Caught
    /// whenever the stream changes any relevant score.
    StaleGraph,
    /// `DeltaIndex` with [`DeltaFault::StalePairOnDelete`] planted: on
    /// delete, connectors of pairs in the common-neighbor egos are never
    /// decremented, so those egos' `CB` rots low. Caught by per-vertex
    /// honesty / multiset checks on any stream with a triangle-adjacent
    /// delete.
    DeltaStalePair,
    /// `DeltaIndex` with [`DeltaFault::MissEgo`] planted: the last
    /// common-neighbor ego is skipped when enumerating the affected set,
    /// and its terms silently rot.
    DeltaMissedEgo,
    /// `DeltaIndex` with [`DeltaFault::SkipRecertify`] planted: the top-k
    /// boundary is never re-certified, freezing membership at the initial
    /// top-k. Caught whenever the stream changes the true top-k.
    DeltaNoRecert,
    /// Approx sampler with [`ApproxFault::SkipHighDegree`] planted: the
    /// highest-degree egos never enter candidacy. Caught by the length
    /// check at `k = n` and by membership/displacement whenever a hub
    /// belongs in the top-k.
    ApproxSkipHub,
    /// Approx sampler with [`ApproxFault::NoVarianceTerm`] planted: the
    /// stopping rule drops the empirical-variance term, so CIs are too
    /// narrow in the variance-dominated regime. Caught (deep sampling)
    /// by CI-containment / displacement violations.
    ApproxNoVariance,
    /// Approx sampler with [`ApproxFault::BoundaryOffByOne`] planted: one
    /// entry past the sound confidence boundary is marked certified.
    /// Caught deterministically by the certificate-soundness re-check.
    ApproxBoundaryOff,
}

impl Mutation {
    /// Parses the `--mutate` argument.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "tie-drop" => Some(Mutation::TieDrop),
            "bias" => Some(Mutation::Bias),
            "stale-graph" => Some(Mutation::StaleGraph),
            "delta-stale-pair" => Some(Mutation::DeltaStalePair),
            "delta-missed-ego" => Some(Mutation::DeltaMissedEgo),
            "delta-no-recert" => Some(Mutation::DeltaNoRecert),
            "approx-skip-hub" => Some(Mutation::ApproxSkipHub),
            "approx-no-variance" => Some(Mutation::ApproxNoVariance),
            "approx-boundary-off" => Some(Mutation::ApproxBoundaryOff),
            _ => None,
        }
    }

    /// All mutation names, for usage text.
    pub const NAMES: &'static str = "tie-drop | bias | stale-graph | delta-stale-pair | \
         delta-missed-ego | delta-no-recert | approx-skip-hub | approx-no-variance | \
         approx-boundary-off";

    /// The fault to plant into a [`DeltaIndex`], for the delta mutants.
    fn delta_fault(self) -> Option<DeltaFault> {
        match self {
            Mutation::DeltaStalePair => Some(DeltaFault::StalePairOnDelete),
            Mutation::DeltaMissedEgo => Some(DeltaFault::MissEgo),
            Mutation::DeltaNoRecert => Some(DeltaFault::SkipRecertify),
            _ => None,
        }
    }

    /// The fault to plant into the approx sampler, for the approx mutants.
    fn approx_fault(self) -> Option<ApproxFault> {
        match self {
            Mutation::ApproxSkipHub => Some(ApproxFault::SkipHighDegree),
            Mutation::ApproxNoVariance => Some(ApproxFault::NoVarianceTerm),
            Mutation::ApproxBoundaryOff => Some(ApproxFault::BoundaryOffByOne),
            _ => None,
        }
    }
}

/// An engine wrapped with one deliberate defect: the first three mutations
/// corrupt a correct naive answer from the outside; the `Delta*` ones run
/// the real `DeltaIndex` replay with the corresponding fault planted
/// *inside* its update path; the `Approx*` ones run the real sampler
/// (deep forced-sampling configuration) with the fault planted inside its
/// estimation loop, checked against the full statistical contract.
pub struct FaultyOracle(pub Mutation);

impl FaultyOracle {
    /// Deep forced-sampling parameters for the approx mutants — the same
    /// configuration an honest deep [`ApproxOracle`] would run, so any
    /// divergence is attributable to the planted fault.
    fn approx_params(&self) -> ApproxParams {
        ApproxOracle {
            strategy: SamplingStrategy::Uniform,
            deep: true,
        }
        .forced_params()
    }
}

impl Oracle for FaultyOracle {
    fn name(&self) -> String {
        format!("mutant::{:?}", self.0)
    }
    fn check(&self, case: &Case, final_g: &CsrGraph, truth: &[f64]) -> Result<(), String> {
        if let Some(fault) = self.0.approx_fault() {
            return approx_check(final_g, case.k, &self.approx_params(), fault, truth);
        }
        check_topk(truth, &self.topk(case, final_g), case.k, REL_TOL)
    }
    fn topk(&self, case: &Case, final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        if let Some(fault) = self.0.approx_fault() {
            return approx_topk_with_fault(final_g, case.k, &self.approx_params(), fault)
                .topk_entries();
        }
        if let Some(fault) = self.0.delta_fault() {
            let mut idx = DeltaIndex::with_fault(&case.initial(), case.k, fault);
            for &op in &case.ops {
                idx.apply(op);
            }
            return idx.top_k();
        }
        let g = match self.0 {
            Mutation::StaleGraph => case.initial(),
            _ => final_g.clone(),
        };
        let mut out = topk_from_scores(&egobtw_core::compute_all_naive(&g), case.k);
        match self.0 {
            Mutation::TieDrop => {
                if let Some(&(_, kth)) = out.last() {
                    let keep = out.iter().take_while(|&&(_, s)| s > kth).count();
                    // Keep exactly one representative of the boundary class.
                    out.truncate((keep + 1).min(out.len()));
                }
            }
            Mutation::Bias => {
                if let Some(last) = out.last_mut() {
                    last.1 += 1e-3;
                }
            }
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_dynamic::stream::EdgeOp;

    fn star_case(k: usize, ops: Vec<EdgeOp>) -> Case {
        Case {
            n: 6,
            edges: (1..6).map(|v| (0, v)).collect(),
            k,
            ops,
            label: "star".into(),
        }
    }

    #[test]
    fn oracle_set_is_complete_and_uniquely_named() {
        let oracles = all_oracles();
        let mut names: Vec<String> = oracles.iter().map(|o| o.name()).collect();
        assert!(names.iter().any(|n| n == "core::naive"));
        assert!(names.iter().any(|n| n == "core::base_search"));
        assert!(names.iter().any(|n| n.starts_with("core::opt_search")));
        assert!(names.iter().any(|n| n == "parallel::vertex_pebw(t=4)"));
        assert!(names.iter().any(|n| n == "parallel::edge_pebw(t=2)"));
        assert!(names.iter().any(|n| n == "dynamic::lazy(replay)"));
        assert!(names.iter().any(|n| n == "dynamic::local(replay)"));
        assert!(names.iter().any(|n| n == "dynamic::delta(replay)"));
        names.sort();
        names.dedup();
        assert_eq!(names.len(), oracles.len(), "duplicate oracle name");
    }

    #[test]
    fn every_oracle_agrees_on_a_star_stream() {
        let case = star_case(2, vec![EdgeOp::Insert(1, 2), EdgeOp::Delete(0, 5)]);
        let final_g = case.final_graph();
        let reference = LazyOracle.topk(&case, &final_g);
        for o in all_oracles() {
            let got = o.topk(&case, &final_g);
            assert_eq!(got.len(), reference.len(), "{}", o.name());
            for ((_, a), (_, b)) in got.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", o.name());
            }
        }
    }

    #[test]
    fn mutants_misbehave() {
        // Stale-graph mutant ignores the stream that empties the star.
        let case = star_case(1, (1..6).map(|v| EdgeOp::Delete(0, v)).collect());
        let final_g = case.final_graph();
        let honest = StaticOracle(egobtw_core::registry::builtin_engines().remove(0));
        assert_eq!(honest.topk(&case, &final_g)[0].1, 0.0);
        assert!(FaultyOracle(Mutation::StaleGraph).topk(&case, &final_g)[0].1 > 0.0);
        // Bias mutant shifts a score; tie-drop mutant shortens the answer.
        let case = star_case(3, vec![]);
        let final_g = case.final_graph();
        assert!(FaultyOracle(Mutation::Bias).topk(&case, &final_g)[2].1 != 0.0);
        assert!(FaultyOracle(Mutation::TieDrop).topk(&case, &final_g).len() < 3);
        assert_eq!(Mutation::parse("bias"), Some(Mutation::Bias));
        assert_eq!(
            Mutation::parse("delta-no-recert"),
            Some(Mutation::DeltaNoRecert)
        );
        assert_eq!(Mutation::parse("nope"), None);
    }

    #[test]
    fn delta_mutants_misbehave() {
        // Each planted delta fault paired with the op/k regime where the
        // paper's toy graph provably exposes it: connector rot on the
        // (c,g) delete, a skipped ego on the (i,k) insert (both at k=n,
        // value-level), and the frozen Example 7 top-1 flip (k=1,
        // membership-level).
        use egobtw_gen::toy;
        let g = toy::paper_graph();
        let mk = |k: usize, ops: Vec<EdgeOp>| Case {
            n: g.n(),
            edges: g.edges().collect(),
            k,
            ops,
            label: "toy-delta-mutant".into(),
        };
        let checks = [
            (
                Mutation::DeltaStalePair,
                mk(16, vec![EdgeOp::Delete(toy::ids::C, toy::ids::G)]),
            ),
            (
                Mutation::DeltaMissedEgo,
                mk(16, vec![EdgeOp::Insert(toy::ids::I, toy::ids::K)]),
            ),
            (
                Mutation::DeltaNoRecert,
                mk(1, vec![EdgeOp::Insert(toy::ids::I, toy::ids::K)]),
            ),
        ];
        for (m, case) in checks {
            let final_g = case.final_graph();
            let honest = DeltaOracle.topk(&case, &final_g);
            let got = FaultyOracle(m).topk(&case, &final_g);
            let diverges = got.len() != honest.len()
                || got
                    .iter()
                    .zip(&honest)
                    .any(|(a, b)| a.0 != b.0 || (a.1 - b.1).abs() > 1e-9);
            assert!(diverges, "{m:?} indistinguishable from honest replay");
        }
    }
}
