//! The [`Oracle`] trait: one uniform face over every algorithm path.
//!
//! Static engines (everything in `core`'s registry, plus the parallel
//! PEBW variants) answer on the case's *final* graph; stream engines (the
//! two dynamic maintainers) build on the *initial* graph and replay the
//! update stream through their incremental paths. Both kinds return the
//! same shape, so the harness compares them all against one truth vector.
//!
//! [`all_oracles`] is the discovery point: `core` engines come from
//! [`egobtw_core::registry::builtin_engines`] (a new core engine is picked
//! up with zero changes here), and the parallel/dynamic adapters are
//! appended because those crates sit above `core` in the dependency graph
//! and cannot self-register.

use crate::case::Case;
use egobtw_core::registry::{builtin_engines, topk_from_scores, RegisteredEngine};
use egobtw_dynamic::{DeltaFault, DeltaIndex, LazyTopK, LocalIndex};
use egobtw_graph::{CsrGraph, VertexId};
use egobtw_parallel::{edge_pebw, vertex_pebw};

/// One engine under differential test.
pub trait Oracle {
    /// Stable name used in reports and failure messages.
    fn name(&self) -> String;
    /// The engine's top-k answer for the case. `final_g` is the graph
    /// after stream replay (precomputed once by the harness); static
    /// engines answer on it, stream engines ignore it and replay
    /// `case.ops` themselves.
    fn topk(&self, case: &Case, final_g: &CsrGraph) -> Vec<(VertexId, f64)>;
}

/// Adapter over a [`RegisteredEngine`] from `core`'s registry.
pub struct StaticOracle(pub RegisteredEngine);

impl Oracle for StaticOracle {
    fn name(&self) -> String {
        self.0.name().to_string()
    }
    fn topk(&self, case: &Case, final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        self.0.topk(final_g, case.k)
    }
}

/// Which PEBW work-distribution strategy a [`ParallelOracle`] runs.
#[derive(Clone, Copy, Debug)]
pub enum PebwVariant {
    /// Vertices as the unit of work.
    Vertex,
    /// Oriented edges as the unit of work.
    Edge,
}

/// Adapter over the parallel all-vertices engines at a fixed thread count.
pub struct ParallelOracle {
    /// Strategy under test.
    pub variant: PebwVariant,
    /// Worker threads.
    pub threads: usize,
}

impl Oracle for ParallelOracle {
    fn name(&self) -> String {
        match self.variant {
            PebwVariant::Vertex => format!("parallel::vertex_pebw(t={})", self.threads),
            PebwVariant::Edge => format!("parallel::edge_pebw(t={})", self.threads),
        }
    }
    fn topk(&self, case: &Case, final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        let scores = match self.variant {
            PebwVariant::Vertex => vertex_pebw(final_g, self.threads),
            PebwVariant::Edge => edge_pebw(final_g, self.threads),
        };
        topk_from_scores(&scores, case.k)
    }
}

/// Adapter over [`LazyTopK`] replayed across the case's update stream.
pub struct LazyOracle;

impl Oracle for LazyOracle {
    fn name(&self) -> String {
        "dynamic::lazy(replay)".into()
    }
    fn topk(&self, case: &Case, _final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        LazyTopK::replay(&case.initial(), case.k, &case.ops).top_k()
    }
}

/// Adapter over [`LocalIndex`] replayed across the case's update stream.
pub struct LocalOracle;

impl Oracle for LocalOracle {
    fn name(&self) -> String {
        "dynamic::local(replay)".into()
    }
    fn topk(&self, case: &Case, _final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        LocalIndex::replay(&case.initial(), &case.ops).top_k(case.k)
    }
}

/// Adapter over [`DeltaIndex`] replayed across the case's update stream.
pub struct DeltaOracle;

impl Oracle for DeltaOracle {
    fn name(&self) -> String {
        "dynamic::delta(replay)".into()
    }
    fn topk(&self, case: &Case, _final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        DeltaIndex::replay(&case.initial(), case.k, &case.ops).top_k()
    }
}

/// Every registered algorithm path: the enumerated `core` registry, both
/// PEBW variants at 1/2/4 threads, and all three dynamic maintainers
/// replayed over the update stream.
pub fn all_oracles() -> Vec<Box<dyn Oracle>> {
    let mut oracles: Vec<Box<dyn Oracle>> = builtin_engines()
        .into_iter()
        .map(|e| Box::new(StaticOracle(e)) as Box<dyn Oracle>)
        .collect();
    for threads in [1usize, 2, 4] {
        for variant in [PebwVariant::Vertex, PebwVariant::Edge] {
            oracles.push(Box::new(ParallelOracle { variant, threads }));
        }
    }
    oracles.push(Box::new(LazyOracle));
    oracles.push(Box::new(LocalOracle));
    oracles.push(Box::new(DeltaOracle));
    oracles
}

/// Deliberate defect classes for mutation-testing the harness itself
/// (`stress --mutate <kind>`). If the harness cannot catch these, its
/// green runs mean nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Drops entries tied with the k-th score — the classic tie-boundary
    /// truncation bug. Caught by the length check.
    TieDrop,
    /// Perturbs the last returned score by a small bias — stands in for
    /// an accumulated-delta bug in a maintainer. Caught by per-vertex
    /// honesty / multiset checks.
    Bias,
    /// Swallows the update stream and answers on the initial graph —
    /// stands in for a maintainer that forgets to apply updates. Caught
    /// whenever the stream changes any relevant score.
    StaleGraph,
    /// `DeltaIndex` with [`DeltaFault::StalePairOnDelete`] planted: on
    /// delete, connectors of pairs in the common-neighbor egos are never
    /// decremented, so those egos' `CB` rots low. Caught by per-vertex
    /// honesty / multiset checks on any stream with a triangle-adjacent
    /// delete.
    DeltaStalePair,
    /// `DeltaIndex` with [`DeltaFault::MissEgo`] planted: the last
    /// common-neighbor ego is skipped when enumerating the affected set,
    /// and its terms silently rot.
    DeltaMissedEgo,
    /// `DeltaIndex` with [`DeltaFault::SkipRecertify`] planted: the top-k
    /// boundary is never re-certified, freezing membership at the initial
    /// top-k. Caught whenever the stream changes the true top-k.
    DeltaNoRecert,
}

impl Mutation {
    /// Parses the `--mutate` argument.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "tie-drop" => Some(Mutation::TieDrop),
            "bias" => Some(Mutation::Bias),
            "stale-graph" => Some(Mutation::StaleGraph),
            "delta-stale-pair" => Some(Mutation::DeltaStalePair),
            "delta-missed-ego" => Some(Mutation::DeltaMissedEgo),
            "delta-no-recert" => Some(Mutation::DeltaNoRecert),
            _ => None,
        }
    }

    /// All mutation names, for usage text.
    pub const NAMES: &'static str =
        "tie-drop | bias | stale-graph | delta-stale-pair | delta-missed-ego | delta-no-recert";

    /// The fault to plant into a [`DeltaIndex`], for the delta mutants.
    fn delta_fault(self) -> Option<DeltaFault> {
        match self {
            Mutation::DeltaStalePair => Some(DeltaFault::StalePairOnDelete),
            Mutation::DeltaMissedEgo => Some(DeltaFault::MissEgo),
            Mutation::DeltaNoRecert => Some(DeltaFault::SkipRecertify),
            _ => None,
        }
    }
}

/// An engine wrapped with one deliberate defect: the first three mutations
/// corrupt a correct naive answer from the outside; the `Delta*` ones run
/// the real `DeltaIndex` replay with the corresponding fault planted
/// *inside* its update path.
pub struct FaultyOracle(pub Mutation);

impl Oracle for FaultyOracle {
    fn name(&self) -> String {
        format!("mutant::{:?}", self.0)
    }
    fn topk(&self, case: &Case, final_g: &CsrGraph) -> Vec<(VertexId, f64)> {
        if let Some(fault) = self.0.delta_fault() {
            let mut idx = DeltaIndex::with_fault(&case.initial(), case.k, fault);
            for &op in &case.ops {
                idx.apply(op);
            }
            return idx.top_k();
        }
        let g = match self.0 {
            Mutation::StaleGraph => case.initial(),
            _ => final_g.clone(),
        };
        let mut out = topk_from_scores(&egobtw_core::compute_all_naive(&g), case.k);
        match self.0 {
            Mutation::TieDrop => {
                if let Some(&(_, kth)) = out.last() {
                    let keep = out.iter().take_while(|&&(_, s)| s > kth).count();
                    // Keep exactly one representative of the boundary class.
                    out.truncate((keep + 1).min(out.len()));
                }
            }
            Mutation::Bias => {
                if let Some(last) = out.last_mut() {
                    last.1 += 1e-3;
                }
            }
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_dynamic::stream::EdgeOp;

    fn star_case(k: usize, ops: Vec<EdgeOp>) -> Case {
        Case {
            n: 6,
            edges: (1..6).map(|v| (0, v)).collect(),
            k,
            ops,
            label: "star".into(),
        }
    }

    #[test]
    fn oracle_set_is_complete_and_uniquely_named() {
        let oracles = all_oracles();
        let mut names: Vec<String> = oracles.iter().map(|o| o.name()).collect();
        assert!(names.iter().any(|n| n == "core::naive"));
        assert!(names.iter().any(|n| n == "core::base_search"));
        assert!(names.iter().any(|n| n.starts_with("core::opt_search")));
        assert!(names.iter().any(|n| n == "parallel::vertex_pebw(t=4)"));
        assert!(names.iter().any(|n| n == "parallel::edge_pebw(t=2)"));
        assert!(names.iter().any(|n| n == "dynamic::lazy(replay)"));
        assert!(names.iter().any(|n| n == "dynamic::local(replay)"));
        assert!(names.iter().any(|n| n == "dynamic::delta(replay)"));
        names.sort();
        names.dedup();
        assert_eq!(names.len(), oracles.len(), "duplicate oracle name");
    }

    #[test]
    fn every_oracle_agrees_on_a_star_stream() {
        let case = star_case(2, vec![EdgeOp::Insert(1, 2), EdgeOp::Delete(0, 5)]);
        let final_g = case.final_graph();
        let reference = LazyOracle.topk(&case, &final_g);
        for o in all_oracles() {
            let got = o.topk(&case, &final_g);
            assert_eq!(got.len(), reference.len(), "{}", o.name());
            for ((_, a), (_, b)) in got.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", o.name());
            }
        }
    }

    #[test]
    fn mutants_misbehave() {
        // Stale-graph mutant ignores the stream that empties the star.
        let case = star_case(1, (1..6).map(|v| EdgeOp::Delete(0, v)).collect());
        let final_g = case.final_graph();
        let honest = StaticOracle(egobtw_core::registry::builtin_engines().remove(0));
        assert_eq!(honest.topk(&case, &final_g)[0].1, 0.0);
        assert!(FaultyOracle(Mutation::StaleGraph).topk(&case, &final_g)[0].1 > 0.0);
        // Bias mutant shifts a score; tie-drop mutant shortens the answer.
        let case = star_case(3, vec![]);
        let final_g = case.final_graph();
        assert!(FaultyOracle(Mutation::Bias).topk(&case, &final_g)[2].1 != 0.0);
        assert!(FaultyOracle(Mutation::TieDrop).topk(&case, &final_g).len() < 3);
        assert_eq!(Mutation::parse("bias"), Some(Mutation::Bias));
        assert_eq!(
            Mutation::parse("delta-no-recert"),
            Some(Mutation::DeltaNoRecert)
        );
        assert_eq!(Mutation::parse("nope"), None);
    }

    #[test]
    fn delta_mutants_misbehave() {
        // Each planted delta fault paired with the op/k regime where the
        // paper's toy graph provably exposes it: connector rot on the
        // (c,g) delete, a skipped ego on the (i,k) insert (both at k=n,
        // value-level), and the frozen Example 7 top-1 flip (k=1,
        // membership-level).
        use egobtw_gen::toy;
        let g = toy::paper_graph();
        let mk = |k: usize, ops: Vec<EdgeOp>| Case {
            n: g.n(),
            edges: g.edges().collect(),
            k,
            ops,
            label: "toy-delta-mutant".into(),
        };
        let checks = [
            (
                Mutation::DeltaStalePair,
                mk(16, vec![EdgeOp::Delete(toy::ids::C, toy::ids::G)]),
            ),
            (
                Mutation::DeltaMissedEgo,
                mk(16, vec![EdgeOp::Insert(toy::ids::I, toy::ids::K)]),
            ),
            (
                Mutation::DeltaNoRecert,
                mk(1, vec![EdgeOp::Insert(toy::ids::I, toy::ids::K)]),
            ),
        ];
        for (m, case) in checks {
            let final_g = case.final_graph();
            let honest = DeltaOracle.topk(&case, &final_g);
            let got = FaultyOracle(m).topk(&case, &final_g);
            let diverges = got.len() != honest.len()
                || got
                    .iter()
                    .zip(&honest)
                    .any(|(a, b)| a.0 != b.0 || (a.1 - b.1).abs() > 1e-9);
            assert!(diverges, "{m:?} indistinguishable from honest replay");
        }
    }
}
