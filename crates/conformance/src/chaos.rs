//! Deterministic fault-injection proxy and oracle-checked chaos workload.
//!
//! The serving path claims: every admitted request is answered or refused
//! with an explicit `ERR`, acked writes survive any crash, and answers
//! are exact for the epoch they name. This module attacks those claims
//! with a **seeded, replayable** man-in-the-middle:
//!
//! * [`ChaosProxy`] — an in-process TCP proxy between a client and the
//!   real daemon. Each accepted connection draws a fault from a schedule
//!   derived *only* from `(seed, connection index)`: extra per-chunk
//!   delay, a one-shot stall, a mid-frame cut, a single corrupted
//!   response byte, or an abrupt reset-style close. Same seed ⇒ same
//!   schedule, so a failing run is re-runnable bit-for-bit.
//! * [`run_chaos_workload`] — a sequential driver speaking the daemon's
//!   length-prefixed frame protocol through the proxy: seq-tokened
//!   `UPDATE` batches retried until acked (exactly-once via the seq
//!   token), interleaved with `TOPK` reads verified against a
//!   from-scratch replay of every acked op through
//!   [`ego_betweenness_reference`] — the same zero-tolerance oracle the
//!   differential harness uses.
//! * [`verify_recovered`] — post-crash check: after the caller SIGKILLs
//!   and restarts the daemon, asserts the recovered epoch equals the
//!   acked epoch (zero acked-write loss) and the recovered top-k matches
//!   the replay truth.
//!
//! The corruption fault writes `0xFF`, a byte that can never appear in
//! well-formed UTF-8. Real deployments delegate integrity to TCP/TLS;
//! here the protocol's own UTF-8 validation is the detector, so a
//! corrupted frame surfaces as a transport error (and a retry), never as
//! a silently wrong answer. This module deliberately does **not** depend
//! on the service crate — it re-implements the ~30-line frame codec so
//! the conformance suite exercises the wire contract, not the
//! implementation's own helpers.

use crate::check_topk;
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_dynamic::stream::{replay_graph, EdgeOp};
use egobtw_graph::{CsrGraph, VertexId};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// SplitMix64 finalizer — the only entropy source in this module.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Tiny deterministic generator (SplitMix64 stream) for workload choices.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(mix64(seed))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.0)
    }
}

// ---------------------------------------------------------------------------
// Fault schedule
// ---------------------------------------------------------------------------

/// One injectable network fault. Every kind is exercised by cycling the
/// connection index; [`FaultKind::ALL`] is the committed schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Pass bytes through untouched (the control arm).
    Clean,
    /// Sleep a few milliseconds before forwarding each chunk.
    Delay,
    /// One long pause mid-stream after a byte threshold.
    Stall,
    /// Forward up to a byte threshold, then close both directions —
    /// the peer sees EOF in the middle of a frame.
    Cut,
    /// Overwrite one server→client byte with `0xFF` (never valid UTF-8,
    /// so the client's frame decoder is guaranteed to notice).
    Corrupt,
    /// Abrupt close with inbound data left unread — on Linux the kernel
    /// answers the unread backlog with RST rather than FIN.
    Rst,
}

impl FaultKind {
    /// Every fault kind, in schedule order. Connections rotate through
    /// this array (seed-phased), so six consecutive connections always
    /// cover every kind.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Clean,
        FaultKind::Delay,
        FaultKind::Stall,
        FaultKind::Cut,
        FaultKind::Corrupt,
        FaultKind::Rst,
    ];
}

/// The fully materialized fault for one proxied connection.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Which fault this connection suffers.
    pub kind: FaultKind,
    /// Byte threshold (per direction) at which Stall/Cut/Corrupt/Rst
    /// trigger. Small on purpose: responses start with a length line, so
    /// a threshold of a few dozen bytes lands mid-frame.
    pub at_byte: u64,
    /// Sleep for Delay (per chunk) or Stall (once), in milliseconds.
    pub millis: u64,
    /// For [`FaultKind::Cut`]: sever on the client→server direction
    /// (a request dies mid-frame) instead of server→client.
    pub cut_request: bool,
}

impl FaultPlan {
    /// Derives connection `conn`'s fault under `seed`. Pure function of
    /// its arguments — the whole proxy schedule replays from the seed.
    /// Kinds rotate round-robin (phase-shifted by the seed), so any six
    /// consecutive connections are guaranteed to cover every kind —
    /// thresholds and timings still vary per connection.
    pub fn for_conn(seed: u64, conn: u64) -> FaultPlan {
        let h = mix64(seed ^ conn.wrapping_mul(0x0EE1_0AD5));
        let phase = mix64(seed) % FaultKind::ALL.len() as u64;
        let kind = FaultKind::ALL[((conn + phase) % FaultKind::ALL.len() as u64) as usize];
        FaultPlan {
            kind,
            at_byte: 1 + (mix64(h ^ 1) % 96),
            millis: match kind {
                FaultKind::Delay => 1 + mix64(h ^ 2) % 8,
                FaultKind::Stall => 60 + mix64(h ^ 2) % 140,
                _ => 0,
            },
            cut_request: mix64(h ^ 3) & 1 == 0,
        }
    }
}

// ---------------------------------------------------------------------------
// The proxy
// ---------------------------------------------------------------------------

/// In-process TCP proxy that forwards every accepted connection to a
/// fixed upstream address while replaying the seeded fault schedule.
/// Dropping (or [`ChaosProxy::stop`]) closes the listener; per-connection
/// pump threads die with their sockets.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream`.
    pub fn spawn(upstream: &str, seed: u64) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let upstream = upstream.to_string();
        let acceptor = thread::spawn(move || {
            for (conn, client) in listener.incoming().enumerate() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = client else { break };
                let plan = FaultPlan::for_conn(seed, conn as u64);
                let upstream = upstream.clone();
                // Detached: each handler dies when either socket does.
                thread::spawn(move || {
                    let Ok(server) = TcpStream::connect(&upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        return;
                    };
                    let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                        return;
                    };
                    // Corruption only ever hits responses: a corrupted
                    // *request* the server rejects is the server's proto
                    // test's job; here we attack the client's decoder.
                    let (req_fault, resp_fault) = split_plan(&plan);
                    let t = thread::spawn(move || pump(c2, server, req_fault));
                    pump(s2, client, resp_fault);
                    let _ = t.join();
                });
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Stops accepting. Existing pump threads finish on their own when
    /// their sockets close.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Splits one connection's plan into (request-direction,
/// response-direction) pump faults.
fn split_plan(plan: &FaultPlan) -> (FaultPlan, FaultPlan) {
    let clean = FaultPlan {
        kind: FaultKind::Clean,
        ..*plan
    };
    match plan.kind {
        // Cut may sever either direction; everything else targets
        // responses (Corrupt by design, Delay/Stall/Rst by convention —
        // the schedule stays deterministic either way).
        FaultKind::Cut if plan.cut_request => (*plan, clean),
        _ => (clean, *plan),
    }
}

/// Forwards `src` → `dst` applying `fault`. On exit both sockets are
/// fully shut down, which cascades the other direction's pump to exit.
fn pump(mut src: TcpStream, mut dst: TcpStream, fault: FaultPlan) {
    let mut buf = [0u8; 2048];
    let mut total = 0u64;
    let mut stalled = false;
    let mut corrupted = false;
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        match fault.kind {
            FaultKind::Clean => {}
            FaultKind::Delay => thread::sleep(Duration::from_millis(fault.millis)),
            FaultKind::Stall => {
                if !stalled && total >= fault.at_byte {
                    stalled = true;
                    thread::sleep(Duration::from_millis(fault.millis));
                }
            }
            FaultKind::Corrupt => {
                if !corrupted && total + n as u64 > fault.at_byte {
                    let off = fault.at_byte.saturating_sub(total) as usize;
                    chunk[off.min(n - 1)] = 0xFF;
                    corrupted = true;
                }
            }
            FaultKind::Cut => {
                if total + n as u64 >= fault.at_byte {
                    let keep = (fault.at_byte - total) as usize;
                    let _ = dst.write_all(&chunk[..keep.min(n)]);
                    break;
                }
            }
            FaultKind::Rst => {
                if total + n as u64 >= fault.at_byte {
                    // Leave this chunk unforwarded and close with inbound
                    // data possibly pending — the RST approximation.
                    let mut sink = [0u8; 512];
                    let _ = src.read(&mut sink);
                    break;
                }
            }
        }
        total += n as u64;
        if dst.write_all(chunk).is_err() {
            break;
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------------
// Minimal frame codec (mirrors docs/ARCHITECTURE.md, not the service crate)
// ---------------------------------------------------------------------------

/// Upper bound on a frame this client will accept; matches the daemon's.
const MAX_FRAME: usize = 16 << 20;

fn send_frame(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    let mut frame = line.len().to_string().into_bytes();
    frame.push(b'\n');
    frame.extend_from_slice(line.as_bytes());
    stream.write_all(&frame)
}

fn bad_data(why: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, why)
}

fn recv_frame(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut len_line = Vec::with_capacity(16);
    let mut byte = [0u8; 1];
    loop {
        stream.read_exact(&mut byte)?;
        if byte[0] == b'\n' {
            break;
        }
        if !byte[0].is_ascii_digit() || len_line.len() > 8 {
            return Err(bad_data(format!("bad length prefix byte {:#04x}", byte[0])));
        }
        len_line.push(byte[0]);
    }
    let len: usize = String::from_utf8(len_line)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data("unparseable length prefix".into()))?;
    if len > MAX_FRAME {
        return Err(bad_data(format!("frame of {len} bytes exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    String::from_utf8(payload).map_err(|_| bad_data("payload is not UTF-8".into()))
}

fn connect(addr: &str, budget: Duration) -> std::io::Result<TcpStream> {
    let deadline = std::time::Instant::now() + budget;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(5)))?;
                s.set_write_timeout(Some(Duration::from_secs(5)))?;
                s.set_nodelay(true)?;
                return Ok(s);
            }
            Err(e) if std::time::Instant::now() >= deadline => return Err(e),
            Err(_) => thread::sleep(Duration::from_millis(25)),
        }
    }
}

// ---------------------------------------------------------------------------
// The workload driver
// ---------------------------------------------------------------------------

/// What one chaos run observed and committed. Feed it to
/// [`verify_recovered`] after crashing and restarting the daemon.
#[derive(Debug)]
pub struct ChaosReport {
    /// Epoch the daemon acked last — the zero-loss floor for recovery.
    pub acked_epoch: u64,
    /// Every acked op, in epoch order (`batch` ops per epoch).
    pub ops: Vec<EdgeOp>,
    /// Ops per UPDATE batch (uniform by construction).
    pub batch: usize,
    /// Reads answered OK and verified against the replay oracle.
    pub reads_ok: u64,
    /// Reads explicitly refused (`ERR busy` / `ERR draining` /
    /// `ERR deadline`) — allowed, counted, never verified.
    pub reads_refused: u64,
    /// Transport-level failures the driver retried through (includes
    /// corruption caught by the frame codec).
    pub transport_errors: u64,
    /// Oracle violations. Empty or the run failed.
    pub violations: Vec<String>,
}

/// One daemon round-trip through a possibly hostile link: reconnects and
/// retries on transport errors, returns the first *reply* (which may be
/// an `ERR`). `Err` only after the attempt budget is exhausted.
fn rpc(
    conn: &mut Option<TcpStream>,
    addr: &str,
    payload: &str,
    transport_errors: &mut u64,
) -> Result<String, String> {
    const ATTEMPTS: usize = 60;
    for attempt in 0..ATTEMPTS {
        if conn.is_none() {
            match connect(addr, Duration::from_secs(5)) {
                Ok(s) => *conn = Some(s),
                Err(e) => {
                    if attempt + 1 == ATTEMPTS {
                        return Err(format!("connect {addr}: {e}"));
                    }
                    thread::sleep(Duration::from_millis(25));
                    continue;
                }
            }
        }
        let stream = conn.as_mut().expect("just connected");
        match send_frame(stream, payload).and_then(|()| recv_frame(stream)) {
            Ok(reply) => return Ok(reply),
            Err(_) => {
                // Cut, reset, stall-past-timeout, or corruption — drop
                // the session and retry on a fresh connection (a fresh
                // fault draw).
                *transport_errors += 1;
                *conn = None;
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
    Err(format!("no reply to {payload:?} after {ATTEMPTS} attempts"))
}

/// Pulls `key=<u64>` out of a reply line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("{key}=");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(' ').unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses `entries=v:s,v:s,…` from a TOPK reply.
fn parse_entries(line: &str) -> Result<Vec<(VertexId, f64)>, String> {
    let raw = line
        .split_once("entries=")
        .ok_or_else(|| format!("no entries field in {line:?}"))?
        .1
        .trim();
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|pair| {
            let (v, s) = pair
                .split_once(':')
                .ok_or_else(|| format!("bad entry {pair:?}"))?;
            Ok((
                v.parse().map_err(|e| format!("bad vertex {v:?}: {e}"))?,
                s.parse().map_err(|e| format!("bad score {s:?}: {e}"))?,
            ))
        })
        .collect()
}

/// Renders one UPDATE batch with its idempotency token.
fn update_payload(name: &str, seq: u64, ops: &[EdgeOp]) -> String {
    let mut line = format!("UPDATE {name} seq={seq}");
    for op in ops {
        let (sign, (u, v)) = match op {
            EdgeOp::Insert(u, v) => ('+', (u, v)),
            EdgeOp::Delete(u, v) => ('-', (u, v)),
        };
        line.push_str(&format!(" {sign}{u},{v}"));
    }
    line
}

/// Drives `batches` seq-tokened UPDATE epochs (of `batch` ops each)
/// against dataset `name` through `addr` — normally a [`ChaosProxy`] —
/// interleaving oracle-checked TOPK reads. `g0` must be the graph the
/// daemon loaded for `name`. Sequential by design: with one writer the
/// daemon's epoch equals the acked epoch at every read, which makes the
/// replay oracle exact rather than heuristic.
///
/// Returns `Err` only on driver-level failure (e.g. the daemon is
/// unreachable); protocol violations land in
/// [`ChaosReport::violations`] so the caller can report them all.
pub fn run_chaos_workload(
    addr: &str,
    name: &str,
    g0: &CsrGraph,
    seed: u64,
    batches: usize,
    batch: usize,
) -> Result<ChaosReport, String> {
    let n = g0.n();
    if n < 2 {
        return Err("chaos workload needs a graph with ≥ 2 vertices".into());
    }
    let mut rng = Rng::new(seed ^ 0xC4A0_5EED);
    let mut report = ChaosReport {
        acked_epoch: 0,
        ops: Vec::with_capacity(batches * batch),
        batch,
        reads_ok: 0,
        reads_refused: 0,
        transport_errors: 0,
        violations: Vec::new(),
    };
    let mut conn: Option<TcpStream>;

    for b in 0..batches {
        // Fresh connection per epoch: the proxy draws one fault per
        // accepted connection, so rotating guarantees every batch of six
        // epochs meets every fault kind (retries add further draws).
        conn = None;
        // Generate the batch. Replay semantics are forgiving (duplicate
        // insert / absent delete are no-ops), so unconditioned random
        // ops are valid — truth is whatever the replay says.
        let ops: Vec<EdgeOp> = (0..batch)
            .map(|_| {
                let u = (rng.next() % n as u64) as VertexId;
                let mut v = (rng.next() % n as u64) as VertexId;
                if u == v {
                    v = (v + 1) % n as VertexId;
                }
                if rng.next() & 1 == 0 {
                    EdgeOp::Insert(u, v)
                } else {
                    EdgeOp::Delete(u, v)
                }
            })
            .collect();
        let expected = report.acked_epoch;
        let payload = update_payload(name, expected, &ops);

        // Retry until acked. The seq token makes this exactly-once: a
        // retry of an applied batch re-acks (same seq + fingerprint), and
        // a lost-ack race surfaces as `stale seq` naming epoch+1.
        let mut applied = false;
        loop {
            let reply = rpc(&mut conn, addr, &payload, &mut report.transport_errors)?;
            if reply.starts_with("OK update") {
                applied = true;
                match field_u64(&reply, "epoch") {
                    Some(e) if e == expected + 1 => {}
                    other => report.violations.push(format!(
                        "batch {b}: acked epoch {other:?}, expected {}",
                        expected + 1
                    )),
                }
                break;
            }
            if reply.starts_with("ERR busy")
                || reply.starts_with("ERR draining")
                || reply.contains("deadline")
            {
                // Refused before application — plain retry.
                thread::sleep(Duration::from_millis(10));
                continue;
            }
            if reply.contains("stale seq=") {
                // "ERR stale seq=E: dataset … is at epoch N" — the final
                // token is the daemon's epoch.
                let at: Option<u64> = reply.rsplit(' ').next().and_then(|t| t.parse().ok());
                if at == Some(expected + 1) {
                    applied = true; // our write landed; only the ack was lost
                    break;
                }
                report.violations.push(format!(
                    "batch {b}: stale at epoch {at:?}, expected {}",
                    expected + 1
                ));
                break;
            }
            report.violations.push(format!("batch {b}: {reply}"));
            break;
        }
        if !applied {
            // A protocol violation was recorded; the daemon did not take
            // the batch, so the mirror must not take it either.
            continue;
        }
        report.acked_epoch = expected + 1;
        report.ops.extend_from_slice(&ops);

        // Interleave reads: every third epoch, one TOPK — sometimes with
        // an aggressive DEADLINE that is *allowed* to expire but must
        // then say so.
        if b % 3 != 2 {
            continue;
        }
        let k = 1 + (rng.next() % 12) as usize;
        let query = if rng.next().is_multiple_of(4) {
            format!("DEADLINE 2000 TOPK {name} {k} core::compute_all")
        } else {
            format!("TOPK {name} {k} core::compute_all")
        };
        let reply = rpc(&mut conn, addr, &query, &mut report.transport_errors)?;
        if reply.starts_with("ERR") {
            if reply.contains("busy") || reply.contains("draining") || reply.contains("deadline") {
                report.reads_refused += 1;
            } else {
                report
                    .violations
                    .push(format!("read at epoch {}: {reply}", report.acked_epoch));
            }
            continue;
        }
        match check_read(&reply, g0, &report.ops, report.acked_epoch, batch, k) {
            Ok(()) => report.reads_ok += 1,
            Err(why) => report
                .violations
                .push(format!("read at epoch {}: {why}", report.acked_epoch)),
        }
    }
    Ok(report)
}

/// Verifies one TOPK reply against the replay oracle.
fn check_read(
    reply: &str,
    g0: &CsrGraph,
    ops: &[EdgeOp],
    acked_epoch: u64,
    batch: usize,
    k: usize,
) -> Result<(), String> {
    let epoch = field_u64(reply, "epoch").ok_or_else(|| format!("no epoch in {reply:?}"))?;
    if epoch != acked_epoch {
        return Err(format!(
            "answer names epoch {epoch}, but the single writer is at {acked_epoch}"
        ));
    }
    let got = parse_entries(reply)?;
    let prefix = (epoch as usize) * batch;
    let g = replay_graph(g0, &ops[..prefix.min(ops.len())]).to_csr();
    let truth: Vec<f64> = (0..g.n() as VertexId)
        .map(|v| ego_betweenness_reference(&g, v))
        .collect();
    check_topk(&truth, &got, k, crate::REL_TOL)
}

/// Post-recovery assertion: connect **directly** to the restarted daemon
/// at `addr` and check (1) the recovered epoch equals the acked epoch —
/// an acked write disappearing or a phantom epoch appearing both fail —
/// and (2) a fresh exact top-k matches the replay of the acked ops.
pub fn verify_recovered(
    addr: &str,
    name: &str,
    g0: &CsrGraph,
    report: &ChaosReport,
) -> Result<(), String> {
    let mut conn: Option<TcpStream> = None;
    let mut scratch = 0u64;
    let stats = rpc(&mut conn, addr, &format!("STATS {name}"), &mut scratch)?;
    if !stats.starts_with("OK stats") {
        return Err(format!("STATS after recovery: {stats}"));
    }
    let epoch = field_u64(&stats, "epoch").ok_or_else(|| format!("no epoch in {stats:?}"))?;
    if epoch != report.acked_epoch {
        return Err(format!(
            "recovered epoch {epoch} ≠ acked epoch {} — {}",
            report.acked_epoch,
            if epoch < report.acked_epoch {
                "acked writes were lost"
            } else {
                "unacked epochs materialized under a quiescent writer"
            }
        ));
    }
    let k = 8;
    let reply = rpc(
        &mut conn,
        addr,
        &format!("TOPK {name} {k} core::compute_all"),
        &mut scratch,
    )?;
    if !reply.starts_with("OK top") {
        return Err(format!("TOPK after recovery: {reply}"));
    }
    check_read(&reply, g0, &report.ops, report.acked_epoch, report.batch, k)
        .map_err(|why| format!("recovered top-k: {why}"))
}

/// One scrape's view of the request-outcome accounting.
#[derive(Clone, Copy, Debug)]
pub struct OutcomeAccounting {
    /// `egobtw_requests_admitted_total`.
    pub admitted: u64,
    /// `egobtw_requests_completed_total`.
    pub completed: u64,
    /// `egobtw_requests_cancelled_total`.
    pub cancelled: u64,
    /// `egobtw_requests_failed_total`.
    pub failed: u64,
}

impl OutcomeAccounting {
    /// `admitted - (completed + cancelled + failed)` — zero when every
    /// admitted command line landed in exactly one outcome bucket.
    pub fn drift(&self) -> i64 {
        self.admitted as i64 - (self.completed + self.cancelled + self.failed) as i64
    }
}

/// Scrapes `METRICS` **directly** from the daemon at `addr` (never
/// through the chaos proxy — a faulted scrape would prove nothing),
/// schema-validates the exposition, and checks the outcome-accounting
/// invariant `admitted == completed + cancelled + failed`. The daemon
/// must be quiescent when this runs: an in-flight request sits between
/// `admitted` and its outcome bump, which is drift by construction.
pub fn verify_outcome_accounting(addr: &str) -> Result<OutcomeAccounting, String> {
    let mut conn: Option<TcpStream> = None;
    let mut scratch = 0u64;
    let text = rpc(&mut conn, addr, "METRICS", &mut scratch)?;
    let expo = egobtw_telemetry::prometheus::parse(&text)
        .map_err(|e| format!("METRICS exposition: {e}"))?;
    let violations = expo.validate(&[
        "egobtw_requests_admitted_total",
        "egobtw_requests_completed_total",
        "egobtw_requests_cancelled_total",
        "egobtw_requests_failed_total",
    ]);
    if !violations.is_empty() {
        return Err(format!("METRICS schema: {violations:?}"));
    }
    let counter = |name: &str| -> Result<u64, String> {
        expo.value(name, &[])?
            .map(|v| v as u64)
            .ok_or_else(|| format!("{name} missing"))
    };
    let acc = OutcomeAccounting {
        admitted: counter("egobtw_requests_admitted_total")?,
        completed: counter("egobtw_requests_completed_total")?,
        cancelled: counter("egobtw_requests_cancelled_total")?,
        failed: counter("egobtw_requests_failed_total")?,
    };
    if acc.drift() != 0 {
        return Err(format!(
            "outcome accounting drifted: admitted={} != completed={} + cancelled={} + failed={} \
             (drift {})",
            acc.admitted,
            acc.completed,
            acc.cancelled,
            acc.failed,
            acc.drift()
        ));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_and_covers_every_kind() {
        for seed in [7u64, 42, 1 << 40] {
            let mut seen = [false; FaultKind::ALL.len()];
            for conn in 0..FaultKind::ALL.len() as u64 {
                let a = FaultPlan::for_conn(seed, conn);
                let b = FaultPlan::for_conn(seed, conn);
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.at_byte, b.at_byte);
                assert_eq!(a.millis, b.millis);
                let idx = FaultKind::ALL.iter().position(|k| *k == a.kind).unwrap();
                seen[idx] = true;
            }
            assert!(
                seen.iter().all(|s| *s),
                "six consecutive connections must cover all kinds (seed {seed})"
            );
        }
    }

    #[test]
    fn frame_codec_roundtrips_through_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let got = recv_frame(&mut s).unwrap();
            send_frame(&mut s, &format!("echo {got}")).unwrap();
        });
        let mut c = TcpStream::connect(addr).unwrap();
        send_frame(&mut c, "PING").unwrap();
        assert_eq!(recv_frame(&mut c).unwrap(), "echo PING");
        t.join().unwrap();
    }

    #[test]
    fn corrupted_payload_is_rejected_not_returned() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(b"6\nOK t\xFFp").unwrap();
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let err = recv_frame(&mut c).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        t.join().unwrap();
    }

    #[test]
    fn entry_parser_reads_the_wire_form() {
        let line = "OK top name=g epoch=3 k=2 source=cache entries=4:1.5,0:0.25";
        assert_eq!(parse_entries(line).unwrap(), vec![(4, 1.5), (0, 0.25)]);
        assert_eq!(field_u64(line, "epoch"), Some(3));
        assert!(parse_entries("OK top name=g entries=4:").is_err());
    }
}
