//! Reproducible differential stress sweeps.
//!
//! ```text
//! cargo run --release -p conformance --bin stress -- --seed 42 --budget 200
//!
//! flags:
//!   --seed S        sweep key (default 42); same seed ⇒ same scenarios
//!   --budget N      number of scenarios to run (default 200)
//!   --max-secs T    stop early (green) after T seconds of checking
//!   --mutate KIND   inject a deliberately broken engine (tie-drop |
//!                   bias | stale-graph | delta-stale-pair |
//!                   delta-missed-ego | delta-no-recert |
//!                   approx-skip-hub | approx-no-variance |
//!                   approx-boundary-off) to demonstrate detection +
//!                   shrinking; the run is then EXPECTED to fail
//!   --approx-trials N
//!                   repeated-trials δ-check: run the honest approx
//!                   sampler N times (fresh sampler seed per trial,
//!                   scenarios cycled from --seed/--budget) and assert
//!                   the empirical failure rate of the statistical
//!                   contract is consistent with the promised δ
//!   --chaos         serving-path chaos sweep: spawn a real daemon (path
//!                   in $EGOBTW_SERVE_BIN), interpose the seeded fault
//!                   proxy (delay | stall | cut | corrupt | reset), drive
//!                   an oracle-checked workload, SIGKILL, restart, and
//!                   assert zero violations and zero acked-write loss
//!   --chaos-seeds N distinct chaos schedules to sweep (default 3)
//!   --verbose       print every scenario label as it runs
//! ```
//!
//! On divergence: the offending oracle and scenario are reported, the
//! case is greedily shrunk against the same oracle set, and the minimal
//! case is printed as a ready-to-paste `#[test]` calling
//! `conformance::assert_case`. Exit code 1.

use conformance::{
    approx_check, check_case_with, scenario, shrink, ApproxOracle, Case, FaultyOracle, Mismatch,
    Mutation,
};
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_core::{binomial_tail_ge, clopper_pearson_upper, ApproxFault, SamplingStrategy};
use egobtw_graph::{CsrGraph, VertexId};
use std::collections::BTreeMap;
use std::time::Instant;

struct Args {
    seed: u64,
    budget: usize,
    max_secs: Option<f64>,
    mutate: Option<Mutation>,
    approx_trials: Option<usize>,
    chaos: bool,
    chaos_seeds: usize,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        seed: 42,
        budget: 200,
        max_secs: None,
        mutate: None,
        approx_trials: None,
        chaos: false,
        chaos_seeds: 3,
        verbose: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--budget" => {
                args.budget = value(i)?.parse().map_err(|e| format!("--budget: {e}"))?;
                i += 2;
            }
            "--max-secs" => {
                args.max_secs = Some(value(i)?.parse().map_err(|e| format!("--max-secs: {e}"))?);
                i += 2;
            }
            "--mutate" => {
                let kind = value(i)?;
                args.mutate =
                    Some(Mutation::parse(kind).ok_or_else(|| {
                        format!("unknown mutation {kind:?} ({})", Mutation::NAMES)
                    })?);
                i += 2;
            }
            "--approx-trials" => {
                args.approx_trials = Some(
                    value(i)?
                        .parse()
                        .map_err(|e| format!("--approx-trials: {e}"))?,
                );
                i += 2;
            }
            "--chaos" => {
                args.chaos = true;
                i += 1;
            }
            "--chaos-seeds" => {
                args.chaos_seeds = value(i)?
                    .parse()
                    .map_err(|e| format!("--chaos-seeds: {e}"))?;
                i += 2;
            }
            "--verbose" => {
                args.verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn report_failure(case: &Case, mismatch: &Mismatch, oracles: &[Box<dyn conformance::Oracle>]) {
    eprintln!("\nFAIL on scenario {}", case.label);
    eprintln!("  {mismatch}");
    eprintln!(
        "  shrinking ({} vertices, {} edges, {} ops)…",
        case.n,
        case.edges.len(),
        case.ops.len()
    );
    let fails = |c: &Case| check_case_with(c, oracles).is_err();
    let minimal = shrink(case, &fails, 8);
    let final_mismatch =
        check_case_with(&minimal, oracles).expect_err("shrunk case must still fail");
    eprintln!(
        "  minimal failing case: {} vertices, {} edges, {} ops, k={}",
        minimal.n,
        minimal.edges.len(),
        minimal.ops.len(),
        minimal.k
    );
    let why = format!(
        "Shrunk from scenario `{}`.\nDivergence: {final_mismatch}",
        case.label
    );
    eprintln!("\npaste this into crates/conformance/tests/ as a regression test:\n");
    eprintln!("{}", minimal.to_test_code(&why));
}

/// Spawns the daemon named by `$EGOBTW_SERVE_BIN` on an OS-picked port
/// and waits for its `listening on` line. `load` preloads a binary
/// snapshot on first boot; later boots recover from the data dir.
fn spawn_serve(
    bin: &str,
    data_dir: &std::path::Path,
    load: Option<&std::path::Path>,
) -> Result<(std::process::Child, String), String> {
    use std::io::BufRead;
    let mut cmd = std::process::Command::new(bin);
    cmd.args(["--listen", "127.0.0.1:0", "--threads", "2", "--shards", "2"]);
    cmd.args(["--data-dir", data_dir.to_str().unwrap()]);
    if let Some(snap) = load {
        cmd.args(["--load", &format!("chaos={}", snap.to_str().unwrap())]);
    }
    cmd.stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    let mut child = cmd.spawn().map_err(|e| format!("spawn {bin:?}: {e}"))?;
    let stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    for line in stdout.lines() {
        let line = line.map_err(|e| format!("daemon stdout: {e}"))?;
        if let Some(rest) = line.strip_prefix("listening on ") {
            let addr = rest.split_whitespace().next().unwrap().to_string();
            return Ok((child, addr));
        }
    }
    let _ = child.kill();
    Err("daemon exited before printing its address".into())
}

/// The `--chaos` sweep: for each seed, daemon + fault proxy + workload +
/// SIGKILL + restart + recovery oracle. Any violation or acked-write
/// loss fails the sweep (exit 1).
fn run_chaos(args: &Args) -> i32 {
    let Ok(bin) = std::env::var("EGOBTW_SERVE_BIN") else {
        eprintln!(
            "stress --chaos: set EGOBTW_SERVE_BIN to the egobtw-serve binary \
             (e.g. target/release/egobtw-serve)"
        );
        return 2;
    };
    println!(
        "serving-path chaos sweep: seeds {}..{} bin={bin}",
        args.seed,
        args.seed + args.chaos_seeds as u64
    );
    let mut failed = false;
    for i in 0..args.chaos_seeds {
        let seed = args.seed + i as u64;
        let dir = std::env::temp_dir().join(format!("egobtw-chaos-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let data_dir = dir.join("data");
        if let Err(e) = std::fs::create_dir_all(&data_dir) {
            eprintln!("seed {seed}: mkdir {dir:?}: {e}");
            return 2;
        }
        let result = (|| -> Result<conformance::ChaosReport, String> {
            let g0 = egobtw_gen::gnp(48, 0.12, seed);
            let snap = dir.join("g0.snap");
            egobtw_graph::io::write_snapshot_file(&g0, None, &snap)
                .map_err(|e| format!("write snapshot: {e}"))?;
            let (mut child, addr) = spawn_serve(&bin, &data_dir, Some(&snap))?;
            let mut proxy =
                conformance::ChaosProxy::spawn(&addr, seed).map_err(|e| format!("proxy: {e}"))?;
            let report = conformance::run_chaos_workload(&proxy.addr(), "chaos", &g0, seed, 24, 3);
            proxy.stop();
            // Outcome accounting must balance on the battered daemon —
            // scraped directly (not through the dead proxy), after a
            // short quiesce so watchdog-cancelled stragglers from cut
            // connections have reached their outcome bucket.
            std::thread::sleep(std::time::Duration::from_millis(200));
            let accounting = conformance::verify_outcome_accounting(&addr);
            // Crash hard (SIGKILL — no drain, no fsync beyond what acks
            // already guaranteed), then restart over the same data dir.
            let _ = child.kill();
            let _ = child.wait();
            let report = report?;
            accounting.map_err(|e| format!("pre-crash {e}"))?;
            let (mut child2, addr2) = spawn_serve(&bin, &data_dir, None)?;
            let verdict =
                conformance::verify_recovered(&addr2, "chaos", &g0, &report).and_then(|()| {
                    // Counters restart from zero; the invariant must hold
                    // on the recovered process too.
                    conformance::verify_outcome_accounting(&addr2)
                        .map(|_| ())
                        .map_err(|e| format!("post-restart {e}"))
                });
            let _ = child2.kill();
            let _ = child2.wait();
            verdict.map(|()| report)
        })();
        let _ = std::fs::remove_dir_all(&dir);
        match result {
            Ok(report) if report.violations.is_empty() => {
                println!(
                    "  seed {seed}: PASS epochs={} reads_ok={} refused={} transport_errors={}",
                    report.acked_epoch,
                    report.reads_ok,
                    report.reads_refused,
                    report.transport_errors
                );
            }
            Ok(report) => {
                failed = true;
                eprintln!("  seed {seed}: {} violation(s)", report.violations.len());
                for v in &report.violations {
                    eprintln!("    - {v}");
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("  seed {seed}: FAIL {e}");
            }
        }
    }
    if failed {
        eprintln!("FAIL: chaos sweep found serving-path violations");
        1
    } else {
        println!(
            "PASS: {} chaos schedule(s), zero violations, zero acked-write loss",
            args.chaos_seeds
        );
        0
    }
}

/// SplitMix64 finalizer — decorrelates per-trial sampler seeds.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Repeated-trials δ-check: the statistical contract of the honest
/// sampler may fail with probability at most δ per run. Run it `trials`
/// times with fresh sampler seeds over the scenario pool, count contract
/// violations, and reject only if that count is statistically
/// incompatible with rate δ (one-sided binomial test at α = 10⁻³, i.e.
/// the gate itself false-alarms on an honest sampler less than once per
/// thousand sweeps). Exit codes: 0 consistent, 1 inconsistent.
fn run_approx_trials(args: &Args) -> i32 {
    let trials = args.approx_trials.unwrap();
    const ALPHA: f64 = 1e-3;
    let pool = args.budget.max(1);
    println!(
        "approx repeated-trials δ-check: trials={trials} pool={pool} seed={}",
        args.seed
    );

    // Lazily materialized per-scenario (graph, k, truth) — trials cycle
    // over the pool, so each scenario is built and solved exactly once.
    let mut cache: Vec<Option<(CsrGraph, usize, Vec<f64>)>> = (0..pool).map(|_| None).collect();
    let start = Instant::now();
    let mut failures = 0u64;
    let mut ran = 0u64;
    let mut delta = 0.0f64;
    let mut first_failures: Vec<String> = Vec::new();
    for trial in 0..trials {
        if let Some(limit) = args.max_secs {
            if start.elapsed().as_secs_f64() > limit {
                println!("time budget reached after {ran} trials");
                break;
            }
        }
        let idx = trial % pool;
        if cache[idx].is_none() {
            let case = scenario(args.seed, idx);
            let g = case.final_dyn().to_csr();
            let truth: Vec<f64> = (0..g.n() as VertexId)
                .map(|v| ego_betweenness_reference(&g, v))
                .collect();
            cache[idx] = Some((g, case.k, truth));
        }
        let (g, k, truth) = cache[idx].as_ref().unwrap();

        let strategy = if trial % 2 == 0 {
            SamplingStrategy::Uniform
        } else {
            SamplingStrategy::HubStratified
        };
        let mut params = ApproxOracle {
            strategy,
            deep: true,
        }
        .forced_params();
        params.seed = mix64(args.seed.wrapping_add(trial as u64));
        delta = params.delta;
        if let Err(why) = approx_check(g, *k, &params, ApproxFault::None, truth) {
            failures += 1;
            if first_failures.len() < 3 {
                first_failures.push(format!("trial {trial} (scenario #{idx}): {why}"));
            }
        }
        ran += 1;
        if args.verbose && trial % 100 == 0 {
            println!("  [{trial:>5}] failures so far: {failures}");
        }
    }

    // P[X ≥ failures] if the true violation rate were exactly δ, and the
    // exact Clopper–Pearson upper confidence bound on the observed rate.
    let p_tail = binomial_tail_ge(ran, failures, delta);
    let cp_upper = clopper_pearson_upper(failures, ran, ALPHA);
    println!(
        "trials={ran} failures={failures} promised δ={delta} \
         P[X≥{failures} | δ]={p_tail:.3e} CP{}-upper={cp_upper:.5}",
        1.0 - ALPHA
    );
    for f in &first_failures {
        eprintln!("  δ-event: {f}");
    }
    if p_tail < ALPHA {
        eprintln!(
            "FAIL: {failures}/{ran} contract violations is statistically \
             incompatible with the promised δ={delta} (α={ALPHA})"
        );
        1
    } else {
        println!(
            "PASS: empirical failure rate consistent with δ={delta} in {:.2}s",
            start.elapsed().as_secs_f64()
        );
        0
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: stress [--seed S] [--budget N] [--max-secs T] \
                 [--mutate {}] [--approx-trials N] [--chaos] [--chaos-seeds N] [--verbose]",
                Mutation::NAMES
            );
            std::process::exit(2);
        }
    };

    if args.chaos {
        std::process::exit(run_chaos(&args));
    }

    if args.approx_trials.is_some() {
        std::process::exit(run_approx_trials(&args));
    }

    let mut oracles = conformance::all_oracles();
    if let Some(kind) = args.mutate {
        eprintln!("note: injecting deliberately broken engine mutant::{kind:?}");
        oracles.push(Box::new(FaultyOracle(kind)));
    }
    println!(
        "conformance stress: seed={} budget={} oracles={}",
        args.seed,
        args.budget,
        oracles.len()
    );
    for oracle in &oracles {
        println!("  - {}", oracle.name());
    }

    let start = Instant::now();
    let mut by_family: BTreeMap<String, usize> = BTreeMap::new();
    let mut with_streams = 0usize;
    let mut ran = 0usize;
    for idx in 0..args.budget {
        if let Some(limit) = args.max_secs {
            if start.elapsed().as_secs_f64() > limit {
                println!("time budget reached after {ran} scenarios");
                break;
            }
        }
        let case = scenario(args.seed, idx);
        if args.verbose {
            println!("  [{idx:>4}] {}", case.label);
        }
        if let Err(mismatch) = check_case_with(&case, &oracles) {
            report_failure(&case, &mismatch, &oracles);
            std::process::exit(1);
        }
        *by_family
            .entry(conformance::FAMILIES[idx % conformance::FAMILIES.len()].to_string())
            .or_default() += 1;
        with_streams += usize::from(!case.ops.is_empty());
        ran += 1;
    }

    let families: Vec<String> = by_family.iter().map(|(f, c)| format!("{f}:{c}")).collect();
    println!(
        "PASS: {ran} scenarios ({} with update streams) × {} oracles in {:.2}s",
        with_streams,
        oracles.len(),
        start.elapsed().as_secs_f64()
    );
    println!("  families: {}", families.join(" "));
}
