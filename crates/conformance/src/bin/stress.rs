//! Reproducible differential stress sweeps.
//!
//! ```text
//! cargo run --release -p conformance --bin stress -- --seed 42 --budget 200
//!
//! flags:
//!   --seed S        sweep key (default 42); same seed ⇒ same scenarios
//!   --budget N      number of scenarios to run (default 200)
//!   --max-secs T    stop early (green) after T seconds of checking
//!   --mutate KIND   inject a deliberately broken engine (tie-drop |
//!                   bias | stale-graph | delta-stale-pair |
//!                   delta-missed-ego | delta-no-recert) to demonstrate
//!                   detection + shrinking; the run is then EXPECTED to
//!                   fail
//!   --verbose       print every scenario label as it runs
//! ```
//!
//! On divergence: the offending oracle and scenario are reported, the
//! case is greedily shrunk against the same oracle set, and the minimal
//! case is printed as a ready-to-paste `#[test]` calling
//! `conformance::assert_case`. Exit code 1.

use conformance::{check_case_with, scenario, shrink, Case, FaultyOracle, Mismatch, Mutation};
use std::collections::BTreeMap;
use std::time::Instant;

struct Args {
    seed: u64,
    budget: usize,
    max_secs: Option<f64>,
    mutate: Option<Mutation>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        seed: 42,
        budget: 200,
        max_secs: None,
        mutate: None,
        verbose: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--budget" => {
                args.budget = value(i)?.parse().map_err(|e| format!("--budget: {e}"))?;
                i += 2;
            }
            "--max-secs" => {
                args.max_secs = Some(value(i)?.parse().map_err(|e| format!("--max-secs: {e}"))?);
                i += 2;
            }
            "--mutate" => {
                let kind = value(i)?;
                args.mutate =
                    Some(Mutation::parse(kind).ok_or_else(|| {
                        format!("unknown mutation {kind:?} ({})", Mutation::NAMES)
                    })?);
                i += 2;
            }
            "--verbose" => {
                args.verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn report_failure(case: &Case, mismatch: &Mismatch, oracles: &[Box<dyn conformance::Oracle>]) {
    eprintln!("\nFAIL on scenario {}", case.label);
    eprintln!("  {mismatch}");
    eprintln!(
        "  shrinking ({} vertices, {} edges, {} ops)…",
        case.n,
        case.edges.len(),
        case.ops.len()
    );
    let fails = |c: &Case| check_case_with(c, oracles).is_err();
    let minimal = shrink(case, &fails, 8);
    let final_mismatch =
        check_case_with(&minimal, oracles).expect_err("shrunk case must still fail");
    eprintln!(
        "  minimal failing case: {} vertices, {} edges, {} ops, k={}",
        minimal.n,
        minimal.edges.len(),
        minimal.ops.len(),
        minimal.k
    );
    let why = format!(
        "Shrunk from scenario `{}`.\nDivergence: {final_mismatch}",
        case.label
    );
    eprintln!("\npaste this into crates/conformance/tests/ as a regression test:\n");
    eprintln!("{}", minimal.to_test_code(&why));
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: stress [--seed S] [--budget N] [--max-secs T] \
                 [--mutate {}] [--verbose]",
                Mutation::NAMES
            );
            std::process::exit(2);
        }
    };

    let mut oracles = conformance::all_oracles();
    if let Some(kind) = args.mutate {
        eprintln!("note: injecting deliberately broken engine mutant::{kind:?}");
        oracles.push(Box::new(FaultyOracle(kind)));
    }
    println!(
        "conformance stress: seed={} budget={} oracles={}",
        args.seed,
        args.budget,
        oracles.len()
    );
    for oracle in &oracles {
        println!("  - {}", oracle.name());
    }

    let start = Instant::now();
    let mut by_family: BTreeMap<String, usize> = BTreeMap::new();
    let mut with_streams = 0usize;
    let mut ran = 0usize;
    for idx in 0..args.budget {
        if let Some(limit) = args.max_secs {
            if start.elapsed().as_secs_f64() > limit {
                println!("time budget reached after {ran} scenarios");
                break;
            }
        }
        let case = scenario(args.seed, idx);
        if args.verbose {
            println!("  [{idx:>4}] {}", case.label);
        }
        if let Err(mismatch) = check_case_with(&case, &oracles) {
            report_failure(&case, &mismatch, &oracles);
            std::process::exit(1);
        }
        *by_family
            .entry(conformance::FAMILIES[idx % conformance::FAMILIES.len()].to_string())
            .or_default() += 1;
        with_streams += usize::from(!case.ops.is_empty());
        ran += 1;
    }

    let families: Vec<String> = by_family.iter().map(|(f, c)| format!("{f}:{c}")).collect();
    println!(
        "PASS: {ran} scenarios ({} with update streams) × {} oracles in {:.2}s",
        with_streams,
        oracles.len(),
        start.elapsed().as_secs_f64()
    );
    println!("  families: {}", families.join(" "));
}
