//! Reproducible differential stress sweeps.
//!
//! ```text
//! cargo run --release -p conformance --bin stress -- --seed 42 --budget 200
//!
//! flags:
//!   --seed S        sweep key (default 42); same seed ⇒ same scenarios
//!   --budget N      number of scenarios to run (default 200)
//!   --max-secs T    stop early (green) after T seconds of checking
//!   --mutate KIND   inject a deliberately broken engine (tie-drop |
//!                   bias | stale-graph | delta-stale-pair |
//!                   delta-missed-ego | delta-no-recert |
//!                   approx-skip-hub | approx-no-variance |
//!                   approx-boundary-off) to demonstrate detection +
//!                   shrinking; the run is then EXPECTED to fail
//!   --approx-trials N
//!                   repeated-trials δ-check: run the honest approx
//!                   sampler N times (fresh sampler seed per trial,
//!                   scenarios cycled from --seed/--budget) and assert
//!                   the empirical failure rate of the statistical
//!                   contract is consistent with the promised δ
//!   --verbose       print every scenario label as it runs
//! ```
//!
//! On divergence: the offending oracle and scenario are reported, the
//! case is greedily shrunk against the same oracle set, and the minimal
//! case is printed as a ready-to-paste `#[test]` calling
//! `conformance::assert_case`. Exit code 1.

use conformance::{
    approx_check, check_case_with, scenario, shrink, ApproxOracle, Case, FaultyOracle, Mismatch,
    Mutation,
};
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_core::{binomial_tail_ge, clopper_pearson_upper, ApproxFault, SamplingStrategy};
use egobtw_graph::{CsrGraph, VertexId};
use std::collections::BTreeMap;
use std::time::Instant;

struct Args {
    seed: u64,
    budget: usize,
    max_secs: Option<f64>,
    mutate: Option<Mutation>,
    approx_trials: Option<usize>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        seed: 42,
        budget: 200,
        max_secs: None,
        mutate: None,
        approx_trials: None,
        verbose: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--budget" => {
                args.budget = value(i)?.parse().map_err(|e| format!("--budget: {e}"))?;
                i += 2;
            }
            "--max-secs" => {
                args.max_secs = Some(value(i)?.parse().map_err(|e| format!("--max-secs: {e}"))?);
                i += 2;
            }
            "--mutate" => {
                let kind = value(i)?;
                args.mutate =
                    Some(Mutation::parse(kind).ok_or_else(|| {
                        format!("unknown mutation {kind:?} ({})", Mutation::NAMES)
                    })?);
                i += 2;
            }
            "--approx-trials" => {
                args.approx_trials = Some(
                    value(i)?
                        .parse()
                        .map_err(|e| format!("--approx-trials: {e}"))?,
                );
                i += 2;
            }
            "--verbose" => {
                args.verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn report_failure(case: &Case, mismatch: &Mismatch, oracles: &[Box<dyn conformance::Oracle>]) {
    eprintln!("\nFAIL on scenario {}", case.label);
    eprintln!("  {mismatch}");
    eprintln!(
        "  shrinking ({} vertices, {} edges, {} ops)…",
        case.n,
        case.edges.len(),
        case.ops.len()
    );
    let fails = |c: &Case| check_case_with(c, oracles).is_err();
    let minimal = shrink(case, &fails, 8);
    let final_mismatch =
        check_case_with(&minimal, oracles).expect_err("shrunk case must still fail");
    eprintln!(
        "  minimal failing case: {} vertices, {} edges, {} ops, k={}",
        minimal.n,
        minimal.edges.len(),
        minimal.ops.len(),
        minimal.k
    );
    let why = format!(
        "Shrunk from scenario `{}`.\nDivergence: {final_mismatch}",
        case.label
    );
    eprintln!("\npaste this into crates/conformance/tests/ as a regression test:\n");
    eprintln!("{}", minimal.to_test_code(&why));
}

/// SplitMix64 finalizer — decorrelates per-trial sampler seeds.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Repeated-trials δ-check: the statistical contract of the honest
/// sampler may fail with probability at most δ per run. Run it `trials`
/// times with fresh sampler seeds over the scenario pool, count contract
/// violations, and reject only if that count is statistically
/// incompatible with rate δ (one-sided binomial test at α = 10⁻³, i.e.
/// the gate itself false-alarms on an honest sampler less than once per
/// thousand sweeps). Exit codes: 0 consistent, 1 inconsistent.
fn run_approx_trials(args: &Args) -> i32 {
    let trials = args.approx_trials.unwrap();
    const ALPHA: f64 = 1e-3;
    let pool = args.budget.max(1);
    println!(
        "approx repeated-trials δ-check: trials={trials} pool={pool} seed={}",
        args.seed
    );

    // Lazily materialized per-scenario (graph, k, truth) — trials cycle
    // over the pool, so each scenario is built and solved exactly once.
    let mut cache: Vec<Option<(CsrGraph, usize, Vec<f64>)>> = (0..pool).map(|_| None).collect();
    let start = Instant::now();
    let mut failures = 0u64;
    let mut ran = 0u64;
    let mut delta = 0.0f64;
    let mut first_failures: Vec<String> = Vec::new();
    for trial in 0..trials {
        if let Some(limit) = args.max_secs {
            if start.elapsed().as_secs_f64() > limit {
                println!("time budget reached after {ran} trials");
                break;
            }
        }
        let idx = trial % pool;
        if cache[idx].is_none() {
            let case = scenario(args.seed, idx);
            let g = case.final_dyn().to_csr();
            let truth: Vec<f64> = (0..g.n() as VertexId)
                .map(|v| ego_betweenness_reference(&g, v))
                .collect();
            cache[idx] = Some((g, case.k, truth));
        }
        let (g, k, truth) = cache[idx].as_ref().unwrap();

        let strategy = if trial % 2 == 0 {
            SamplingStrategy::Uniform
        } else {
            SamplingStrategy::HubStratified
        };
        let mut params = ApproxOracle {
            strategy,
            deep: true,
        }
        .forced_params();
        params.seed = mix64(args.seed.wrapping_add(trial as u64));
        delta = params.delta;
        if let Err(why) = approx_check(g, *k, &params, ApproxFault::None, truth) {
            failures += 1;
            if first_failures.len() < 3 {
                first_failures.push(format!("trial {trial} (scenario #{idx}): {why}"));
            }
        }
        ran += 1;
        if args.verbose && trial % 100 == 0 {
            println!("  [{trial:>5}] failures so far: {failures}");
        }
    }

    // P[X ≥ failures] if the true violation rate were exactly δ, and the
    // exact Clopper–Pearson upper confidence bound on the observed rate.
    let p_tail = binomial_tail_ge(ran, failures, delta);
    let cp_upper = clopper_pearson_upper(failures, ran, ALPHA);
    println!(
        "trials={ran} failures={failures} promised δ={delta} \
         P[X≥{failures} | δ]={p_tail:.3e} CP{}-upper={cp_upper:.5}",
        1.0 - ALPHA
    );
    for f in &first_failures {
        eprintln!("  δ-event: {f}");
    }
    if p_tail < ALPHA {
        eprintln!(
            "FAIL: {failures}/{ran} contract violations is statistically \
             incompatible with the promised δ={delta} (α={ALPHA})"
        );
        1
    } else {
        println!(
            "PASS: empirical failure rate consistent with δ={delta} in {:.2}s",
            start.elapsed().as_secs_f64()
        );
        0
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: stress [--seed S] [--budget N] [--max-secs T] \
                 [--mutate {}] [--approx-trials N] [--verbose]",
                Mutation::NAMES
            );
            std::process::exit(2);
        }
    };

    if args.approx_trials.is_some() {
        std::process::exit(run_approx_trials(&args));
    }

    let mut oracles = conformance::all_oracles();
    if let Some(kind) = args.mutate {
        eprintln!("note: injecting deliberately broken engine mutant::{kind:?}");
        oracles.push(Box::new(FaultyOracle(kind)));
    }
    println!(
        "conformance stress: seed={} budget={} oracles={}",
        args.seed,
        args.budget,
        oracles.len()
    );
    for oracle in &oracles {
        println!("  - {}", oracle.name());
    }

    let start = Instant::now();
    let mut by_family: BTreeMap<String, usize> = BTreeMap::new();
    let mut with_streams = 0usize;
    let mut ran = 0usize;
    for idx in 0..args.budget {
        if let Some(limit) = args.max_secs {
            if start.elapsed().as_secs_f64() > limit {
                println!("time budget reached after {ran} scenarios");
                break;
            }
        }
        let case = scenario(args.seed, idx);
        if args.verbose {
            println!("  [{idx:>4}] {}", case.label);
        }
        if let Err(mismatch) = check_case_with(&case, &oracles) {
            report_failure(&case, &mismatch, &oracles);
            std::process::exit(1);
        }
        *by_family
            .entry(conformance::FAMILIES[idx % conformance::FAMILIES.len()].to_string())
            .or_default() += 1;
        with_streams += usize::from(!case.ops.is_empty());
        ran += 1;
    }

    let families: Vec<String> = by_family.iter().map(|(f, c)| format!("{f}:{c}")).collect();
    println!(
        "PASS: {ran} scenarios ({} with update streams) × {} oracles in {:.2}s",
        with_streams,
        oracles.len(),
        start.elapsed().as_secs_f64()
    );
    println!("  families: {}", families.join(" "));
}
