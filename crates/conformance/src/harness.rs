//! Running one case through every oracle and reporting the first mismatch.
//!
//! The truth vector comes from [`egobtw_core::naive::ego_betweenness_reference`]
//! — the dead-simple hash-membership evaluation of the ego-network
//! definition, the one implementation in the workspace with no shared
//! machinery (no bitsets, no S-maps, no ordering). Every other path,
//! including `core::naive`'s bitset kernel, is an engine *under test*.
//!
//! Besides score conformance, the harness exercises the graph layer's
//! structural invariants on every case: the initial CSR, the replayed
//! dynamic graph, and the re-frozen CSR are each validated explicitly (in
//! release builds too, where the constructors' `debug_assert`s are
//! compiled out).

use crate::case::Case;
use crate::oracle::{all_oracles, Oracle};
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_dynamic::stream::EdgeOp;
use egobtw_graph::VertexId;

/// A conformance violation: which oracle diverged, and how.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Name of the diverging oracle (or the violated invariant layer).
    pub oracle: String,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Runs `case` through the given oracles. `Ok` means every oracle's
/// answer is tie-aware-equal to the reference truth and every graph
/// invariant held.
pub fn check_case_with(case: &Case, oracles: &[Box<dyn Oracle>]) -> Result<(), Mismatch> {
    let invariant = |layer: &str, r: Result<(), String>| {
        r.map_err(|detail| Mismatch {
            oracle: format!("invariant::{layer}"),
            detail,
        })
    };
    let g0 = case.initial();
    invariant("csr(initial)", g0.validate())?;
    let replayed = case.final_dyn();
    invariant("dyn(replayed)", replayed.validate())?;
    let final_g = replayed.to_csr();
    invariant("csr(final)", final_g.validate())?;

    let truth: Vec<f64> = (0..final_g.n() as VertexId)
        .map(|v| ego_betweenness_reference(&final_g, v))
        .collect();
    for oracle in oracles {
        // Each oracle owns its comparator: exact engines go through the
        // tie-aware equality check, approx engines through the
        // statistical-tolerance tier.
        oracle
            .check(case, &final_g, &truth)
            .map_err(|detail| Mismatch {
                oracle: oracle.name(),
                detail,
            })?;
    }
    Ok(())
}

/// [`check_case_with`] over the full discovered oracle set.
pub fn check_case(case: &Case) -> Result<(), Mismatch> {
    check_case_with(case, &all_oracles())
}

/// Entry point for shrunk regression tests (the code printed by the
/// stress binary calls this). Panics with the mismatch on divergence.
pub fn assert_case(n: usize, edges: &[(VertexId, VertexId)], k: usize, ops: &[EdgeOp]) {
    let case = Case {
        n,
        edges: edges.to_vec(),
        k,
        ops: ops.to_vec(),
        label: "regression".into(),
    };
    if let Err(m) = check_case(&case) {
        panic!("conformance violation: {m}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FaultyOracle, Mutation};

    fn case(n: usize, edges: &[(VertexId, VertexId)], k: usize, ops: Vec<EdgeOp>) -> Case {
        Case {
            n,
            edges: edges.to_vec(),
            k,
            ops,
            label: "unit".into(),
        }
    }

    #[test]
    fn green_on_small_cases() {
        assert_case(0, &[], 0, &[]);
        assert_case(1, &[], 3, &[]);
        assert_case(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], 2, &[]);
        assert_case(
            4,
            &[(0, 1), (1, 2)],
            4,
            &[
                EdgeOp::Insert(2, 3),
                EdgeOp::Insert(0, 3),
                EdgeOp::Delete(1, 2),
            ],
        );
    }

    #[test]
    fn mutant_detected() {
        let c = case(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)], 3, vec![]);
        let oracles: Vec<Box<dyn Oracle>> = vec![Box::new(FaultyOracle(Mutation::TieDrop))];
        let m = check_case_with(&c, &oracles).unwrap_err();
        assert!(m.oracle.contains("TieDrop"));
        assert!(m.detail.contains("expected 3"), "{}", m.detail);
    }

    #[test]
    fn stale_graph_mutant_detected_via_stream() {
        let c = case(
            4,
            &[(0, 1), (0, 2), (0, 3)],
            1,
            vec![EdgeOp::Delete(0, 1), EdgeOp::Delete(0, 2)],
        );
        let oracles: Vec<Box<dyn Oracle>> = vec![Box::new(FaultyOracle(Mutation::StaleGraph))];
        let m = check_case_with(&c, &oracles).unwrap_err();
        assert!(m.oracle.contains("StaleGraph"), "{}", m.oracle);
    }
}
