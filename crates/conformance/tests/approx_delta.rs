//! Repeated-trials δ-check, in-tree edition.
//!
//! The sampler's contract is probabilistic: each run may violate the
//! (ε, δ) guarantee with probability at most δ. A single green run
//! proves nothing about δ, so this test re-runs the honest sampler many
//! times with fresh seeds and asserts the *empirical* failure count is
//! statistically consistent with the promised rate — the same one-sided
//! binomial test (α = 10⁻³) the `stress --approx-trials` CI gate uses,
//! plus an exact Clopper–Pearson sanity bound on the observed rate.

use conformance::{approx_check, scenario, ApproxOracle};
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_core::{binomial_tail_ge, clopper_pearson_upper, ApproxFault, SamplingStrategy};
use egobtw_graph::VertexId;

/// SplitMix64 finalizer — decorrelates per-trial sampler seeds.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[test]
fn empirical_failure_rate_is_consistent_with_delta() {
    const TRIALS: usize = 160;
    const POOL: usize = 40;
    const ALPHA: f64 = 1e-3;

    // Each scenario is built and solved once; trials cycle over the pool
    // with a fresh sampler seed every time.
    let prepared: Vec<_> = (0..POOL)
        .map(|idx| {
            let case = scenario(42, idx);
            let g = case.final_dyn().to_csr();
            let truth: Vec<f64> = (0..g.n() as VertexId)
                .map(|v| ego_betweenness_reference(&g, v))
                .collect();
            (g, case.k, truth)
        })
        .collect();

    let mut failures = 0u64;
    let mut delta = 0.0f64;
    let mut first_failure = None;
    for trial in 0..TRIALS {
        let (g, k, truth) = &prepared[trial % POOL];
        let strategy = if trial % 2 == 0 {
            SamplingStrategy::Uniform
        } else {
            SamplingStrategy::HubStratified
        };
        let mut params = ApproxOracle {
            strategy,
            deep: true,
        }
        .forced_params();
        params.seed = mix64(0xA99_0DE1 + trial as u64);
        delta = params.delta;
        if let Err(why) = approx_check(g, *k, &params, ApproxFault::None, truth) {
            failures += 1;
            first_failure.get_or_insert(format!("trial {trial}: {why}"));
        }
    }

    // P[X ≥ failures] under Binomial(TRIALS, δ): reject only if seeing
    // this many violations from an honest δ-sampler is a < α event.
    let p_tail = binomial_tail_ge(TRIALS as u64, failures, delta);
    assert!(
        p_tail >= ALPHA,
        "{failures}/{TRIALS} contract violations is incompatible with δ={delta} \
         (P[X≥{failures}]={p_tail:.3e}; first: {})",
        first_failure.as_deref().unwrap_or("-")
    );

    // The Clopper–Pearson upper bound must also cohere: whenever the
    // binomial gate accepts, the exact 1−α upper confidence bound on the
    // true rate sits above the promised δ is *not* required — but the
    // bound must always contain the observed rate itself.
    let cp = clopper_pearson_upper(failures, TRIALS as u64, ALPHA);
    assert!(
        cp >= failures as f64 / TRIALS as f64,
        "CP upper bound {cp} fell below the observed rate"
    );
}
