//! The stress gate must catch — and shrink — every planted delta mutant.
//!
//! This is the in-repo mirror of the CI planted-bug checks: for each of
//! the three delta-specific faults, sweep the same seeded scenario space
//! the stress binary uses (seed 42) until the mutant diverges from the
//! reference truth, then run the greedy shrinker on the failing case and
//! assert the minimal case still fails. A mutant that survives the sweep,
//! or a shrink that loses the failure, means the conformance net has a
//! delta-shaped hole.

use conformance::{check_case_with, scenario, shrink, FaultyOracle, Mutation, Oracle};

/// Sweeps seeded scenarios until the mutant is caught, then shrinks.
fn catch_and_shrink(mutation: Mutation) {
    let oracles: Vec<Box<dyn Oracle>> = vec![Box::new(FaultyOracle(mutation))];
    // Same scenario space as `stress --seed 42 --budget 200`, but the
    // sweep stops at the first catch (debug builds run this in tier-1).
    let caught = (0..200).map(|idx| scenario(42, idx)).find_map(|case| {
        check_case_with(&case, &oracles)
            .err()
            .map(|mismatch| (case, mismatch))
    });
    let Some((case, mismatch)) = caught else {
        panic!("{mutation:?} survived 200 scenarios — the net has a hole");
    };
    assert!(
        mismatch.oracle.contains("mutant"),
        "{mutation:?}: unexpected oracle {}",
        mismatch.oracle
    );

    let fails = |c: &conformance::Case| check_case_with(c, &oracles).is_err();
    let minimal = shrink(&case, &fails, 8);
    assert!(fails(&minimal), "{mutation:?}: shrunk case no longer fails");
    assert!(
        minimal.weight() <= case.weight(),
        "{mutation:?}: shrinking grew the case"
    );
}

#[test]
fn stale_pair_on_delete_is_caught_and_shrunk() {
    catch_and_shrink(Mutation::DeltaStalePair);
}

#[test]
fn missed_ego_is_caught_and_shrunk() {
    catch_and_shrink(Mutation::DeltaMissedEgo);
}

#[test]
fn no_recert_is_caught_and_shrunk() {
    catch_and_shrink(Mutation::DeltaNoRecert);
}
