//! Integration tests: a bounded green sweep, and proof that the harness
//! actually catches and shrinks a broken engine (mutation testing the
//! tester). The CI `conformance` job runs the much larger release-mode
//! sweep; this keeps a fast slice of it inside plain `cargo test`.

use conformance::{
    all_oracles, check_case_with, scenario, shrink, Case, FaultyOracle, Mutation, Oracle,
};
use egobtw_dynamic::stream::EdgeOp;

/// 24 scenarios = 3 full family rotations, with all oracles. Debug builds
/// also exercise every `debug_assert` in the graph layer on the way.
#[test]
fn bounded_sweep_is_green() {
    let oracles = all_oracles();
    for idx in 0..24 {
        let case = scenario(42, idx);
        if let Err(m) = check_case_with(&case, &oracles) {
            panic!("scenario {} diverged: {m}", case.label);
        }
    }
}

/// A second seed, so the fixed CI seed can't ossify into the only path
/// that works.
#[test]
fn bounded_sweep_is_green_on_another_seed() {
    let oracles = all_oracles();
    for idx in 0..16 {
        let case = scenario(20260729, idx);
        if let Err(m) = check_case_with(&case, &oracles) {
            panic!("scenario {} diverged: {m}", case.label);
        }
    }
}

/// Every mutation kind must be detected within a small scenario budget,
/// and the shrunk witness must (a) still fail and (b) be small.
#[test]
fn mutants_are_caught_and_shrunk() {
    for kind in [Mutation::TieDrop, Mutation::Bias, Mutation::StaleGraph] {
        let mut oracles: Vec<Box<dyn Oracle>> = vec![Box::new(FaultyOracle(kind))];
        oracles.extend(all_oracles().into_iter().take(1)); // plus one honest engine
        let failing = (0..40)
            .map(|idx| scenario(42, idx))
            .find(|case| check_case_with(case, &oracles).is_err())
            .unwrap_or_else(|| panic!("{kind:?} survived 40 scenarios"));
        let fails = |c: &Case| check_case_with(c, &oracles).is_err();
        let minimal = shrink(&failing, &fails, 8);
        assert!(fails(&minimal), "{kind:?}: shrunk case no longer fails");
        assert!(
            minimal.weight() <= failing.weight(),
            "{kind:?}: shrinking grew the case"
        );
        assert!(
            minimal.n <= 6 && minimal.edges.len() <= 6 && minimal.ops.len() <= 2,
            "{kind:?}: weak shrink: n={} edges={} ops={}",
            minimal.n,
            minimal.edges.len(),
            minimal.ops.len()
        );
        // The printed regression test mentions the entry point verbatim.
        let code = minimal.to_test_code("mutation test");
        assert!(code.contains("conformance::assert_case("));
    }
}

/// Tie classes spanning the k boundary, checked across the *full* oracle
/// set (the core-only variant of this lives in `egobtw-core`'s own test
/// suite; here the parallel and dynamic engines face the same ties).
#[test]
fn tie_boundary_agreement_across_all_oracles() {
    // One big star (hub CB = 21) + four tied medium stars (hub CB = 10):
    // ranks 1..5 share a score, so k = 2, 3, 4 all cut through the tie.
    let mut edges: Vec<(u32, u32)> = (1..8).map(|v| (0, v)).collect();
    let mut base = 8u32;
    for _ in 0..4 {
        edges.extend((1..6).map(|v| (base, base + v)));
        base += 6;
    }
    let n = base as usize;
    for k in [2usize, 3, 4, 5] {
        conformance::assert_case(n, &edges, k, &[]);
    }
    // Same graph under a stream that breaks one tie mid-class.
    conformance::assert_case(n, &edges, 3, &[EdgeOp::Delete(8, 9), EdgeOp::Insert(9, 10)]);
}
