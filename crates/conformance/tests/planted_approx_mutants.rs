//! The statistical tier must catch — and shrink — every planted approx
//! mutant, while passing the honest sampler under identical parameters.
//!
//! This is the in-repo mirror of the CI `approx-*` planted-bug checks:
//! for each of the three sampler faults, sweep the same seeded scenario
//! space the stress binary uses (seed 42) until the mutant violates the
//! statistical contract, then run the greedy shrinker on the failing
//! case and assert the minimal case still fails. The honest-params test
//! pins down attribution: the exact configuration the faulty oracles run
//! under is one an honest sampler sweeps cleanly, so a mutant catch is
//! the fault's doing, not a δ-event of the configuration.

use conformance::{
    check_case_with, scenario, shrink, ApproxOracle, FaultyOracle, Mutation, Oracle,
};
use egobtw_core::SamplingStrategy;

/// Sweeps seeded scenarios until the mutant is caught, then shrinks.
fn catch_and_shrink(mutation: Mutation) {
    let oracles: Vec<Box<dyn Oracle>> = vec![Box::new(FaultyOracle(mutation))];
    let caught = (0..200).map(|idx| scenario(42, idx)).find_map(|case| {
        check_case_with(&case, &oracles)
            .err()
            .map(|mismatch| (case, mismatch))
    });
    let Some((case, mismatch)) = caught else {
        panic!("{mutation:?} survived 200 scenarios — the statistical net has a hole");
    };
    assert!(
        mismatch.oracle.contains("mutant"),
        "{mutation:?}: unexpected oracle {}",
        mismatch.oracle
    );

    let fails = |c: &conformance::Case| check_case_with(c, &oracles).is_err();
    let minimal = shrink(&case, &fails, 8);
    assert!(fails(&minimal), "{mutation:?}: shrunk case no longer fails");
    assert!(
        minimal.weight() <= case.weight(),
        "{mutation:?}: shrinking grew the case"
    );
}

#[test]
fn skip_high_degree_sampler_is_caught_and_shrunk() {
    catch_and_shrink(Mutation::ApproxSkipHub);
}

#[test]
fn missing_variance_term_is_caught_and_shrunk() {
    catch_and_shrink(Mutation::ApproxNoVariance);
}

#[test]
fn confidence_boundary_off_by_one_is_caught_and_shrunk() {
    catch_and_shrink(Mutation::ApproxBoundaryOff);
}

/// The honest sampler, run under the *same* deep forced-sampling
/// parameters the faulty oracles use, passes the full 200-scenario sweep
/// for both strategies — so the three catches above are attributable.
#[test]
fn honest_sampler_passes_under_mutant_parameters() {
    for strategy in [SamplingStrategy::Uniform, SamplingStrategy::HubStratified] {
        let oracles: Vec<Box<dyn Oracle>> = vec![Box::new(ApproxOracle {
            strategy,
            deep: true,
        })];
        for idx in 0..200 {
            let case = scenario(42, idx);
            if let Err(m) = check_case_with(&case, &oracles) {
                panic!(
                    "honest deep {strategy:?} sampler flagged on {}: {m}",
                    case.label
                );
            }
        }
    }
}
