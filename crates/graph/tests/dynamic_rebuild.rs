//! Randomized differential test for the mutable graph: after any seeded
//! sequence of insert/delete/isolate operations, the incremental
//! structure must equal a CSR rebuilt from scratch off an independently
//! maintained edge mirror — edge-for-edge — and pass its own invariant
//! check at every step.

use egobtw_graph::{pack_pair, unpack_pair, CsrGraph, DynGraph, FxHashSet, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rebuilds a CSR from the mirror set and compares adjacency slices.
fn assert_matches_mirror(dg: &DynGraph, mirror: &FxHashSet<u64>, ctx: &str) {
    assert_eq!(dg.validate(), Ok(()), "{ctx}: DynGraph invariants");
    let edges: Vec<(VertexId, VertexId)> = mirror.iter().map(|&k| unpack_pair(k)).collect();
    let fresh = CsrGraph::from_edges(dg.n(), &edges);
    assert_eq!(dg.m(), fresh.m(), "{ctx}: edge count");
    let incremental = dg.to_csr();
    assert_eq!(incremental.n(), fresh.n(), "{ctx}: vertex count");
    for u in fresh.vertices() {
        assert_eq!(
            incremental.neighbors(u),
            fresh.neighbors(u),
            "{ctx}: adjacency of {u}"
        );
    }
}

#[test]
fn random_streams_equal_fresh_rebuild() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xD15C0 + seed);
        let n = 24usize;
        let mut dg = DynGraph::new(n);
        let mut mirror: FxHashSet<u64> = FxHashSet::default();
        for step in 0..600 {
            let u = rng.random_range(0..n as VertexId);
            let v = rng.random_range(0..n as VertexId);
            if u == v {
                // Self-loops must be rejected without corrupting state.
                assert!(!dg.insert_edge(u, v));
                continue;
            }
            if rng.random_bool(0.55) {
                let changed = dg.insert_edge(u, v);
                assert_eq!(changed, mirror.insert(pack_pair(u, v)), "step {step}");
            } else {
                let changed = dg.remove_edge(u, v);
                assert_eq!(changed, mirror.remove(&pack_pair(u, v)), "step {step}");
            }
            if step % 60 == 0 {
                assert_matches_mirror(&dg, &mirror, &format!("seed {seed} step {step}"));
            }
        }
        assert_matches_mirror(&dg, &mirror, &format!("seed {seed} final"));
    }
}

#[test]
fn isolate_vertex_in_random_streams() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 18usize;
    let mut dg = DynGraph::new(n);
    let mut mirror: FxHashSet<u64> = FxHashSet::default();
    for step in 0..300 {
        let u = rng.random_range(0..n as VertexId);
        let v = rng.random_range(0..n as VertexId);
        match rng.random_range(0..10u32) {
            0 => {
                // Occasionally wipe a vertex; mirror does it the slow way.
                let removed = dg.isolate_vertex(u);
                for &w in &removed {
                    assert!(mirror.remove(&pack_pair(u, w)), "step {step}: ({u},{w})");
                }
                assert_eq!(dg.degree(u), 0);
            }
            1..=6 if u != v => {
                assert_eq!(
                    dg.insert_edge(u, v),
                    mirror.insert(pack_pair(u, v)),
                    "step {step}"
                );
            }
            _ if u != v => {
                assert_eq!(
                    dg.remove_edge(u, v),
                    mirror.remove(&pack_pair(u, v)),
                    "step {step}"
                );
            }
            _ => {}
        }
        if step % 30 == 0 {
            assert_matches_mirror(&dg, &mirror, &format!("step {step}"));
        }
    }
    assert_matches_mirror(&dg, &mirror, "final");
}

#[test]
fn grown_graph_round_trips() {
    // add_vertex mid-stream: ids must stay dense and the rebuild aligned.
    let mut dg = DynGraph::new(2);
    let mut mirror: FxHashSet<u64> = FxHashSet::default();
    dg.insert_edge(0, 1);
    mirror.insert(pack_pair(0, 1));
    for _ in 0..5 {
        let v = dg.add_vertex();
        dg.insert_edge(0, v);
        mirror.insert(pack_pair(0, v));
    }
    assert_matches_mirror(&dg, &mirror, "after growth");
}
