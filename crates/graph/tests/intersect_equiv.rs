//! Property tests for the intersection kernel matrix.
//!
//! Every kernel variant — merge, gallop, adaptive slice dispatch at
//! several [`KernelParams`], slice×bitmap, bitmap×bitmap, and the
//! graph-level hybrid dispatcher — must agree with the quadratic
//! reference on seeded random and adversarially skewed inputs, including
//! empty slices, disjoint ranges, and full overlap.

use egobtw_graph::intersect::{
    bitmap_bitmap_intersect_into, bitmap_bitmap_intersection_count, gallop_intersect_into,
    gallop_intersection_count, intersect_into, intersect_into_with, intersection_count,
    intersection_count_with, merge_intersect_into, merge_intersection_count, pack_bitmap,
    slice_bitmap_intersect_into, slice_bitmap_intersection_count, KernelParams,
};
use egobtw_graph::{CsrGraph, HybridConfig, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadratic reference.
fn naive(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    a.iter().filter(|x| b.contains(x)).copied().collect()
}

/// Asserts every kernel variant produces `naive(a, b)` on strictly
/// ascending inputs drawn from `0..universe`.
fn assert_all_kernels_agree(a: &[VertexId], b: &[VertexId], universe: u32) {
    let expect = naive(a, b);
    let n = expect.len();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };

    let mut out = Vec::new();
    merge_intersect_into(a, b, &mut out);
    assert_eq!(out, expect, "merge");
    assert_eq!(merge_intersection_count(a, b), n, "merge count");

    out.clear();
    gallop_intersect_into(short, long, &mut out);
    assert_eq!(out, expect, "gallop");
    assert_eq!(gallop_intersection_count(short, long), n, "gallop count");

    // Adaptive dispatch must be parameter-insensitive.
    for params in [
        KernelParams::new(),
        KernelParams::legacy(),
        KernelParams {
            gallop_ratio: 0,
            ..KernelParams::new()
        },
        KernelParams {
            gallop_ratio: 1,
            ..KernelParams::new()
        },
        KernelParams {
            gallop_ratio: usize::MAX,
            ..KernelParams::new()
        },
    ] {
        out.clear();
        intersect_into_with(a, b, &params, &mut out);
        assert_eq!(out, expect, "adaptive {params:?}");
        assert_eq!(intersection_count_with(a, b, &params), n, "{params:?}");
    }
    out.clear();
    intersect_into(a, b, &mut out);
    assert_eq!(out, expect, "default adaptive");
    assert_eq!(intersection_count(a, b), n, "default adaptive count");

    // Bitmap kernels over the same universe.
    let words = (universe as usize).div_ceil(64).max(1);
    let ba = pack_bitmap(a, words);
    let bb = pack_bitmap(b, words);
    out.clear();
    slice_bitmap_intersect_into(a, &bb, &mut out);
    assert_eq!(out, expect, "slice×bitmap (a probes b)");
    out.clear();
    slice_bitmap_intersect_into(b, &ba, &mut out);
    assert_eq!(out, expect, "slice×bitmap (b probes a)");
    assert_eq!(slice_bitmap_intersection_count(a, &bb), n);
    assert_eq!(slice_bitmap_intersection_count(b, &ba), n);
    out.clear();
    bitmap_bitmap_intersect_into(&ba, &bb, &mut out);
    assert_eq!(out, expect, "bitmap×bitmap");
    assert_eq!(bitmap_bitmap_intersection_count(&ba, &bb), n);
}

/// Random strictly-ascending slice with `len` values from `0..universe`.
fn sorted_vec(rng: &mut StdRng, len: usize, universe: u32) -> Vec<VertexId> {
    let mut s = std::collections::BTreeSet::new();
    for _ in 0..len {
        s.insert(rng.random_range(0..universe));
    }
    s.into_iter().collect()
}

#[test]
fn random_inputs_all_kernels_agree() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..256 {
        let universe = rng.random_range(1..700u32);
        let la = rng.random_range(0..160usize);
        let lb = rng.random_range(0..160usize);
        let a = sorted_vec(&mut rng, la, universe);
        let b = sorted_vec(&mut rng, lb, universe);
        assert_all_kernels_agree(&a, &b, universe);
    }
}

#[test]
fn skewed_inputs_all_kernels_agree() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..64 {
        // Adversarial skew: tiny probe set against a long dense row.
        let universe = 4_096u32;
        let long = sorted_vec(&mut rng, 2_000, universe);
        let short_len = rng.random_range(0..8usize);
        let short = sorted_vec(&mut rng, short_len, universe);
        assert_all_kernels_agree(&short, &long, universe);
        assert_all_kernels_agree(&long, &short, universe);
    }
}

#[test]
fn adversarial_edge_cases() {
    // Empty × empty, empty × non-empty.
    assert_all_kernels_agree(&[], &[], 64);
    assert_all_kernels_agree(&[], &[0, 1, 2, 63], 64);
    assert_all_kernels_agree(&[5], &[], 64);
    // Disjoint ranges (short entirely before / after the long slice).
    let low: Vec<VertexId> = (0..100).collect();
    let high: Vec<VertexId> = (1_000..1_100).collect();
    assert_all_kernels_agree(&low, &high, 1_100);
    assert_all_kernels_agree(&high, &low, 1_100);
    // Interleaved but disjoint (evens vs odds).
    let evens: Vec<VertexId> = (0..200).map(|x| 2 * x).collect();
    let odds: Vec<VertexId> = (0..200).map(|x| 2 * x + 1).collect();
    assert_all_kernels_agree(&evens, &odds, 400);
    // Full overlap, including exact word-boundary lengths.
    for len in [1u32, 63, 64, 65, 128, 257] {
        let full: Vec<VertexId> = (0..len).collect();
        assert_all_kernels_agree(&full, &full, len);
    }
    // Single straddler at each end.
    assert_all_kernels_agree(&[0], &low, 1_100);
    assert_all_kernels_agree(&[99], &low, 1_100);
    assert_all_kernels_agree(&[63], &[63], 64);
}

#[test]
fn hybrid_dispatcher_matches_plain_on_random_graphs() {
    // Graph-level property: for every vertex pair, the hybrid dispatcher
    // (whatever kernel it picks) agrees with the hub-free merge path.
    let mut rng = StdRng::seed_from_u64(0xD15);
    for trial in 0..12 {
        let n = rng.random_range(10..120usize);
        let p = rng.random_range(0.05..0.5);
        let mut edges = Vec::new();
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                if rng.random_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        let plain = CsrGraph::from_edges_with(n, &edges, &HybridConfig::disabled());
        let auto = CsrGraph::from_edges(n, &edges);
        let dense = CsrGraph::from_edges_with(n, &edges, &HybridConfig::dense());
        assert_eq!(dense.validate(), Ok(()));
        let mut want = Vec::new();
        let mut got = Vec::new();
        for u in plain.vertices() {
            for v in plain.vertices() {
                want.clear();
                plain.common_neighbors_into(u, v, &mut want);
                for g in [&auto, &dense] {
                    got.clear();
                    g.common_neighbors_into(u, v, &mut got);
                    assert_eq!(got, want, "trial {trial} pair ({u},{v})");
                    assert_eq!(g.common_neighbor_count(u, v), want.len());
                    assert_eq!(g.has_edge(u, v), plain.has_edge(u, v));
                }
            }
        }
    }
}
