//! Incremental edge-list builder for [`CsrGraph`].

use crate::csr::CsrGraph;
use crate::VertexId;

/// Collects edges (growing the vertex count as needed) and finalizes into
/// a [`CsrGraph`]. Duplicates and self-loops are tolerated and cleaned up
/// at build time.
#[derive(Default, Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder pre-sized for `n` vertices and `m` expected edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Ensures the graph has at least `n` vertices.
    pub fn reserve_vertices(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Records an undirected edge, growing the vertex range to cover it.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.n = self.n.max(u as usize + 1).max(v as usize + 1);
        self.edges.push((u, v));
    }

    /// Number of vertices the built graph will have.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of (raw, possibly duplicated) edges recorded so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a CSR graph.
    pub fn build(self) -> CsrGraph {
        CsrGraph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_vertex_range() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 7);
        b.add_edge(2, 3);
        assert_eq!(b.vertex_count(), 8);
        let g = b.build();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn reserve_creates_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.reserve_vertices(5);
        let g = b.build();
        assert_eq!(g.n(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn cleans_duplicates_at_build() {
        let mut b = GraphBuilder::with_capacity(3, 4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(1, 1);
        assert_eq!(b.raw_edge_count(), 3);
        let g = b.build();
        assert_eq!(g.m(), 1);
    }
}
