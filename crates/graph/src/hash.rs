//! A fast, deterministic Fx-style hasher.
//!
//! The per-vertex pair-count maps are the hottest data structure in the
//! whole system and their keys are packed integers, for which the standard
//! library's SipHash is needlessly slow (see the Rust Performance Book's
//! "Hashing" chapter). The offline dependency allow-list does not include
//! `rustc-hash`, so we implement the same multiply-rotate scheme here: it
//! is a handful of lines, deterministic (no per-process random state, which
//! also makes experiment runs reproducible), and has been battle-tested in
//! rustc itself.
//!
//! Not DoS-resistant — do not expose these maps to untrusted keys.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Streaming hasher state. One `u64` word; each input word is folded in
/// with a rotate-xor-multiply step.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold 8 bytes at a time, then the tail. Called rarely in this
        // workspace (keys are integers), but kept correct for generality.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rem.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            self.add_word(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized and `Default`, so hash maps
/// built with it have no per-instance state and deterministic iteration
/// for a fixed insertion sequence.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` alias using the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` alias using the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(0xdead_beefu64), hash_of(0xdead_beefu64));
        assert_eq!(hash_of((1u32, 2u32)), hash_of((1u32, 2u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a sanity check that low bits move.
        let a = hash_of(1u64);
        let b = hash_of(2u64);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn byte_stream_matches_tail_handling() {
        // 9 bytes exercises both the 8-byte chunk and the remainder path.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        assert_eq!(m.get(&7), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(3);
        assert!(s.contains(&3));
    }
}
