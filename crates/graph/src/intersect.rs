//! Sorted-slice intersection kernels.
//!
//! Common-neighbor queries `N(a) ∩ N(b)` dominate the full-computation and
//! dynamic paths. Two kernels are provided: a linear merge (best when the
//! slices have similar lengths) and a galloping/binary variant (best when
//! one slice is much shorter, as happens constantly on power-law graphs).
//! [`intersect_into`] / [`intersection_count`] pick adaptively.

use crate::VertexId;

/// Length ratio above which galloping beats the linear merge. 16–64 are all
/// reasonable; chosen by the `micro` criterion bench.
const GALLOP_RATIO: usize = 32;

/// Appends `a ∩ b` to `out` (both inputs strictly ascending).
#[inline]
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.len() * GALLOP_RATIO < long.len() {
        gallop_intersect_into(short, long, out);
    } else {
        merge_intersect_into(a, b, out);
    }
}

/// `|a ∩ b|` without materializing the intersection.
#[inline]
pub fn intersection_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.len() * GALLOP_RATIO < long.len() {
        gallop_intersection_count(short, long)
    } else {
        merge_intersection_count(a, b)
    }
}

/// Linear two-pointer merge intersection.
pub fn merge_intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Counting variant of [`merge_intersect_into`].
pub fn merge_intersection_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Exponential (galloping) search for `x` in `hay[from..]`; returns the
/// index of the first element `>= x`.
#[inline]
fn gallop(hay: &[VertexId], from: usize, x: VertexId) -> usize {
    let mut step = 1;
    let mut lo = from;
    let mut hi = from;
    while hi < hay.len() && hay[hi] < x {
        lo = hi;
        hi = (hi + step).min(hay.len());
        step <<= 1;
    }
    lo + hay[lo..hi].partition_point(|&y| y < x)
}

/// Galloping intersection: for each element of the short slice, gallop
/// through the long slice. `O(s · log(l/s))`.
pub fn gallop_intersect_into(short: &[VertexId], long: &[VertexId], out: &mut Vec<VertexId>) {
    let mut from = 0;
    for &x in short {
        let at = gallop(long, from, x);
        if at < long.len() && long[at] == x {
            out.push(x);
            from = at + 1;
        } else {
            from = at;
        }
        if from >= long.len() {
            break;
        }
    }
}

/// Counting variant of [`gallop_intersect_into`].
pub fn gallop_intersection_count(short: &[VertexId], long: &[VertexId]) -> usize {
    let mut from = 0;
    let mut c = 0;
    for &x in short {
        let at = gallop(long, from, x);
        if at < long.len() && long[at] == x {
            c += 1;
            from = at + 1;
        } else {
            from = at;
        }
        if from >= long.len() {
            break;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    #[test]
    fn basic_cases() {
        let mut out = Vec::new();
        intersect_into(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &mut out);
        assert_eq!(out, vec![3, 7]);
        assert_eq!(intersection_count(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 2);
        assert_eq!(intersection_count(&[], &[1, 2]), 0);
        assert_eq!(intersection_count(&[1, 2], &[]), 0);
    }

    #[test]
    fn gallop_skewed() {
        let long: Vec<u32> = (0..10_000).map(|x| x * 3).collect();
        let short = vec![3, 2_997, 29_997, 50_000];
        let mut out = Vec::new();
        gallop_intersect_into(&short, &long, &mut out);
        assert_eq!(out, vec![3, 2_997, 29_997]);
        assert_eq!(gallop_intersection_count(&short, &long), 3);
    }

    /// Random strictly-ascending slice: up to 120 values drawn from 0..500.
    fn sorted_vec(rng: &mut StdRng) -> Vec<u32> {
        let len = rng.random_range(0..120usize);
        let mut s = std::collections::BTreeSet::new();
        for _ in 0..len {
            s.insert(rng.random_range(0..500u32));
        }
        s.into_iter().collect()
    }

    /// Randomized equivalence check (seeded, 512 cases): every kernel must
    /// agree with the quadratic reference on arbitrary sorted inputs.
    #[test]
    fn kernels_agree() {
        let mut rng = StdRng::seed_from_u64(0x1A7E);
        for _ in 0..512 {
            let a = sorted_vec(&mut rng);
            let b = sorted_vec(&mut rng);
            let expect = naive(&a, &b);

            let mut m = Vec::new();
            merge_intersect_into(&a, &b, &mut m);
            assert_eq!(m, expect);

            let (short, long) = if a.len() <= b.len() {
                (&a, &b)
            } else {
                (&b, &a)
            };
            let mut g = Vec::new();
            gallop_intersect_into(short, long, &mut g);
            assert_eq!(g, expect);

            let mut ad = Vec::new();
            intersect_into(&a, &b, &mut ad);
            assert_eq!(ad, expect);

            assert_eq!(merge_intersection_count(&a, &b), expect.len());
            assert_eq!(gallop_intersection_count(short, long), expect.len());
            assert_eq!(intersection_count(&a, &b), expect.len());
        }
    }
}
