//! Intersection kernels: sorted slices and packed bitmaps.
//!
//! Common-neighbor queries `N(a) ∩ N(b)` dominate the full-computation and
//! dynamic paths. Four kernels are provided:
//!
//! * a linear **merge** (best when the slices have similar lengths);
//! * a **galloping**/binary variant (best when one slice is much shorter,
//!   as happens constantly on power-law graphs);
//! * **slice×bitmap**: one membership bit-test per element of the short
//!   slice, when the long side has a packed bitmap row (hub rows in
//!   [`crate::CsrGraph`]'s hybrid adjacency);
//! * **bitmap×bitmap**: word-wise `AND` (+ popcount for counting), when
//!   both sides have rows and the slices are long enough that scanning
//!   `n/64` words beats probing.
//!
//! [`intersect_into`] / [`intersection_count`] pick adaptively between the
//! slice kernels; the bitmap-aware dispatch lives in
//! [`crate::CsrGraph::common_neighbors_into_with`], because only the graph
//! knows which vertices own bitmap rows. All thresholds are carried by
//! [`KernelParams`] so harnesses can pin or sweep them.

use crate::VertexId;

/// Dispatch thresholds for the adaptive intersection kernels.
///
/// The defaults are the values chosen by the `micro` criterion bench;
/// [`KernelParams::legacy`] pins the pre-hybrid behavior (merge/gallop
/// only, as shipped before bitmap rows existed) for baseline timing in
/// `bench/src/bin/perf.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelParams {
    /// Length ratio above which galloping beats the linear merge
    /// (`short · gallop_ratio < long`). 16–64 are all reasonable; see the
    /// `intersection` group of the `micro` bench.
    pub gallop_ratio: usize,
    /// Bitmap×bitmap is chosen over probing the short slice into the long
    /// row when `short_len · bitmap_word_ratio ≥ words_per_row` — i.e. one
    /// 64-bit word op is costed at `1/bitmap_word_ratio` slice probes.
    pub bitmap_word_ratio: usize,
}

impl KernelParams {
    /// The tuned defaults (also what [`Default`] returns; `const` so the
    /// zero-argument entry points stay allocation- and branch-free).
    pub const fn new() -> Self {
        KernelParams {
            gallop_ratio: 32,
            bitmap_word_ratio: 4,
        }
    }

    /// The pre-hybrid kernel behavior: merge/gallop dispatch exactly as it
    /// shipped before bitmap rows existed. Used by the perf harness to
    /// measure speedups against the recorded baseline — pair it with a
    /// bitmap-free graph (`HybridConfig::disabled()`): params steer the
    /// bitmap×bitmap/slice×bitmap choice but cannot disable hub rows a
    /// graph already carries.
    pub const fn legacy() -> Self {
        KernelParams {
            gallop_ratio: 32,
            // `short·ratio ≥ words_per_row` picks bitmap×bitmap, so 0
            // means "never" (rows have ≥ 1 word).
            bitmap_word_ratio: 0,
        }
    }
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams::new()
    }
}

/// Appends `a ∩ b` to `out` (both inputs strictly ascending), picking
/// merge or gallop with the default [`KernelParams`].
#[inline]
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    intersect_into_with(a, b, &KernelParams::new(), out);
}

/// [`intersect_into`] with explicit dispatch thresholds.
#[inline]
pub fn intersect_into_with(
    a: &[VertexId],
    b: &[VertexId],
    params: &KernelParams,
    out: &mut Vec<VertexId>,
) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.len().saturating_mul(params.gallop_ratio) < long.len() {
        gallop_intersect_into(short, long, out);
    } else {
        merge_intersect_into(a, b, out);
    }
}

/// `|a ∩ b|` without materializing the intersection, with the default
/// [`KernelParams`].
#[inline]
pub fn intersection_count(a: &[VertexId], b: &[VertexId]) -> usize {
    intersection_count_with(a, b, &KernelParams::new())
}

/// [`intersection_count`] with explicit dispatch thresholds.
#[inline]
pub fn intersection_count_with(a: &[VertexId], b: &[VertexId], params: &KernelParams) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.len().saturating_mul(params.gallop_ratio) < long.len() {
        gallop_intersection_count(short, long)
    } else {
        merge_intersection_count(a, b)
    }
}

/// Linear two-pointer merge intersection.
pub fn merge_intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Counting variant of [`merge_intersect_into`].
pub fn merge_intersection_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Exponential (galloping) search for `x` in `hay[from..]`; returns the
/// index of the first element `>= x`.
#[inline]
fn gallop(hay: &[VertexId], from: usize, x: VertexId) -> usize {
    let mut step = 1;
    let mut lo = from;
    let mut hi = from;
    while hi < hay.len() && hay[hi] < x {
        lo = hi;
        hi = (hi + step).min(hay.len());
        step <<= 1;
    }
    lo + hay[lo..hi].partition_point(|&y| y < x)
}

/// Galloping intersection: for each element of the short slice, gallop
/// through the long slice. `O(s · log(l/s))`.
pub fn gallop_intersect_into(short: &[VertexId], long: &[VertexId], out: &mut Vec<VertexId>) {
    let mut from = 0;
    for &x in short {
        let at = gallop(long, from, x);
        if at < long.len() && long[at] == x {
            out.push(x);
            from = at + 1;
        } else {
            from = at;
        }
        if from >= long.len() {
            break;
        }
    }
}

/// Counting variant of [`gallop_intersect_into`].
pub fn gallop_intersection_count(short: &[VertexId], long: &[VertexId]) -> usize {
    let mut from = 0;
    let mut c = 0;
    for &x in short {
        let at = gallop(long, from, x);
        if at < long.len() && long[at] == x {
            c += 1;
            from = at + 1;
        } else {
            from = at;
        }
        if from >= long.len() {
            break;
        }
    }
    c
}

/// Appends the elements of `slice` whose bit is set in `words` (a packed
/// bitmap over vertex ids: bit `v` of word `v / 64`). Output order follows
/// `slice`, so an ascending slice yields an ascending intersection. Ids at
/// or beyond `64 · words.len()` are treated as absent.
pub fn slice_bitmap_intersect_into(slice: &[VertexId], words: &[u64], out: &mut Vec<VertexId>) {
    for &x in slice {
        let w = x as usize >> 6;
        if w < words.len() && words[w] & (1u64 << (x & 63)) != 0 {
            out.push(x);
        }
    }
}

/// Counting variant of [`slice_bitmap_intersect_into`].
pub fn slice_bitmap_intersection_count(slice: &[VertexId], words: &[u64]) -> usize {
    slice
        .iter()
        .filter(|&&x| {
            let w = x as usize >> 6;
            w < words.len() && words[w] & (1u64 << (x & 63)) != 0
        })
        .count()
}

/// Appends the set bits of the word-wise `AND` of two equal-universe
/// packed bitmaps, decoded as ascending vertex ids.
pub fn bitmap_bitmap_intersect_into(a: &[u64], b: &[u64], out: &mut Vec<VertexId>) {
    for (i, (&wa, &wb)) in a.iter().zip(b).enumerate() {
        let mut w = wa & wb;
        while w != 0 {
            out.push((i as u32) << 6 | w.trailing_zeros());
            w &= w - 1;
        }
    }
}

/// Counting variant of [`bitmap_bitmap_intersect_into`]: pure `AND` +
/// popcount, no decode.
pub fn bitmap_bitmap_intersection_count(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(&wa, &wb)| (wa & wb).count_ones() as usize)
        .sum()
}

/// Packs a strictly ascending id slice into a bitmap with `words` words
/// (ids `≥ 64 · words` are ignored). Helper for tests and benches; the
/// hybrid graph builds its hub rows directly.
pub fn pack_bitmap(slice: &[VertexId], words: usize) -> Vec<u64> {
    let mut out = vec![0u64; words];
    for &x in slice {
        let w = x as usize >> 6;
        if w < words {
            out[w] |= 1u64 << (x & 63);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    #[test]
    fn basic_cases() {
        let mut out = Vec::new();
        intersect_into(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &mut out);
        assert_eq!(out, vec![3, 7]);
        assert_eq!(intersection_count(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 2);
        assert_eq!(intersection_count(&[], &[1, 2]), 0);
        assert_eq!(intersection_count(&[1, 2], &[]), 0);
    }

    #[test]
    fn gallop_skewed() {
        let long: Vec<u32> = (0..10_000).map(|x| x * 3).collect();
        let short = vec![3, 2_997, 29_997, 50_000];
        let mut out = Vec::new();
        gallop_intersect_into(&short, &long, &mut out);
        assert_eq!(out, vec![3, 2_997, 29_997]);
        assert_eq!(gallop_intersection_count(&short, &long), 3);
    }

    #[test]
    fn bitmap_kernels_basic() {
        let a = [1u32, 3, 64, 127, 128, 300];
        let b = [3u32, 64, 65, 128, 299];
        let words = 6; // universe 0..384
        let ba = pack_bitmap(&a, words);
        let bb = pack_bitmap(&b, words);
        let expect = vec![3u32, 64, 128];

        let mut out = Vec::new();
        slice_bitmap_intersect_into(&a, &bb, &mut out);
        assert_eq!(out, expect);
        out.clear();
        bitmap_bitmap_intersect_into(&ba, &bb, &mut out);
        assert_eq!(out, expect);
        assert_eq!(slice_bitmap_intersection_count(&b, &ba), 3);
        assert_eq!(bitmap_bitmap_intersection_count(&ba, &bb), 3);
        // Ids beyond the bitmap universe are treated as absent.
        assert_eq!(slice_bitmap_intersection_count(&[10_000], &ba), 0);
    }

    #[test]
    fn params_dispatch_matches_fixed_kernels() {
        let a: Vec<u32> = (0..400).map(|x| x * 2).collect();
        let b = vec![4u32, 100, 399, 400];
        let merge_only = KernelParams {
            gallop_ratio: usize::MAX,
            ..KernelParams::new()
        };
        let gallop_always = KernelParams {
            gallop_ratio: 0,
            ..KernelParams::new()
        };
        let mut m = Vec::new();
        intersect_into_with(&a, &b, &merge_only, &mut m);
        let mut g = Vec::new();
        intersect_into_with(&a, &b, &gallop_always, &mut g);
        assert_eq!(m, g);
        assert_eq!(m, vec![4, 100, 400]);
        assert_eq!(intersection_count_with(&a, &b, &merge_only), 3);
        assert_eq!(intersection_count_with(&a, &b, &gallop_always), 3);
        assert_eq!(KernelParams::default(), KernelParams::new());
    }

    /// Random strictly-ascending slice: up to 120 values drawn from 0..500.
    fn sorted_vec(rng: &mut StdRng) -> Vec<u32> {
        let len = rng.random_range(0..120usize);
        let mut s = std::collections::BTreeSet::new();
        for _ in 0..len {
            s.insert(rng.random_range(0..500u32));
        }
        s.into_iter().collect()
    }

    /// Randomized equivalence check (seeded, 512 cases): every kernel must
    /// agree with the quadratic reference on arbitrary sorted inputs.
    #[test]
    fn kernels_agree() {
        let mut rng = StdRng::seed_from_u64(0x1A7E);
        for _ in 0..512 {
            let a = sorted_vec(&mut rng);
            let b = sorted_vec(&mut rng);
            let expect = naive(&a, &b);

            let mut m = Vec::new();
            merge_intersect_into(&a, &b, &mut m);
            assert_eq!(m, expect);

            let (short, long) = if a.len() <= b.len() {
                (&a, &b)
            } else {
                (&b, &a)
            };
            let mut g = Vec::new();
            gallop_intersect_into(short, long, &mut g);
            assert_eq!(g, expect);

            let mut ad = Vec::new();
            intersect_into(&a, &b, &mut ad);
            assert_eq!(ad, expect);

            assert_eq!(merge_intersection_count(&a, &b), expect.len());
            assert_eq!(gallop_intersection_count(short, long), expect.len());
            assert_eq!(intersection_count(&a, &b), expect.len());
        }
    }
}
