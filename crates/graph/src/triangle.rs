//! Oriented triangle enumeration.
//!
//! Using the total order `≺` (see [`crate::order`]), every triangle
//! `{u,v,w}` with `u ≺ v ≺ w` is reported exactly once — when processing
//! its `≺`-minimal corner `u` — as the ordered tuple `(u, v, w)`. This is
//! the classical "forward" algorithm; its `O(α·m)` triangle work underpins
//! Theorem 2's complexity bound and BaseBSearch's completeness argument.

use crate::csr::CsrGraph;
use crate::order::{DegreeOrder, OrientedGraph};
use crate::VertexId;

/// Calls `f(u, v, w)` for every triangle, with `u ≺ v ≺ w`.
///
/// Triangles incident to a vertex `x` are all emitted during the turns of
/// vertices ranked at or before `x` — the property BaseBSearch relies on.
pub fn for_each_triangle<F: FnMut(VertexId, VertexId, VertexId)>(
    og: &OrientedGraph,
    order: &DegreeOrder,
    mut f: F,
) {
    let mut ws: Vec<VertexId> = Vec::new();
    for u in order.iter() {
        for_each_triangle_led_by(og, order, u, &mut ws, &mut f);
    }
}

/// Emits only the triangles whose `≺`-minimal corner is `u`
/// (`f(u, v, w)`, `u ≺ v ≺ w`). `scratch` is a reusable buffer.
#[inline]
pub fn for_each_triangle_led_by<F: FnMut(VertexId, VertexId, VertexId)>(
    og: &OrientedGraph,
    order: &DegreeOrder,
    u: VertexId,
    scratch: &mut Vec<VertexId>,
    f: &mut F,
) {
    let nu = og.out_neighbors(u);
    for &v in nu {
        scratch.clear();
        intersect_rank_sorted(order, nu, og.out_neighbors(v), scratch);
        for &w in scratch.iter() {
            f(u, v, w);
        }
    }
}

/// Two-pointer merge of slices that ascend by rank; the comparison key is
/// the rank, looked up in `order` (a flat array access). Exposed so the
/// search engine can enumerate triangles without closure-borrow gymnastics.
pub fn intersect_rank_sorted(
    order: &DegreeOrder,
    a: &[VertexId],
    b: &[VertexId],
    out: &mut Vec<VertexId>,
) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] == b[j] {
            out.push(a[i]);
            i += 1;
            j += 1;
        } else if order.precedes(a[i], b[j]) {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Total triangle count.
pub fn count_triangles(g: &CsrGraph) -> u64 {
    let order = DegreeOrder::new(g);
    let og = OrientedGraph::new(g, &order);
    let mut c = 0u64;
    for_each_triangle(&og, &order, |_, _, _| c += 1);
    c
}

/// Per-vertex triangle participation counts.
pub fn per_vertex_triangles(g: &CsrGraph) -> Vec<u64> {
    let order = DegreeOrder::new(g);
    let og = OrientedGraph::new(g, &order);
    let mut counts = vec![0u64; g.n()];
    for_each_triangle(&og, &order, |u, v, w| {
        counts[u as usize] += 1;
        counts[v as usize] += 1;
        counts[w as usize] += 1;
    });
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n³) reference count.
    fn brute_count(g: &CsrGraph) -> u64 {
        let n = g.n() as u32;
        let mut c = 0;
        for u in 0..n {
            for v in u + 1..n {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in v + 1..n {
                    if g.has_edge(u, w) && g.has_edge(v, w) {
                        c += 1;
                    }
                }
            }
        }
        c
    }

    #[test]
    fn complete_graph_counts() {
        // K5 has C(5,3) = 10 triangles.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(5, &edges);
        assert_eq!(count_triangles(&g), 10);
        assert_eq!(per_vertex_triangles(&g), vec![6; 5]);
    }

    #[test]
    fn triangle_free() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn each_triangle_once_ordered() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (1, 3), (3, 4)]);
        let order = DegreeOrder::new(&g);
        let og = OrientedGraph::new(&g, &order);
        let mut seen = Vec::new();
        for_each_triangle(&og, &order, |u, v, w| {
            assert!(order.precedes(u, v) && order.precedes(v, w));
            let mut t = [u, v, w];
            t.sort_unstable();
            seen.push(t);
        });
        seen.sort_unstable();
        let dedup_len = {
            let mut s = seen.clone();
            s.dedup();
            s.len()
        };
        assert_eq!(seen.len(), dedup_len, "no duplicates");
        assert_eq!(seen.len() as u64, brute_count(&g));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for n in [8usize, 16, 30] {
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if rng.random_bool(0.3) {
                        edges.push((u, v));
                    }
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            assert_eq!(count_triangles(&g), brute_count(&g), "n={n}");
        }
    }

    #[test]
    fn led_by_covers_all_by_turn() {
        // Completeness property: after processing prefix [0..=i] of the
        // order, all triangles containing order[i] have been emitted.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                if rng.random_bool(0.25) {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(n as usize, &edges);
        let order = DegreeOrder::new(&g);
        let og = OrientedGraph::new(&g, &order);
        let per_vertex = per_vertex_triangles(&g);
        let mut seen_count = vec![0u64; g.n()];
        let mut scratch = Vec::new();
        for u in order.iter() {
            for_each_triangle_led_by(&og, &order, u, &mut scratch, &mut |a, b, c| {
                seen_count[a as usize] += 1;
                seen_count[b as usize] += 1;
                seen_count[c as usize] += 1;
            });
            assert_eq!(
                seen_count[u as usize], per_vertex[u as usize],
                "all triangles at {u} seen by its turn"
            );
        }
    }
}
