//! O(1) edge membership.
//!
//! Diamond counting tests `(x,y) ∈ E` once per diamond candidate — the
//! single hottest predicate in the system. A hash set of packed pair keys
//! answers it in O(1) versus `O(log d)` for CSR binary search; the `ablate`
//! harness quantifies the difference.

use crate::csr::CsrGraph;
use crate::hash::FxHashSet;
use crate::pair::pack_pair;
use crate::VertexId;

/// Hash set of all undirected edges of a graph, keyed by packed pairs.
#[derive(Clone, Debug, Default)]
pub struct EdgeSet {
    set: FxHashSet<u64>,
}

impl EdgeSet {
    /// Builds the set from a CSR graph.
    pub fn from_graph(g: &CsrGraph) -> Self {
        let mut set = FxHashSet::default();
        set.reserve(g.m());
        for (u, v) in g.edges() {
            set.insert(pack_pair(u, v));
        }
        EdgeSet { set }
    }

    /// Empty set with capacity for `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        let mut set = FxHashSet::default();
        set.reserve(m);
        EdgeSet { set }
    }

    /// Membership test (order-insensitive). Self-pairs are never edges.
    #[inline]
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.set.contains(&pack_pair(u, v))
    }

    /// Inserts an edge; returns `false` if it was already present.
    #[inline]
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> bool {
        debug_assert_ne!(u, v);
        self.set.insert(pack_pair(u, v))
    }

    /// Removes an edge; returns `false` if it was absent.
    #[inline]
    pub fn remove(&mut self, u: VertexId, v: VertexId) -> bool {
        self.set.remove(&pack_pair(u, v))
    }

    /// Number of edges in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` if no edges are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_graph_edges() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let es = EdgeSet::from_graph(&g);
        assert_eq!(es.len(), 3);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(es.contains(u, v), g.has_edge(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn insert_remove() {
        let mut es = EdgeSet::with_capacity(4);
        assert!(es.insert(2, 5));
        assert!(!es.insert(5, 2), "order-insensitive duplicate");
        assert!(es.contains(5, 2));
        assert!(es.remove(2, 5));
        assert!(!es.remove(2, 5));
        assert!(es.is_empty());
    }
}
