//! Mutable adjacency structure for the maintenance algorithms.
//!
//! [`DynGraph`] trades the CSR's compactness for O(1) edge insertion,
//! deletion, and membership (hash-set adjacency). The dynamic algorithms
//! (Section IV of the paper) need exactly these three operations plus
//! common-neighbor enumeration.

use crate::csr::CsrGraph;
use crate::hash::FxHashSet;
use crate::VertexId;

/// An undirected simple graph under edge/vertex updates.
#[derive(Clone, Debug, Default)]
pub struct DynGraph {
    adj: Vec<FxHashSet<VertexId>>,
    m: usize,
}

impl DynGraph {
    /// Empty graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        DynGraph {
            adj: vec![FxHashSet::default(); n],
            m: 0,
        }
    }

    /// Copies a static graph into dynamic form.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut dg = DynGraph::new(g.n());
        for u in g.vertices() {
            dg.adj[u as usize] = g.neighbors(u).iter().copied().collect();
        }
        dg.m = g.m();
        dg
    }

    /// Freezes into a static CSR graph.
    pub fn to_csr(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.m);
        for (u, ns) in self.adj.iter().enumerate() {
            for &v in ns {
                if (u as VertexId) < v {
                    edges.push((u as VertexId, v));
                }
            }
        }
        CsrGraph::from_edges(self.n(), &edges)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.adj[u as usize].len()
    }

    /// Edge membership in O(1).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.adj[u as usize].contains(&v)
    }

    /// Neighbor set of `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &FxHashSet<VertexId> {
        &self.adj[u as usize]
    }

    /// Neighbors of `u` as a sorted vector (for deterministic iteration
    /// where float summation order matters, e.g. test oracles).
    pub fn sorted_neighbors(&self, u: VertexId) -> Vec<VertexId> {
        let mut v: Vec<_> = self.adj[u as usize].iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// [`DynGraph::sorted_neighbors`] into a caller-owned buffer (cleared
    /// first), so tight update loops can reuse capacity across calls.
    pub fn sorted_neighbors_into(&self, u: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.adj[u as usize].iter().copied());
        out.sort_unstable();
    }

    /// Appends a new isolated vertex; returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(FxHashSet::default());
        (self.adj.len() - 1) as VertexId
    }

    /// Inserts edge `(u,v)`. Returns `false` (no-op) if it already exists
    /// or is a self-loop.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || self.adj[u as usize].contains(&v) {
            return false;
        }
        self.adj[u as usize].insert(v);
        self.adj[v as usize].insert(u);
        self.m += 1;
        true
    }

    /// Removes edge `(u,v)`. Returns `false` (no-op) if it was absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.adj[u as usize].remove(&v) {
            return false;
        }
        self.adj[v as usize].remove(&u);
        self.m -= 1;
        true
    }

    /// Removes all edges incident to `u` (the paper models vertex deletion
    /// as a series of edge deletions; this performs the series). The vertex
    /// id itself stays valid but isolated. Returns the removed neighbors.
    pub fn isolate_vertex(&mut self, u: VertexId) -> Vec<VertexId> {
        let ns: Vec<VertexId> = self.adj[u as usize].iter().copied().collect();
        for &v in &ns {
            self.adj[v as usize].remove(&u);
        }
        self.m -= ns.len();
        self.adj[u as usize].clear();
        ns
    }

    /// Common neighbors `N(u) ∩ N(v)`, iterating the smaller set. The result
    /// order follows hash iteration; sort if determinism is required.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize]
            .iter()
            .copied()
            .filter(|&w| self.adj[b as usize].contains(&w))
            .collect()
    }

    /// [`DynGraph::common_neighbors`] into a caller-owned buffer (cleared
    /// first). Same hash-order contents; sort if determinism is required.
    pub fn common_neighbors_into(&self, u: VertexId, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        out.extend(
            self.adj[a as usize]
                .iter()
                .copied()
                .filter(|&w| self.adj[b as usize].contains(&w)),
        );
    }

    /// Exhaustively checks the structural invariants the maintenance
    /// algorithms rely on: no self-loops, in-range endpoints, symmetric
    /// adjacency sets, and an edge counter consistent with the degrees.
    ///
    /// Returns a description of the first violation. The conformance
    /// harness runs this after every replayed update stream. Cost `O(m)`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        let mut degree_sum = 0usize;
        for (u, ns) in self.adj.iter().enumerate() {
            degree_sum += ns.len();
            for &v in ns {
                if v as usize >= n {
                    return Err(format!("neighbor {v} of {u} out of range (n={n})"));
                }
                if v as usize == u {
                    return Err(format!("self-loop at {u}"));
                }
                if !self.adj[v as usize].contains(&(u as VertexId)) {
                    return Err(format!("asymmetric edge: {v} ∈ N({u}) but {u} ∉ N({v})"));
                }
            }
        }
        if !degree_sum.is_multiple_of(2) {
            return Err(format!("odd total degree {degree_sum}"));
        }
        if degree_sum / 2 != self.m {
            return Err(format!(
                "edge counter {} disagrees with degrees ({} / 2)",
                self.m, degree_sum
            ));
        }
        Ok(())
    }

    /// `|N(u) ∩ N(v)|`.
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize]
            .iter()
            .filter(|w| self.adj[b as usize].contains(w))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = DynGraph::new(4);
        assert!(g.insert_edge(0, 1));
        assert!(!g.insert_edge(1, 0), "duplicate rejected");
        assert!(!g.insert_edge(2, 2), "self-loop rejected");
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn csr_roundtrip() {
        let g0 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let dg = DynGraph::from_csr(&g0);
        assert_eq!(dg.m(), g0.m());
        let g1 = dg.to_csr();
        assert_eq!(g1.n(), g0.n());
        assert_eq!(g1.m(), g0.m());
        for u in g0.vertices() {
            assert_eq!(g1.neighbors(u), g0.neighbors(u));
        }
    }

    #[test]
    fn common_neighbors_correct() {
        let mut g = DynGraph::new(6);
        for &(u, v) in &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 5)] {
            g.insert_edge(u, v);
        }
        let mut cn = g.common_neighbors(0, 1);
        cn.sort_unstable();
        assert_eq!(cn, vec![2, 3]);
        assert_eq!(g.common_neighbor_count(0, 1), 2);
        assert_eq!(g.common_neighbor_count(4, 5), 0);
    }

    #[test]
    fn isolate_vertex_removes_all() {
        let mut g = DynGraph::new(4);
        g.insert_edge(0, 1);
        g.insert_edge(0, 2);
        g.insert_edge(1, 2);
        let mut removed = g.isolate_vertex(0);
        removed.sort_unstable();
        assert_eq!(removed, vec![1, 2]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 0);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn add_vertex_extends_range() {
        let mut g = DynGraph::new(1);
        let v = g.add_vertex();
        assert_eq!(v, 1);
        assert!(g.insert_edge(0, 1));
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn validate_tracks_mutations() {
        let mut g = DynGraph::new(5);
        assert_eq!(g.validate(), Ok(()));
        g.insert_edge(0, 1);
        g.insert_edge(1, 2);
        g.insert_edge(3, 4);
        assert_eq!(g.validate(), Ok(()));
        g.remove_edge(1, 2);
        g.isolate_vertex(0);
        assert_eq!(g.validate(), Ok(()));
        // Corrupt it: one-sided edge plus a stale counter.
        g.adj[2].insert(4);
        assert!(g.validate().unwrap_err().contains("asymmetric"));
        g.adj[4].insert(2);
        assert!(g.validate().unwrap_err().contains("edge counter"));
        g.m += 1;
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn sorted_neighbors_deterministic() {
        let mut g = DynGraph::new(5);
        for v in [4u32, 1, 3, 2] {
            g.insert_edge(0, v);
        }
        assert_eq!(g.sorted_neighbors(0), vec![1, 2, 3, 4]);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let mut g = DynGraph::new(7);
        for &(u, v) in &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 5), (0, 6)] {
            g.insert_edge(u, v);
        }
        // Reused buffer starts dirty to prove it is cleared.
        let mut buf = vec![99u32; 4];
        g.sorted_neighbors_into(0, &mut buf);
        assert_eq!(buf, g.sorted_neighbors(0));
        g.common_neighbors_into(0, 1, &mut buf);
        buf.sort_unstable();
        let mut direct = g.common_neighbors(0, 1);
        direct.sort_unstable();
        assert_eq!(buf, direct);
        assert_eq!(buf, vec![2, 3]);
        // Empty intersection clears the buffer too.
        g.common_neighbors_into(4, 5, &mut buf);
        assert!(buf.is_empty());
    }
}
