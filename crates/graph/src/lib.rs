//! Graph substrate for the ego-betweenness toolkit.
//!
//! This crate provides everything the search, maintenance, and parallel
//! algorithms need from a graph library, built from scratch:
//!
//! * [`CsrGraph`] — an immutable, cache-friendly compressed-sparse-row
//!   graph with sorted adjacency slices;
//! * [`GraphBuilder`] — edge-list ingestion with deduplication and
//!   self-loop removal;
//! * [`DegreeOrder`] / [`OrientedGraph`] — the paper's total order `≺`
//!   (degree descending, id descending on ties) and the acyclic edge
//!   orientation derived from it;
//! * [`Relabeling`] — the degree-descending vertex renaming derived from
//!   `≺`, applied to a graph up front so hot loops see hubs as small ids,
//!   with inverse maps to restore results to original ids;
//! * [`triangle`] — oriented triangle enumeration (each triangle visited
//!   exactly once, at its `≺`-minimal vertex);
//! * [`DynGraph`] — a mutable adjacency structure for the dynamic
//!   maintenance algorithms;
//! * [`EdgeSet`] — O(1) edge membership via packed pair keys;
//! * [`io`] — SNAP-style edge-list reading and writing;
//! * [`hash`] / [`pair`] — a fast Fx-style hasher and packed `(u,v)`
//!   pair keys used pervasively by the hot per-vertex maps.
//!
//! Vertices are dense `u32` identifiers in `0..n`, following the
//! small-integer-id idiom for compact adjacency storage.

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod dynamic;
pub mod edgeset;
pub mod hash;
pub mod intersect;
pub mod io;
pub mod order;
pub mod pair;
pub mod triangle;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, HybridConfig};
pub use dynamic::DynGraph;
pub use edgeset::EdgeSet;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use intersect::KernelParams;
pub use order::{DegreeOrder, OrientedGraph, Relabeling};
pub use pair::{pack_pair, unpack_pair};

/// Dense vertex identifier. All graphs in this workspace index vertices as
/// `0..n`, which keeps adjacency arrays compact and lets per-vertex state
/// live in flat `Vec`s instead of maps.
pub type VertexId = u32;
