//! Packed unordered vertex-pair keys.
//!
//! The per-vertex maps `S_u` and the global edge set are keyed by
//! *unordered* pairs of `u32` vertices. Packing the canonical
//! `(min, max)` pair into a single `u64` gives a one-word key that the
//! Fx hasher digests in a single multiply — much cheaper than hashing a
//! two-field tuple — and halves the key storage.

use crate::VertexId;

/// Packs an unordered pair into a canonical `u64` key
/// (smaller id in the high 32 bits).
///
/// `pack_pair(u, v) == pack_pair(v, u)` for all `u != v`.
#[inline]
pub fn pack_pair(u: VertexId, v: VertexId) -> u64 {
    debug_assert_ne!(u, v, "pair keys are for distinct vertices");
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    (u64::from(lo) << 32) | u64::from(hi)
}

/// Inverse of [`pack_pair`]: returns `(min, max)`.
#[inline]
pub fn unpack_pair(key: u64) -> (VertexId, VertexId) {
    ((key >> 32) as VertexId, key as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn symmetric_and_canonical() {
        assert_eq!(pack_pair(3, 9), pack_pair(9, 3));
        assert_eq!(unpack_pair(pack_pair(9, 3)), (3, 9));
    }

    /// Randomized (seeded) check that packing round-trips and is symmetric.
    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(0xBA1);
        for _ in 0..4_096 {
            let u = rng.random_range(0..1_000_000u32);
            let v = rng.random_range(0..1_000_000u32);
            if u == v {
                continue;
            }
            let (lo, hi) = unpack_pair(pack_pair(u, v));
            assert_eq!((lo, hi), (u.min(v), u.max(v)));
            assert_eq!(pack_pair(u, v), pack_pair(v, u));
        }
    }

    /// Randomized (seeded) check that distinct unordered pairs map to
    /// distinct keys and equal pairs to equal keys.
    #[test]
    fn injective() {
        let mut rng = StdRng::seed_from_u64(0xBA2);
        for _ in 0..4_096 {
            let a = rng.random_range(0..10_000u32);
            let b = rng.random_range(0..10_000u32);
            let c = rng.random_range(0..10_000u32);
            let d = rng.random_range(0..10_000u32);
            if a == b || c == d {
                continue;
            }
            let same_pair = (a.min(b), a.max(b)) == (c.min(d), c.max(d));
            assert_eq!(pack_pair(a, b) == pack_pair(c, d), same_pair);
        }
    }
}
