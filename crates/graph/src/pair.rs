//! Packed unordered vertex-pair keys.
//!
//! The per-vertex maps `S_u` and the global edge set are keyed by
//! *unordered* pairs of `u32` vertices. Packing the canonical
//! `(min, max)` pair into a single `u64` gives a one-word key that the
//! Fx hasher digests in a single multiply — much cheaper than hashing a
//! two-field tuple — and halves the key storage.

use crate::VertexId;

/// Packs an unordered pair into a canonical `u64` key
/// (smaller id in the high 32 bits).
///
/// `pack_pair(u, v) == pack_pair(v, u)` for all `u != v`.
#[inline]
pub fn pack_pair(u: VertexId, v: VertexId) -> u64 {
    debug_assert_ne!(u, v, "pair keys are for distinct vertices");
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    (u64::from(lo) << 32) | u64::from(hi)
}

/// Inverse of [`pack_pair`]: returns `(min, max)`.
#[inline]
pub fn unpack_pair(key: u64) -> (VertexId, VertexId) {
    ((key >> 32) as VertexId, key as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn symmetric_and_canonical() {
        assert_eq!(pack_pair(3, 9), pack_pair(9, 3));
        assert_eq!(unpack_pair(pack_pair(9, 3)), (3, 9));
    }

    proptest! {
        #[test]
        fn roundtrip(u in 0u32..1_000_000, v in 0u32..1_000_000) {
            prop_assume!(u != v);
            let (lo, hi) = unpack_pair(pack_pair(u, v));
            prop_assert_eq!((lo, hi), (u.min(v), u.max(v)));
            prop_assert_eq!(pack_pair(u, v), pack_pair(v, u));
        }

        #[test]
        fn injective(a in 0u32..10_000, b in 0u32..10_000,
                     c in 0u32..10_000, d in 0u32..10_000) {
            prop_assume!(a != b && c != d);
            let same_pair = (a.min(b), a.max(b)) == (c.min(d), c.max(d));
            prop_assert_eq!(pack_pair(a, b) == pack_pair(c, d), same_pair);
        }
    }
}
