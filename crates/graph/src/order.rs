//! The paper's total order `≺` and the edge orientation it induces.
//!
//! Definition (Section II): `u ≺ v` iff `d(u) > d(v)`, or `d(u) = d(v)`
//! and `u` has a **larger id** than `v`. Orienting every undirected edge
//! from its `≺`-smaller endpoint to its `≺`-larger endpoint yields an
//! acyclic graph `G⁺` whose out-degrees are bounded by `O(α)`-ish terms on
//! real graphs; enumerating triangles on `G⁺` visits each triangle exactly
//! once, at its `≺`-minimal (highest-degree) corner. BaseBSearch leans on
//! exactly this property: once vertex `u`'s turn in the order arrives, all
//! triangles containing `u` have been seen.

use crate::csr::CsrGraph;
use crate::VertexId;

/// Precomputed total order `≺` over the vertices of one graph.
#[derive(Clone, Debug)]
pub struct DegreeOrder {
    /// `rank[v]` = position of `v` in the order (0 = first = highest degree).
    rank: Box<[u32]>,
    /// `order[i]` = the vertex at position `i`.
    order: Box<[VertexId]>,
}

impl DegreeOrder {
    /// Computes the order for `g`.
    pub fn new(g: &CsrGraph) -> Self {
        let mut order: Vec<VertexId> = (0..g.n() as VertexId).collect();
        // Degree descending; larger id first on ties (paper's tiebreak).
        order.sort_unstable_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then_with(|| b.cmp(&a)));
        let mut rank = vec![0u32; g.n()];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        DegreeOrder {
            rank: rank.into_boxed_slice(),
            order: order.into_boxed_slice(),
        }
    }

    /// `true` iff `u ≺ v` (`u` comes earlier: higher degree / larger id).
    #[inline]
    pub fn precedes(&self, u: VertexId, v: VertexId) -> bool {
        self.rank[u as usize] < self.rank[v as usize]
    }

    /// Position of `v` in the order.
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v as usize]
    }

    /// Vertices in `≺` order (non-increasing degree).
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.order.iter().copied()
    }

    /// The vertex at position `i`.
    #[inline]
    pub fn at(&self, i: usize) -> VertexId {
        self.order[i]
    }
}

/// The oriented graph `G⁺`: for each vertex, its out-neighbors
/// `N⁺(u) = { v ∈ N(u) : u ≺ v }`, stored sorted by rank so that
/// `N⁺(u) ∩ N⁺(v)` is a sorted-merge away.
#[derive(Clone, Debug)]
pub struct OrientedGraph {
    offsets: Box<[usize]>,
    /// Out-neighbors, each list ascending by rank.
    adj: Box<[VertexId]>,
}

impl OrientedGraph {
    /// Orients `g` according to `order`.
    pub fn new(g: &CsrGraph, order: &DegreeOrder) -> Self {
        let n = g.n();
        let mut out_deg = vec![0usize; n];
        for u in g.vertices() {
            out_deg[u as usize] = g
                .neighbors(u)
                .iter()
                .filter(|&&v| order.precedes(u, v))
                .count();
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for &d in &out_deg {
            acc += d;
            offsets.push(acc);
        }
        let mut adj = vec![0 as VertexId; acc];
        for u in g.vertices() {
            let slot = &mut adj[offsets[u as usize]..offsets[u as usize + 1]];
            let mut i = 0;
            for &v in g.neighbors(u) {
                if order.precedes(u, v) {
                    slot[i] = v;
                    i += 1;
                }
            }
            slot.sort_unstable_by_key(|&v| order.rank(v));
        }
        OrientedGraph {
            offsets: offsets.into_boxed_slice(),
            adj: adj.into_boxed_slice(),
        }
    }

    /// Out-neighbors of `u`, ascending by rank.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Total number of directed edges (equals `m` of the source graph).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_edge() -> CsrGraph {
        // 0 is the hub of a 4-star; extra edge (1,2).
        CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])
    }

    #[test]
    fn order_is_degree_desc_then_id_desc() {
        let g = star_plus_edge();
        let ord = DegreeOrder::new(&g);
        // degrees: 0:4, 1:2, 2:2, 3:1, 4:1 → order 0, 2, 1, 4, 3
        let seq: Vec<_> = ord.iter().collect();
        assert_eq!(seq, vec![0, 2, 1, 4, 3]);
        assert!(ord.precedes(0, 1));
        assert!(ord.precedes(2, 1), "tie broken toward larger id");
        assert!(ord.precedes(4, 3));
        assert!(!ord.precedes(3, 4));
        assert_eq!(ord.at(0), 0);
        assert_eq!(ord.rank(3), 4);
    }

    #[test]
    fn orientation_is_total_and_acyclic() {
        let g = star_plus_edge();
        let ord = DegreeOrder::new(&g);
        let og = OrientedGraph::new(&g, &ord);
        assert_eq!(og.edge_count(), g.m());
        for u in g.vertices() {
            for &v in og.out_neighbors(u) {
                assert!(ord.precedes(u, v), "edges point down the order");
            }
        }
        // Each undirected edge appears exactly once across all out-lists.
        let directed: usize = g.vertices().map(|u| og.out_degree(u)).sum();
        assert_eq!(directed, g.m());
    }

    #[test]
    fn out_lists_sorted_by_rank() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (2, 3),
            ],
        );
        let ord = DegreeOrder::new(&g);
        let og = OrientedGraph::new(&g, &ord);
        for u in g.vertices() {
            let ranks: Vec<_> = og.out_neighbors(u).iter().map(|&v| ord.rank(v)).collect();
            assert!(ranks.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn regular_graph_tiebreaks_consistently() {
        // 4-cycle: all degree 2; order must be ids descending.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let ord = DegreeOrder::new(&g);
        let seq: Vec<_> = ord.iter().collect();
        assert_eq!(seq, vec![3, 2, 1, 0]);
    }
}
