//! The paper's total order `≺` and the edge orientation it induces.
//!
//! Definition (Section II): `u ≺ v` iff `d(u) > d(v)`, or `d(u) = d(v)`
//! and `u` has a **larger id** than `v`. Orienting every undirected edge
//! from its `≺`-smaller endpoint to its `≺`-larger endpoint yields an
//! acyclic graph `G⁺` whose out-degrees are bounded by `O(α)`-ish terms on
//! real graphs; enumerating triangles on `G⁺` visits each triangle exactly
//! once, at its `≺`-minimal (highest-degree) corner. BaseBSearch leans on
//! exactly this property: once vertex `u`'s turn in the order arrives, all
//! triangles containing `u` have been seen.

use crate::csr::CsrGraph;
use crate::VertexId;

/// Precomputed total order `≺` over the vertices of one graph.
#[derive(Clone, Debug)]
pub struct DegreeOrder {
    /// `rank[v]` = position of `v` in the order (0 = first = highest degree).
    rank: Box<[u32]>,
    /// `order[i]` = the vertex at position `i`.
    order: Box<[VertexId]>,
}

impl DegreeOrder {
    /// Computes the order for `g`.
    pub fn new(g: &CsrGraph) -> Self {
        let mut order: Vec<VertexId> = (0..g.n() as VertexId).collect();
        // Degree descending; larger id first on ties (paper's tiebreak).
        order.sort_unstable_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then_with(|| b.cmp(&a)));
        let mut rank = vec![0u32; g.n()];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        DegreeOrder {
            rank: rank.into_boxed_slice(),
            order: order.into_boxed_slice(),
        }
    }

    /// `true` iff `u ≺ v` (`u` comes earlier: higher degree / larger id).
    #[inline]
    pub fn precedes(&self, u: VertexId, v: VertexId) -> bool {
        self.rank[u as usize] < self.rank[v as usize]
    }

    /// Position of `v` in the order.
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v as usize]
    }

    /// Vertices in `≺` order (non-increasing degree).
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.order.iter().copied()
    }

    /// The vertex at position `i`.
    #[inline]
    pub fn at(&self, i: usize) -> VertexId {
        self.order[i]
    }
}

/// A vertex renaming that sorts the id space by the total order `≺`
/// (degree descending, larger original id first on ties): new id `0` is
/// the highest-degree vertex.
///
/// Relabeling a graph this way puts the hot hub rows at the front of the
/// CSR arena (cache locality for the rows every intersection rescans),
/// makes `CsrGraph::edges`' `u < v` ownership put each edge on its
/// *higher*-degree endpoint — so `compute_all`-style owner loops iterate
/// the shorter side per edge — and keeps small new ids exactly where the
/// hub-bitmap layer spends its budget. Engines run on the relabeled twin
/// and inverse-map results back via [`Relabeling::restore_scores`] /
/// [`Relabeling::restore_topk`].
#[derive(Clone, Debug)]
pub struct Relabeling {
    /// `new_of_old[old] = new`.
    new_of_old: Box<[VertexId]>,
    /// `old_of_new[new] = old`.
    old_of_new: Box<[VertexId]>,
}

impl Relabeling {
    /// Computes the degree-descending relabeling of `g`.
    pub fn degree_descending(g: &CsrGraph) -> Self {
        let order = DegreeOrder::new(g);
        let old_of_new: Box<[VertexId]> = order.iter().collect();
        let mut new_of_old = vec![0 as VertexId; g.n()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old as usize] = new as VertexId;
        }
        Relabeling {
            new_of_old: new_of_old.into_boxed_slice(),
            old_of_new,
        }
    }

    /// Number of vertices in the renamed universe.
    #[inline]
    pub fn n(&self) -> usize {
        self.new_of_old.len()
    }

    /// The new id of original vertex `old`.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.new_of_old[old as usize]
    }

    /// The original id of renamed vertex `new`.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.old_of_new[new as usize]
    }

    /// The relabeled twin of `g` (hub bitmaps auto-chosen as in
    /// [`CsrGraph::from_edges`]). `g` must be the graph (or an
    /// isomorphic twin) this relabeling was computed from.
    pub fn apply(&self, g: &CsrGraph) -> CsrGraph {
        assert_eq!(g.n(), self.n(), "relabeling size mismatch");
        let edges: Vec<(VertexId, VertexId)> = g
            .edges()
            .map(|(u, v)| (self.to_new(u), self.to_new(v)))
            .collect();
        CsrGraph::from_edges(self.n(), &edges)
    }

    /// Maps a per-vertex score vector computed on the relabeled twin back
    /// to original vertex indexing.
    pub fn restore_scores(&self, new_scores: &[f64]) -> Vec<f64> {
        assert_eq!(new_scores.len(), self.n(), "score vector size mismatch");
        (0..self.n())
            .map(|old| new_scores[self.new_of_old[old] as usize])
            .collect()
    }

    /// Maps top-k entries computed on the relabeled twin back to original
    /// ids, restoring the engines' ordering contract (descending score,
    /// ascending original id among exact float ties).
    pub fn restore_topk(&self, mut entries: Vec<(VertexId, f64)>) -> Vec<(VertexId, f64)> {
        for e in entries.iter_mut() {
            e.0 = self.to_old(e.0);
        }
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        entries
    }
}

/// The oriented graph `G⁺`: for each vertex, its out-neighbors
/// `N⁺(u) = { v ∈ N(u) : u ≺ v }`, stored sorted by rank so that
/// `N⁺(u) ∩ N⁺(v)` is a sorted-merge away.
#[derive(Clone, Debug)]
pub struct OrientedGraph {
    offsets: Box<[usize]>,
    /// Out-neighbors, each list ascending by rank.
    adj: Box<[VertexId]>,
}

impl OrientedGraph {
    /// Orients `g` according to `order`.
    pub fn new(g: &CsrGraph, order: &DegreeOrder) -> Self {
        let n = g.n();
        let mut out_deg = vec![0usize; n];
        for u in g.vertices() {
            out_deg[u as usize] = g
                .neighbors(u)
                .iter()
                .filter(|&&v| order.precedes(u, v))
                .count();
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for &d in &out_deg {
            acc += d;
            offsets.push(acc);
        }
        let mut adj = vec![0 as VertexId; acc];
        for u in g.vertices() {
            let slot = &mut adj[offsets[u as usize]..offsets[u as usize + 1]];
            let mut i = 0;
            for &v in g.neighbors(u) {
                if order.precedes(u, v) {
                    slot[i] = v;
                    i += 1;
                }
            }
            slot.sort_unstable_by_key(|&v| order.rank(v));
        }
        OrientedGraph {
            offsets: offsets.into_boxed_slice(),
            adj: adj.into_boxed_slice(),
        }
    }

    /// Out-neighbors of `u`, ascending by rank.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Total number of directed edges (equals `m` of the source graph).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_edge() -> CsrGraph {
        // 0 is the hub of a 4-star; extra edge (1,2).
        CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])
    }

    #[test]
    fn order_is_degree_desc_then_id_desc() {
        let g = star_plus_edge();
        let ord = DegreeOrder::new(&g);
        // degrees: 0:4, 1:2, 2:2, 3:1, 4:1 → order 0, 2, 1, 4, 3
        let seq: Vec<_> = ord.iter().collect();
        assert_eq!(seq, vec![0, 2, 1, 4, 3]);
        assert!(ord.precedes(0, 1));
        assert!(ord.precedes(2, 1), "tie broken toward larger id");
        assert!(ord.precedes(4, 3));
        assert!(!ord.precedes(3, 4));
        assert_eq!(ord.at(0), 0);
        assert_eq!(ord.rank(3), 4);
    }

    #[test]
    fn orientation_is_total_and_acyclic() {
        let g = star_plus_edge();
        let ord = DegreeOrder::new(&g);
        let og = OrientedGraph::new(&g, &ord);
        assert_eq!(og.edge_count(), g.m());
        for u in g.vertices() {
            for &v in og.out_neighbors(u) {
                assert!(ord.precedes(u, v), "edges point down the order");
            }
        }
        // Each undirected edge appears exactly once across all out-lists.
        let directed: usize = g.vertices().map(|u| og.out_degree(u)).sum();
        assert_eq!(directed, g.m());
    }

    #[test]
    fn out_lists_sorted_by_rank() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (2, 3),
            ],
        );
        let ord = DegreeOrder::new(&g);
        let og = OrientedGraph::new(&g, &ord);
        for u in g.vertices() {
            let ranks: Vec<_> = og.out_neighbors(u).iter().map(|&v| ord.rank(v)).collect();
            assert!(ranks.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn relabel_roundtrip_and_isomorphism() {
        let g = star_plus_edge();
        let relab = Relabeling::degree_descending(&g);
        // Order is 0, 2, 1, 4, 3 → new ids follow it.
        assert_eq!(relab.to_new(0), 0);
        assert_eq!(relab.to_new(2), 1);
        assert_eq!(relab.to_new(1), 2);
        for v in 0..5u32 {
            assert_eq!(relab.to_old(relab.to_new(v)), v);
        }
        let rg = relab.apply(&g);
        assert_eq!(rg.n(), g.n());
        assert_eq!(rg.m(), g.m());
        // Isomorphism: edges map exactly, degrees are non-increasing.
        for (u, v) in g.edges() {
            assert!(rg.has_edge(relab.to_new(u), relab.to_new(v)));
        }
        let degs: Vec<usize> = rg.vertices().map(|v| rg.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degree descending");
    }

    #[test]
    fn relabel_restores_scores_and_topk() {
        let g = star_plus_edge();
        let relab = Relabeling::degree_descending(&g);
        // Scores indexed by new id = 10 * old id.
        let new_scores: Vec<f64> = (0..5).map(|new| 10.0 * relab.to_old(new) as f64).collect();
        let old_scores = relab.restore_scores(&new_scores);
        assert_eq!(old_scores, vec![0.0, 10.0, 20.0, 30.0, 40.0]);
        // Top-k entries map back and re-sort with the id tiebreak.
        let restored = relab.restore_topk(vec![(relab.to_new(3), 5.0), (relab.to_new(1), 5.0)]);
        assert_eq!(restored, vec![(1, 5.0), (3, 5.0)]);
    }

    #[test]
    fn relabel_empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let relab = Relabeling::degree_descending(&g);
        assert_eq!(relab.n(), 0);
        assert_eq!(relab.apply(&g).n(), 0);
        assert!(relab.restore_scores(&[]).is_empty());
        assert!(relab.restore_topk(Vec::new()).is_empty());
    }

    #[test]
    fn regular_graph_tiebreaks_consistently() {
        // 4-cycle: all degree 2; order must be ids descending.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let ord = DegreeOrder::new(&g);
        let seq: Vec<_> = ord.iter().collect();
        assert_eq!(seq, vec![3, 2, 1, 0]);
    }
}
