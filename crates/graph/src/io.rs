//! Graph I/O: SNAP-style text edge lists and versioned binary snapshots.
//!
//! The paper's datasets come from `snap.stanford.edu` as whitespace-
//! separated edge lists with `#` comment lines. [`read_edge_list`] accepts
//! that format (also `%` comments, as used by KONECT), relabels arbitrary
//! non-negative integer ids to a dense `0..n` range, and returns a
//! [`CsrGraph`]. Buffered reading with a reused line buffer keeps the
//! loader allocation-free per line (perf-book "Reading Lines from a File").
//!
//! [`write_snapshot`] / [`read_snapshot`] are the binary counterpart used
//! by the query service's graph catalog: a little-endian frame with a
//! magic + version + checksum header, the canonical `u < v` edge list,
//! and (optionally) the original vertex labels, so a dataset loaded from
//! a relabeled SNAP dump round-trips without re-parsing text.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::hash::FxHashMap;
use crate::VertexId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the edge-list parser and the snapshot codec.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A non-comment line did not contain two integer tokens.
    Parse {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// The offending line, verbatim.
        line: String,
    },
    /// A binary snapshot failed structural validation (bad magic,
    /// unsupported version, checksum mismatch, or inconsistent payload).
    Snapshot(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line_no, line } => {
                write!(f, "cannot parse edge on line {line_no}: {line:?}")
            }
            IoError::Snapshot(reason) => write!(f, "bad snapshot: {reason}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a SNAP-style edge list from any reader, relabeling ids densely in
/// first-seen order. Returns the graph and the original ids of each vertex
/// (`labels[new_id] = original_id`).
pub fn read_edge_list<R: Read>(reader: R) -> Result<(CsrGraph, Vec<u64>), IoError> {
    let mut br = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    let mut remap: FxHashMap<u64, VertexId> = FxHashMap::default();
    let mut labels: Vec<u64> = Vec::new();
    let mut line = String::new();
    let mut line_no = 0usize;

    let intern = |raw: u64, labels: &mut Vec<u64>, remap: &mut FxHashMap<u64, VertexId>| {
        *remap.entry(raw).or_insert_with(|| {
            labels.push(raw);
            (labels.len() - 1) as VertexId
        })
    };

    loop {
        line.clear();
        if br.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(IoError::Parse {
                    line_no,
                    line: t.to_string(),
                })
            }
        };
        let (pa, pb) = match (a.parse::<u64>(), b.parse::<u64>()) {
            (Ok(x), Ok(y)) => (x, y),
            _ => {
                return Err(IoError::Parse {
                    line_no,
                    line: t.to_string(),
                })
            }
        };
        let u = intern(pa, &mut labels, &mut remap);
        let v = intern(pb, &mut labels, &mut remap);
        builder.add_edge(u, v);
    }
    Ok((builder.build(), labels))
}

/// Convenience wrapper over [`read_edge_list`] for a filesystem path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<(CsrGraph, Vec<u64>), IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes `g` as a `u v` edge list (one canonical `u < v` line per edge),
/// with a small header comment. The writer is used as given — wrap files
/// in a [`BufWriter`] (as [`write_edge_list_file`] does) to avoid one
/// syscall per edge.
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut w: W) -> io::Result<()> {
    writeln!(w, "# undirected graph: n={} m={}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Convenience wrapper over [`write_edge_list`] for a filesystem path,
/// with buffered writes.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    write_edge_list(g, BufWriter::new(std::fs::File::create(path)?))
}

// ---------------------------------------------------------------------------
// Versioned binary snapshots
// ---------------------------------------------------------------------------

/// Leading magic bytes of a binary snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"EGOBSNAP";
/// Current snapshot format version. Readers reject anything else.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Header flag bit: the payload carries `n` original vertex labels.
const FLAG_LABELS: u8 = 1;
/// Fixed header size: magic + version + flags + n + m + checksum.
const HEADER_LEN: usize = 8 + 4 + 1 + 8 + 8 + 8;

/// FNV-1a 64-bit hash, the snapshot payload checksum (also used by the
/// service's write-ahead log records). Not cryptographic — it guards
/// against truncation and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes `g` (and, when given, the original vertex labels from
/// [`read_edge_list`]) as a versioned binary snapshot:
///
/// ```text
/// magic "EGOBSNAP" | version u32 | flags u8 | n u64 | m u64 | checksum u64
/// payload: m × (u u32, v u32) canonical u < v edges, CSR order,
///          then (flags & 1) ? n × label u64 : nothing
/// ```
///
/// All integers little-endian; the checksum is FNV-1a 64 over the payload.
/// `labels`, when present, must have length `n`.
pub fn write_snapshot<W: Write>(g: &CsrGraph, labels: Option<&[u64]>, mut w: W) -> io::Result<()> {
    if let Some(l) = labels {
        assert_eq!(l.len(), g.n(), "labels length must equal n");
    }
    let mut payload = Vec::with_capacity(8 * g.m() + labels.map_or(0, |l| 8 * l.len()));
    for (u, v) in g.edges() {
        payload.extend_from_slice(&u.to_le_bytes());
        payload.extend_from_slice(&v.to_le_bytes());
    }
    if let Some(l) = labels {
        for &raw in l {
            payload.extend_from_slice(&raw.to_le_bytes());
        }
    }
    w.write_all(&SNAPSHOT_MAGIC)?;
    w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
    w.write_all(&[if labels.is_some() { FLAG_LABELS } else { 0 }])?;
    w.write_all(&(g.n() as u64).to_le_bytes())?;
    w.write_all(&(g.m() as u64).to_le_bytes())?;
    w.write_all(&fnv1a64(&payload).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Convenience wrapper over [`write_snapshot`] for a filesystem path,
/// with buffered writes.
pub fn write_snapshot_file<P: AsRef<Path>>(
    g: &CsrGraph,
    labels: Option<&[u64]>,
    path: P,
) -> io::Result<()> {
    write_snapshot(g, labels, BufWriter::new(std::fs::File::create(path)?))
}

/// Reads a binary snapshot written by [`write_snapshot`], returning the
/// graph and the original labels when the file carries them. Fails with
/// [`IoError::Snapshot`] on a bad magic, an unsupported version, a
/// checksum mismatch, or a structurally inconsistent edge section.
pub fn read_snapshot<R: Read>(mut reader: R) -> Result<(CsrGraph, Option<Vec<u64>>), IoError> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            IoError::Snapshot("file shorter than the fixed header".into())
        } else {
            IoError::Io(e)
        }
    })?;
    if header[..8] != SNAPSHOT_MAGIC {
        return Err(IoError::Snapshot(format!(
            "magic {:?}, expected {SNAPSHOT_MAGIC:?}",
            &header[..8]
        )));
    }
    let le_u32 = |at: usize| u32::from_le_bytes(header[at..at + 4].try_into().unwrap());
    let le_u64 = |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().unwrap());
    let version = le_u32(8);
    if version != SNAPSHOT_VERSION {
        return Err(IoError::Snapshot(format!(
            "version {version}, this reader supports {SNAPSHOT_VERSION}"
        )));
    }
    let flags = header[12];
    if flags & !FLAG_LABELS != 0 {
        return Err(IoError::Snapshot(format!("unknown flag bits {flags:#x}")));
    }
    let n = le_u64(13);
    let m = le_u64(21);
    let checksum = le_u64(29);
    if n > u64::from(u32::MAX) {
        return Err(IoError::Snapshot(format!("n = {n} exceeds u32 ids")));
    }
    // The header is untrusted input: bound m structurally (canonical
    // u < v edges are distinct pairs) and size the payload with checked
    // arithmetic, then read *through* a `take` so a lying header can at
    // most make us buffer the actual file — never pre-allocate from a
    // fabricated multi-exabyte length (`vec![0; huge]` would abort).
    let max_m = n as u128 * n.saturating_sub(1) as u128 / 2;
    if m as u128 > max_m {
        return Err(IoError::Snapshot(format!(
            "m = {m} exceeds the {max_m} distinct pairs of n = {n} vertices"
        )));
    }
    let has_labels = flags & FLAG_LABELS != 0;
    let payload_len: usize = 8u64
        .checked_mul(m)
        .and_then(|e| e.checked_add(if has_labels { 8 * n } else { 0 }))
        .and_then(|total| usize::try_from(total).ok())
        .ok_or_else(|| IoError::Snapshot(format!("payload size overflows (m = {m})")))?;
    let mut payload = Vec::new();
    (&mut reader)
        .take(payload_len as u64)
        .read_to_end(&mut payload)
        .map_err(IoError::Io)?;
    if payload.len() != payload_len {
        return Err(IoError::Snapshot(format!(
            "payload truncated: header promises {payload_len} bytes, file has {}",
            payload.len()
        )));
    }
    let mut trailing = [0u8; 1];
    if reader.read(&mut trailing).map_err(IoError::Io)? != 0 {
        return Err(IoError::Snapshot("trailing bytes after payload".into()));
    }
    let got = fnv1a64(&payload);
    if got != checksum {
        return Err(IoError::Snapshot(format!(
            "checksum mismatch: header {checksum:#018x}, payload {got:#018x}"
        )));
    }
    let mut edges = Vec::with_capacity(m as usize);
    for i in 0..m as usize {
        let at = 8 * i;
        let u = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap());
        let v = u32::from_le_bytes(payload[at + 4..at + 8].try_into().unwrap());
        if u >= v || u64::from(v) >= n {
            return Err(IoError::Snapshot(format!(
                "edge {i} = ({u}, {v}) is not canonical u < v < n = {n}"
            )));
        }
        edges.push((u, v));
    }
    let labels = has_labels.then(|| {
        let base = 8 * m as usize;
        (0..n as usize)
            .map(|i| {
                let at = base + 8 * i;
                u64::from_le_bytes(payload[at..at + 8].try_into().unwrap())
            })
            .collect::<Vec<u64>>()
    });
    let g = CsrGraph::from_edges(n as usize, &edges);
    if g.m() as u64 != m {
        return Err(IoError::Snapshot(format!(
            "duplicate edges: {m} declared, {} distinct",
            g.m()
        )));
    }
    Ok((g, labels))
}

/// Convenience wrapper over [`read_snapshot`] for a filesystem path,
/// with buffered reads.
pub fn read_snapshot_file<P: AsRef<Path>>(
    path: P,
) -> Result<(CsrGraph, Option<Vec<u64>>), IoError> {
    read_snapshot(BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format() {
        let text = "# Directed graph (each unordered pair once)\n\
                    # Nodes: 4 Edges: 3\n\
                    10\t20\n\
                    20 30\n\
                    % konect comment\n\
                    \n\
                    30\t10\n";
        let (g, labels) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(labels, vec![10, 20, 30]);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("1 two\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line_no, .. } => assert_eq!(line_no, 1),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn roundtrip_up_to_relabeling() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, labels) = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        // `labels` maps new ids back to originals; adjacency must agree
        // through that mapping (ids are assigned in first-seen order, so
        // they may differ from the originals).
        for u2 in g2.vertices() {
            let mut mapped: Vec<u32> = g2
                .neighbors(u2)
                .iter()
                .map(|&v2| labels[v2 as usize] as u32)
                .collect();
            mapped.sort_unstable();
            assert_eq!(mapped, g.neighbors(labels[u2 as usize] as u32));
        }
    }

    #[test]
    fn dedupes_both_orientations() {
        let (g, _) = read_edge_list("0 1\n1 0\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn self_loop_lines_are_dropped_but_vertices_kept() {
        // SNAP dumps occasionally contain `v v` lines; the edge must be
        // dropped while the vertex id stays interned (so downstream
        // degree/label arrays line up with the file).
        let (g, labels) = read_edge_list("7 7\n7 8\n9 9\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 1, "only (7,8) survives");
        assert_eq!(labels, vec![7, 8, 9], "self-loop-only vertex 9 interned");
        assert_eq!(g.n(), 3);
        assert_eq!(g.degree(2), 0, "vertex 9 is isolated, not absent");
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn duplicate_lines_mixed_with_self_loops() {
        let text = "1 2\n2 1\n1 1\n1 2\n# comment\n2 2\n1 2\n";
        let (g, labels) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(labels, vec![1, 2]);
    }

    #[test]
    fn empty_and_comment_only_inputs() {
        let (g, labels) = read_edge_list("".as_bytes()).unwrap();
        assert_eq!((g.n(), g.m()), (0, 0));
        assert!(labels.is_empty());
        let (g, _) = read_edge_list("# a\n% b\n\n   \n".as_bytes()).unwrap();
        assert_eq!((g.n(), g.m()), (0, 0));
    }

    #[test]
    fn trailing_tokens_and_mixed_whitespace_accepted() {
        // KONECT lines may carry a weight/timestamp column; the parser
        // reads the first two tokens and ignores the rest.
        let (g, _) = read_edge_list("0\t1 1.5\n1   2\t\t42\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn rejects_one_token_line_with_line_number() {
        let err = read_edge_list("0 1\n0 2\n17\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line_no, line } => {
                assert_eq!(line_no, 3);
                assert_eq!(line, "17");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_negative_ids() {
        assert!(read_edge_list("0 -1\n".as_bytes()).is_err());
    }

    #[test]
    fn huge_raw_ids_relabel_densely() {
        let (g, labels) = read_edge_list("18446744073709551615 3\n".as_bytes()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(labels, vec![u64::MAX, 3]);
    }

    // --- binary snapshots ---------------------------------------------

    fn snapshot_bytes(g: &CsrGraph, labels: Option<&[u64]>) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(g, labels, &mut buf).unwrap();
        buf
    }

    #[test]
    fn snapshot_roundtrip_without_labels() {
        // Includes an isolated vertex (4 < n but degree 0) to check n is
        // carried by the header, not inferred from the edge section.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]);
        let buf = snapshot_bytes(&g, None);
        let (g2, labels) = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(labels, None);
        assert_eq!((g2.n(), g2.m()), (g.n(), g.m()));
        for u in g.vertices() {
            assert_eq!(g2.neighbors(u), g.neighbors(u));
        }
        assert_eq!(g2.validate(), Ok(()));
    }

    #[test]
    fn snapshot_roundtrip_preserves_labels() {
        let text = "100 200\n200 300\n300 100\n300 7\n";
        let (g, labels) = read_edge_list(text.as_bytes()).unwrap();
        let buf = snapshot_bytes(&g, Some(&labels));
        let (g2, labels2) = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(labels2.as_deref(), Some(labels.as_slice()));
        assert_eq!((g2.n(), g2.m()), (g.n(), g.m()));
        for u in g.vertices() {
            assert_eq!(g2.neighbors(u), g.neighbors(u));
        }
    }

    #[test]
    fn snapshot_roundtrip_empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let (g2, labels) = read_snapshot(snapshot_bytes(&g, None).as_slice()).unwrap();
        assert_eq!((g2.n(), g2.m()), (0, 0));
        assert_eq!(labels, None);
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let path = std::env::temp_dir().join(format!("egobtw-snap-{}.snap", std::process::id()));
        write_snapshot_file(&g, Some(&[9, 8, 7, 6]), &path).unwrap();
        let (g2, labels) = read_snapshot_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g2.m(), 3);
        assert_eq!(labels, Some(vec![9, 8, 7, 6]));
    }

    fn expect_snapshot_err(bytes: &[u8], needle: &str) {
        match read_snapshot(bytes) {
            Err(IoError::Snapshot(reason)) => {
                assert!(reason.contains(needle), "{reason:?} lacks {needle:?}")
            }
            other => panic!("expected Snapshot error containing {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_rejects_bad_magic() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = snapshot_bytes(&g, None);
        buf[0] ^= 0xFF;
        expect_snapshot_err(&buf, "magic");
    }

    #[test]
    fn snapshot_rejects_future_version() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let mut buf = snapshot_bytes(&g, None);
        buf[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        expect_snapshot_err(&buf, "version");
    }

    #[test]
    fn snapshot_rejects_unknown_flags() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let mut buf = snapshot_bytes(&g, None);
        buf[12] |= 0x80;
        expect_snapshot_err(&buf, "flag");
    }

    #[test]
    fn snapshot_rejects_corrupted_payload() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = snapshot_bytes(&g, None);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        expect_snapshot_err(&buf, "checksum");
    }

    #[test]
    fn snapshot_rejects_truncation_at_every_length() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let buf = snapshot_bytes(&g, Some(&[4, 5, 6, 7]));
        for cut in 0..buf.len() {
            assert!(
                read_snapshot(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn snapshot_rejects_trailing_garbage() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let mut buf = snapshot_bytes(&g, None);
        buf.push(0);
        expect_snapshot_err(&buf, "trailing");
    }

    #[test]
    fn snapshot_rejects_fabricated_huge_sizes_without_allocating() {
        // A corrupt header claiming m = 2^60 (or any m beyond n·(n−1)/2)
        // must fail structurally — not pre-allocate exabytes and abort.
        let header_with = |n: u64, m: u64| {
            let mut buf = Vec::new();
            buf.extend_from_slice(&SNAPSHOT_MAGIC);
            buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
            buf.push(0);
            buf.extend_from_slice(&n.to_le_bytes());
            buf.extend_from_slice(&m.to_le_bytes());
            buf.extend_from_slice(&fnv1a64(&[]).to_le_bytes());
            buf
        };
        expect_snapshot_err(&header_with(4, 1 << 60), "distinct pairs");
        expect_snapshot_err(&header_with(u64::from(u32::MAX), 1 << 60), "truncated");
        expect_snapshot_err(&header_with(4, 7), "distinct pairs");
        // A structurally plausible m with no payload is plain truncation.
        expect_snapshot_err(&header_with(4, 6), "truncated");
    }

    #[test]
    fn snapshot_rejects_non_canonical_edges() {
        // Hand-build a frame whose edge section says (1, 1): structurally
        // valid header + checksum, semantically bad payload.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.push(0);
        buf.extend_from_slice(&2u64.to_le_bytes()); // n
        buf.extend_from_slice(&1u64.to_le_bytes()); // m
        buf.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        expect_snapshot_err(&buf, "canonical");
    }
}
