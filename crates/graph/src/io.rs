//! Edge-list I/O in the SNAP text format.
//!
//! The paper's datasets come from `snap.stanford.edu` as whitespace-
//! separated edge lists with `#` comment lines. [`read_edge_list`] accepts
//! that format (also `%` comments, as used by KONECT), relabels arbitrary
//! non-negative integer ids to a dense `0..n` range, and returns a
//! [`CsrGraph`]. Buffered reading with a reused line buffer keeps the
//! loader allocation-free per line (perf-book "Reading Lines from a File").

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::hash::FxHashMap;
use crate::VertexId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the edge-list parser.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A non-comment line did not contain two integer tokens.
    Parse {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// The offending line, verbatim.
        line: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line_no, line } => {
                write!(f, "cannot parse edge on line {line_no}: {line:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a SNAP-style edge list from any reader, relabeling ids densely in
/// first-seen order. Returns the graph and the original ids of each vertex
/// (`labels[new_id] = original_id`).
pub fn read_edge_list<R: Read>(reader: R) -> Result<(CsrGraph, Vec<u64>), IoError> {
    let mut br = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    let mut remap: FxHashMap<u64, VertexId> = FxHashMap::default();
    let mut labels: Vec<u64> = Vec::new();
    let mut line = String::new();
    let mut line_no = 0usize;

    let intern = |raw: u64, labels: &mut Vec<u64>, remap: &mut FxHashMap<u64, VertexId>| {
        *remap.entry(raw).or_insert_with(|| {
            labels.push(raw);
            (labels.len() - 1) as VertexId
        })
    };

    loop {
        line.clear();
        if br.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(IoError::Parse {
                    line_no,
                    line: t.to_string(),
                })
            }
        };
        let (pa, pb) = match (a.parse::<u64>(), b.parse::<u64>()) {
            (Ok(x), Ok(y)) => (x, y),
            _ => {
                return Err(IoError::Parse {
                    line_no,
                    line: t.to_string(),
                })
            }
        };
        let u = intern(pa, &mut labels, &mut remap);
        let v = intern(pb, &mut labels, &mut remap);
        builder.add_edge(u, v);
    }
    Ok((builder.build(), labels))
}

/// Convenience wrapper over [`read_edge_list`] for a filesystem path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<(CsrGraph, Vec<u64>), IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes `g` as a `u v` edge list (one canonical `u < v` line per edge),
/// with a small header comment.
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# undirected graph: n={} m={}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Convenience wrapper over [`write_edge_list`] for a filesystem path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format() {
        let text = "# Directed graph (each unordered pair once)\n\
                    # Nodes: 4 Edges: 3\n\
                    10\t20\n\
                    20 30\n\
                    % konect comment\n\
                    \n\
                    30\t10\n";
        let (g, labels) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(labels, vec![10, 20, 30]);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("1 two\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line_no, .. } => assert_eq!(line_no, 1),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn roundtrip_up_to_relabeling() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, labels) = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        // `labels` maps new ids back to originals; adjacency must agree
        // through that mapping (ids are assigned in first-seen order, so
        // they may differ from the originals).
        for u2 in g2.vertices() {
            let mut mapped: Vec<u32> = g2
                .neighbors(u2)
                .iter()
                .map(|&v2| labels[v2 as usize] as u32)
                .collect();
            mapped.sort_unstable();
            assert_eq!(mapped, g.neighbors(labels[u2 as usize] as u32));
        }
    }

    #[test]
    fn dedupes_both_orientations() {
        let (g, _) = read_edge_list("0 1\n1 0\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn self_loop_lines_are_dropped_but_vertices_kept() {
        // SNAP dumps occasionally contain `v v` lines; the edge must be
        // dropped while the vertex id stays interned (so downstream
        // degree/label arrays line up with the file).
        let (g, labels) = read_edge_list("7 7\n7 8\n9 9\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 1, "only (7,8) survives");
        assert_eq!(labels, vec![7, 8, 9], "self-loop-only vertex 9 interned");
        assert_eq!(g.n(), 3);
        assert_eq!(g.degree(2), 0, "vertex 9 is isolated, not absent");
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn duplicate_lines_mixed_with_self_loops() {
        let text = "1 2\n2 1\n1 1\n1 2\n# comment\n2 2\n1 2\n";
        let (g, labels) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(labels, vec![1, 2]);
    }

    #[test]
    fn empty_and_comment_only_inputs() {
        let (g, labels) = read_edge_list("".as_bytes()).unwrap();
        assert_eq!((g.n(), g.m()), (0, 0));
        assert!(labels.is_empty());
        let (g, _) = read_edge_list("# a\n% b\n\n   \n".as_bytes()).unwrap();
        assert_eq!((g.n(), g.m()), (0, 0));
    }

    #[test]
    fn trailing_tokens_and_mixed_whitespace_accepted() {
        // KONECT lines may carry a weight/timestamp column; the parser
        // reads the first two tokens and ignores the rest.
        let (g, _) = read_edge_list("0\t1 1.5\n1   2\t\t42\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn rejects_one_token_line_with_line_number() {
        let err = read_edge_list("0 1\n0 2\n17\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line_no, line } => {
                assert_eq!(line_no, 3);
                assert_eq!(line, "17");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_negative_ids() {
        assert!(read_edge_list("0 -1\n".as_bytes()).is_err());
    }

    #[test]
    fn huge_raw_ids_relabel_densely() {
        let (g, labels) = read_edge_list("18446744073709551615 3\n".as_bytes()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(labels, vec![u64::MAX, 3]);
    }
}
