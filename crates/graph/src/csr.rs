//! Immutable compressed-sparse-row graph with hybrid hub bitmaps.
//!
//! [`CsrGraph`] is the workhorse static representation: two flat arrays
//! (offsets + concatenated sorted adjacency lists). Every algorithm crate
//! reads neighborhoods as `&[u32]` slices, which keeps hot loops free of
//! pointer chasing and lets intersections run on sorted slices.
//!
//! On top of the CSR arrays, high-degree **hubs** additionally carry a
//! packed bitmap row over the full vertex universe (bit `v` of word
//! `v / 64`). On power-law graphs the hub rows are rescanned once per
//! incident edge by the common-neighbor queries every engine bottoms out
//! in; a bitmap row turns each such rescan from `O(d_hub)` merge work into
//! one bit-probe per element of the *short* side. The degree threshold is
//! auto-chosen at build under a memory budget (see [`HybridConfig`]), and
//! [`CsrGraph::common_neighbors_into_with`] dispatches adaptively between
//! merge, gallop, slice×bitmap, and bitmap×bitmap kernels.

use crate::intersect::{
    bitmap_bitmap_intersect_into, bitmap_bitmap_intersection_count, intersect_into_with,
    intersection_count_with, slice_bitmap_intersect_into, slice_bitmap_intersection_count,
    KernelParams,
};
use crate::pair::pack_pair;
use crate::VertexId;

/// How [`CsrGraph`] chooses which vertices get packed bitmap rows.
///
/// A bitmap row costs `⌈n/64⌉` words, so rows are reserved for vertices
/// whose adjacency is rescanned often and at length — the hubs. The
/// builder picks the smallest degree threshold `t ≥ min_hub_degree` such
/// that giving a row to *every* vertex of degree `≥ t` fits the memory
/// budget; with the defaults the threshold lands near `n/64` on skewed
/// graphs (budget ≈ the CSR arrays themselves) while small or regular
/// graphs simply get no rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridConfig {
    /// Master switch; `false` builds a plain CSR (the pre-hybrid layout).
    pub enabled: bool,
    /// Floor on the auto-chosen degree threshold. A row only pays for
    /// itself once `d² ≫ n/64` (build cost `n/64` words amortized over
    /// `d` rescans saving `O(d)` each), so very low floors waste memory
    /// on graphs without real hubs.
    pub min_hub_degree: usize,
    /// Memory budget: total bitmap words may not exceed
    /// `budget_words_per_edge · m` (+ a small constant allowance so tiny
    /// graphs with one genuine hub still get a row).
    pub budget_words_per_edge: usize,
}

impl HybridConfig {
    /// Tuned defaults: threshold floor 32, budget 4 words (32 bytes) of
    /// bitmap per edge — at most ~4× the adjacency array itself.
    pub const fn new() -> Self {
        HybridConfig {
            enabled: true,
            min_hub_degree: 32,
            budget_words_per_edge: 4,
        }
    }

    /// No bitmap rows at all: the exact pre-hybrid representation, used
    /// by the perf harness to time the recorded baseline.
    pub const fn disabled() -> Self {
        HybridConfig {
            enabled: false,
            min_hub_degree: usize::MAX,
            budget_words_per_edge: 0,
        }
    }

    /// Bitmap rows for (nearly) every vertex: threshold floor 1 with a
    /// generous budget. On conformance-scale graphs this forces every
    /// intersection through the bitmap kernels, giving the differential
    /// harness full coverage of the hybrid paths; on large graphs the
    /// budget still caps memory, degrading gracefully toward the default
    /// hub set. Not meant for production-size inputs.
    pub const fn dense() -> Self {
        HybridConfig {
            enabled: true,
            min_hub_degree: 1,
            budget_words_per_edge: 64,
        }
    }
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig::new()
    }
}

/// Packed bitmap rows for the hub vertices (see [`HybridConfig`]).
#[derive(Clone, Debug)]
struct HubBitmaps {
    /// Degree threshold actually chosen; `usize::MAX` when no rows exist.
    threshold: usize,
    /// `⌈n/64⌉`, the length of each row.
    words_per_row: usize,
    /// Row index per vertex (`u32::MAX` = no row); empty when no rows.
    row_of: Box<[u32]>,
    /// Concatenated rows.
    words: Box<[u64]>,
}

impl HubBitmaps {
    fn none() -> Self {
        HubBitmaps {
            threshold: usize::MAX,
            words_per_row: 0,
            row_of: Box::new([]),
            words: Box::new([]),
        }
    }

    /// Picks the threshold and packs the rows for an already-built CSR.
    fn build(offsets: &[usize], adj: &[VertexId], cfg: &HybridConfig) -> Self {
        let n = offsets.len() - 1;
        let m = adj.len() / 2;
        if !cfg.enabled || n == 0 {
            return HubBitmaps::none();
        }
        let words_per_row = n.div_ceil(64);
        // Small constant allowance so a tiny graph with one genuine hub
        // (e.g. a star) still gets its row under a per-edge budget.
        let budget_words = m
            .saturating_mul(cfg.budget_words_per_edge)
            .saturating_add(8 * words_per_row);
        let degree = |u: usize| offsets[u + 1] - offsets[u];
        let d_max = (0..n).map(degree).max().unwrap_or(0);
        let floor = cfg.min_hub_degree.max(1);
        if d_max < floor {
            return HubBitmaps::none();
        }
        // count_ge[d] = #vertices with degree ≥ d; smallest affordable
        // threshold ≥ floor wins.
        let mut count_ge = vec![0usize; d_max + 2];
        for u in 0..n {
            count_ge[degree(u)] += 1;
        }
        for d in (0..=d_max).rev() {
            count_ge[d] += count_ge[d + 1];
        }
        let mut threshold = floor;
        while threshold <= d_max && count_ge[threshold].saturating_mul(words_per_row) > budget_words
        {
            threshold += 1;
        }
        if threshold > d_max {
            return HubBitmaps::none();
        }
        let hubs = count_ge[threshold];
        let mut row_of = vec![u32::MAX; n];
        let mut words = vec![0u64; hubs * words_per_row];
        let mut next_row = 0u32;
        for u in 0..n {
            if degree(u) >= threshold {
                let base = next_row as usize * words_per_row;
                for &v in &adj[offsets[u]..offsets[u + 1]] {
                    words[base + (v as usize >> 6)] |= 1u64 << (v & 63);
                }
                row_of[u] = next_row;
                next_row += 1;
            }
        }
        HubBitmaps {
            threshold,
            words_per_row,
            row_of: row_of.into_boxed_slice(),
            words: words.into_boxed_slice(),
        }
    }

    /// The bitmap row of `u`, if it is a hub.
    #[inline]
    fn row(&self, u: VertexId) -> Option<&[u64]> {
        let slot = *self.row_of.get(u as usize)?;
        if slot == u32::MAX {
            return None;
        }
        let base = slot as usize * self.words_per_row;
        Some(&self.words[base..base + self.words_per_row])
    }

    fn row_count(&self) -> usize {
        self.words
            .len()
            .checked_div(self.words_per_row)
            .unwrap_or(0)
    }
}

/// The kernel chosen for one common-neighbor query, borrowing the inputs
/// it needs (see [`CsrGraph::pick_kernel`]).
enum CnKernel<'a> {
    /// Word-wise `AND` of two hub rows.
    BitmapBitmap(&'a [u64], &'a [u64]),
    /// Probe the short slice into the long side's hub row.
    SliceBitmap(&'a [VertexId], &'a [u64]),
    /// Merge/gallop over two sorted slices (short side first).
    Slices(&'a [VertexId], &'a [VertexId]),
}

/// An undirected, unweighted simple graph in compressed-sparse-row form,
/// with packed bitmap rows on high-degree hubs (see the module docs).
///
/// Invariants (established by all constructors, relied upon everywhere):
/// * vertices are `0..n`;
/// * adjacency slices are strictly increasing (sorted, no duplicates);
/// * no self-loops;
/// * symmetry: `v ∈ N(u) ⟺ u ∈ N(v)`;
/// * every hub bitmap row holds exactly the bits of its adjacency slice.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Box<[usize]>,
    adj: Box<[VertexId]>,
    hubs: HubBitmaps,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an undirected edge list,
    /// with hub bitmaps auto-chosen under [`HybridConfig::new`].
    ///
    /// Self-loops are dropped; duplicate edges (in either orientation) are
    /// collapsed. Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        Self::from_edges_with(n, edges, &HybridConfig::new())
    }

    /// [`CsrGraph::from_edges`] with an explicit hub-bitmap policy.
    pub fn from_edges_with(n: usize, edges: &[(VertexId, VertexId)], cfg: &HybridConfig) -> Self {
        let mut keys: Vec<u64> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for n={n}"
            );
            if u != v {
                keys.push(pack_pair(u, v));
            }
        }
        keys.sort_unstable();
        keys.dedup();

        let mut degrees = vec![0usize; n];
        for &k in &keys {
            let (u, v) = crate::pair::unpack_pair(k);
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut adj = vec![0 as VertexId; acc];
        for &k in &keys {
            let (u, v) = crate::pair::unpack_pair(k);
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Keys were sorted by (min, max); per-vertex lists need their own
        // sort because a vertex appears as both min and max endpoint.
        for u in 0..n {
            adj[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        let hubs = HubBitmaps::build(&offsets, &adj, cfg);
        let g = CsrGraph {
            offsets: offsets.into_boxed_slice(),
            adj: adj.into_boxed_slice(),
            hubs,
        };
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// Builds a graph from a *replayable* stream of edges without ever
    /// materializing an edge list: pass one counts degrees, pass two
    /// scatters endpoints straight into the CSR adjacency array. Peak
    /// transient memory is the CSR itself plus a per-vertex cursor — no
    /// `Vec<(u, v)>`, no packed-key sort buffer (`from_edges` allocates
    /// both). This is what lets large generator runs stream.
    ///
    /// `make_stream` is called twice and must yield the *same* sequence
    /// both times (seeded generators replay their RNG). Each undirected
    /// edge must appear exactly once, with no self-loops; violations
    /// panic — callers own dedup, which they typically already do.
    pub fn from_edge_stream<I, F>(n: usize, make_stream: F) -> Self
    where
        I: Iterator<Item = (VertexId, VertexId)>,
        F: Fn() -> I,
    {
        Self::from_edge_stream_with(n, make_stream, &HybridConfig::new())
    }

    /// [`CsrGraph::from_edge_stream`] with an explicit hub-bitmap policy.
    pub fn from_edge_stream_with<I, F>(n: usize, make_stream: F, cfg: &HybridConfig) -> Self
    where
        I: Iterator<Item = (VertexId, VertexId)>,
        F: Fn() -> I,
    {
        let mut degrees = vec![0usize; n];
        let mut first_pass_edges = 0usize;
        for (u, v) in make_stream() {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for n={n}"
            );
            assert!(u != v, "self-loop ({u},{u}) in edge stream");
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
            first_pass_edges += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        drop(degrees);

        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut adj = vec![0 as VertexId; acc];
        let mut second_pass_edges = 0usize;
        for (u, v) in make_stream() {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
            second_pass_edges += 1;
        }
        assert_eq!(
            first_pass_edges, second_pass_edges,
            "edge stream did not replay identically"
        );
        drop(cursor);
        for u in 0..n {
            let list = &mut adj[offsets[u]..offsets[u + 1]];
            list.sort_unstable();
            assert!(
                list.windows(2).all(|w| w[0] != w[1]),
                "duplicate edge incident to vertex {u} in edge stream"
            );
        }
        let hubs = HubBitmaps::build(&offsets, &adj, cfg);
        let g = CsrGraph {
            offsets: offsets.into_boxed_slice(),
            adj: adj.into_boxed_slice(),
            hubs,
        };
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// Rebuilds only the hub-bitmap layer under a different policy; the
    /// CSR arrays are shared-cloned, so this skips the edge re-sort.
    pub fn with_hybrid_config(&self, cfg: &HybridConfig) -> Self {
        let g = CsrGraph {
            offsets: self.offsets.clone(),
            adj: self.adj.clone(),
            hubs: HubBitmaps::build(&self.offsets, &self.adj, cfg),
        };
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// The auto-chosen hub degree threshold, if any bitmap rows exist.
    pub fn hub_threshold(&self) -> Option<usize> {
        (self.hubs.threshold != usize::MAX).then_some(self.hubs.threshold)
    }

    /// Number of vertices carrying a bitmap row.
    pub fn hub_count(&self) -> usize {
        self.hubs.row_count()
    }

    /// The packed bitmap row of `u` (bit `v` of word `v / 64`), if `u` is
    /// a hub. Exposed for kernels and tests; most callers want
    /// [`CsrGraph::common_neighbors_into`].
    #[inline]
    pub fn hub_bitmap(&self, u: VertexId) -> Option<&[u64]> {
        self.hubs.row(u)
    }

    /// Appends the sorted common neighborhood `N(u) ∩ N(v)` to `out`,
    /// dispatching adaptively over the hybrid representation with default
    /// [`KernelParams`]. This is the common-neighbor entry point every
    /// engine routes through.
    #[inline]
    pub fn common_neighbors_into(&self, u: VertexId, v: VertexId, out: &mut Vec<VertexId>) {
        self.common_neighbors_into_with(u, v, &KernelParams::new(), out);
    }

    /// Picks the kernel for one common-neighbor query, with `a` the
    /// lower-degree endpoint:
    /// * `b` not a hub → merge/gallop over the two sorted slices;
    /// * exactly one hub (necessarily the longer side) → probe the short
    ///   slice into the hub's bitmap;
    /// * both hubs and the short slice long enough that word-wise `AND`
    ///   wins → bitmap×bitmap.
    ///
    /// Single source of truth for the dispatch heuristic, so the
    /// materializing and counting entry points can never drift apart.
    #[inline]
    fn pick_kernel(&self, u: VertexId, v: VertexId, params: &KernelParams) -> CnKernel<'_> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let na = self.neighbors(a);
        match self.hubs.row(b) {
            Some(row_b) => match self.hubs.row(a) {
                Some(row_a)
                    if na.len().saturating_mul(params.bitmap_word_ratio)
                        >= self.hubs.words_per_row =>
                {
                    CnKernel::BitmapBitmap(row_a, row_b)
                }
                _ => CnKernel::SliceBitmap(na, row_b),
            },
            None => CnKernel::Slices(na, self.neighbors(b)),
        }
    }

    /// [`CsrGraph::common_neighbors_into`] with explicit dispatch
    /// thresholds (see [`CsrGraph::pick_kernel`] for the heuristic).
    pub fn common_neighbors_into_with(
        &self,
        u: VertexId,
        v: VertexId,
        params: &KernelParams,
        out: &mut Vec<VertexId>,
    ) {
        match self.pick_kernel(u, v, params) {
            CnKernel::BitmapBitmap(ra, rb) => bitmap_bitmap_intersect_into(ra, rb, out),
            CnKernel::SliceBitmap(slice, row) => slice_bitmap_intersect_into(slice, row, out),
            CnKernel::Slices(na, nb) => intersect_into_with(na, nb, params, out),
        }
    }

    /// `|N(u) ∩ N(v)|` without materializing, same dispatch as
    /// [`CsrGraph::common_neighbors_into`].
    #[inline]
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        self.common_neighbor_count_with(u, v, &KernelParams::new())
    }

    /// [`CsrGraph::common_neighbor_count`] with explicit thresholds.
    pub fn common_neighbor_count_with(
        &self,
        u: VertexId,
        v: VertexId,
        params: &KernelParams,
    ) -> usize {
        match self.pick_kernel(u, v, params) {
            CnKernel::BitmapBitmap(ra, rb) => bitmap_bitmap_intersection_count(ra, rb),
            CnKernel::SliceBitmap(slice, row) => slice_bitmap_intersection_count(slice, row),
            CnKernel::Slices(na, nb) => intersection_count_with(na, nb, params),
        }
    }

    /// Exhaustively checks the structural invariants every algorithm
    /// relies on: monotone offsets covering the adjacency array, strictly
    /// sorted self-loop-free neighbor slices with in-range endpoints,
    /// symmetry (`v ∈ N(u) ⟺ u ∈ N(v)`), and an even total degree.
    ///
    /// Returns a description of the first violation. Debug builds run this
    /// after every construction; the conformance harness runs it on every
    /// generated and replayed graph in release builds too. Cost
    /// `O(m log d_max)`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if *self.offsets.first().expect("offsets non-empty") != 0 {
            return Err("offsets[0] != 0".into());
        }
        for u in 0..n {
            if self.offsets[u] > self.offsets[u + 1] {
                return Err(format!("offsets not monotone at vertex {u}"));
            }
        }
        if self.offsets[n] != self.adj.len() {
            return Err(format!(
                "offsets end {} != adjacency length {}",
                self.offsets[n],
                self.adj.len()
            ));
        }
        if !self.adj.len().is_multiple_of(2) {
            return Err(format!("odd total degree {}", self.adj.len()));
        }
        for u in 0..n as VertexId {
            let ns = self.neighbors(u);
            for w in ns.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!(
                        "adjacency of {u} not strictly sorted: {} then {}",
                        w[0], w[1]
                    ));
                }
            }
            for &v in ns {
                if v as usize >= n {
                    return Err(format!("neighbor {v} of {u} out of range (n={n})"));
                }
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
                if self.neighbors(v).binary_search(&u).is_err() {
                    return Err(format!("asymmetric edge: {v} ∈ N({u}) but {u} ∉ N({v})"));
                }
            }
        }
        self.validate_hubs()
    }

    /// Hub-bitmap layer invariants: rows exist exactly for vertices at or
    /// above the threshold, and each row's set bits equal its adjacency
    /// slice. Part of [`CsrGraph::validate`].
    fn validate_hubs(&self) -> Result<(), String> {
        let n = self.n();
        let h = &self.hubs;
        if h.row_of.is_empty() {
            if !h.words.is_empty() {
                return Err("hub words without row index".into());
            }
            return Ok(());
        }
        if h.row_of.len() != n {
            return Err(format!("hub row index length {} != n {n}", h.row_of.len()));
        }
        if h.words_per_row != n.div_ceil(64) {
            return Err(format!(
                "words_per_row {} != ceil(n/64) {}",
                h.words_per_row,
                n.div_ceil(64)
            ));
        }
        for u in 0..n as VertexId {
            let row = h.row(u);
            if row.is_some() != (self.degree(u) >= h.threshold) {
                return Err(format!(
                    "vertex {u} (degree {}) {} a bitmap row at threshold {}",
                    self.degree(u),
                    if row.is_some() { "has" } else { "lacks" },
                    h.threshold
                ));
            }
            if let Some(row) = row {
                let mut decoded = Vec::with_capacity(self.degree(u));
                for (i, &w) in row.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        decoded.push((i as u32) << 6 | w.trailing_zeros());
                        w &= w - 1;
                    }
                }
                if decoded != self.neighbors(u) {
                    return Err(format!("hub row of {u} disagrees with adjacency slice"));
                }
            }
        }
        Ok(())
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Sorted neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Edge membership: one bit-probe when either endpoint is a hub,
    /// otherwise binary search (`O(log d)`) on the smaller endpoint. For
    /// guaranteed O(1) membership in hot loops build an [`crate::EdgeSet`].
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        if let Some(row) = self.hubs.row(u) {
            return row[v as usize >> 6] & (1u64 << (v & 63)) != 0;
        }
        if let Some(row) = self.hubs.row(v) {
            return row[u as usize >> 6] & (1u64 << (u & 63)) != 0;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n() as VertexId
    }

    /// Iterator over undirected edges as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree (`d_max` in the paper's tables). Zero for empty graphs.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as VertexId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Sum over vertices of `d(u)²`; the worst-case size of the S-map store
    /// (Theorem 2's space term) — useful for sizing estimates in harnesses.
    pub fn degree_square_sum(&self) -> u64 {
        (0..self.n() as VertexId)
            .map(|u| (self.degree(u) as u64).pow(2))
            .sum()
    }

    /// The static upper bound `ub(u) = d(u)(d(u)-1)/2` of Lemma 2.
    #[inline]
    pub fn degree_bound(&self, u: VertexId) -> f64 {
        let d = self.degree(u) as f64;
        d * (d - 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn basic_accessors() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = CsrGraph::from_edges(4, &[(2, 1), (3, 0), (1, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn edge_stream_matches_from_edges() {
        let edges = [(2, 1), (3, 0), (1, 0), (0, 2)];
        let streamed = CsrGraph::from_edge_stream(4, || edges.iter().copied());
        let built = CsrGraph::from_edges(4, &edges);
        assert_eq!(
            streamed.edges().collect::<Vec<_>>(),
            built.edges().collect::<Vec<_>>()
        );
        assert_eq!(streamed.validate(), Ok(()));
        for u in 0..4 {
            assert_eq!(streamed.neighbors(u), built.neighbors(u));
        }
    }

    #[test]
    fn edge_stream_empty_and_isolated() {
        let g = CsrGraph::from_edge_stream(3, std::iter::empty);
        assert_eq!((g.n(), g.m()), (3, 0));
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn edge_stream_rejects_duplicates() {
        let edges = [(0, 1), (1, 0)];
        let _ = CsrGraph::from_edge_stream(2, || edges.iter().copied());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_stream_rejects_self_loops() {
        let edges = [(1, 1)];
        let _ = CsrGraph::from_edge_stream(2, || edges.iter().copied());
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let g = CsrGraph::from_edges(6, &[(5, 0), (4, 0), (3, 0), (0, 1), (2, 0), (1, 2), (3, 4)]);
        for u in g.vertices() {
            let ns = g.neighbors(u);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            for &v in ns {
                assert!(g.neighbors(v).contains(&u), "symmetry");
            }
        }
    }

    #[test]
    fn degree_square_sum_and_bound() {
        let g = path4();
        assert_eq!(g.degree_square_sum(), 1 + 4 + 4 + 1);
        assert_eq!(g.degree_bound(1), 1.0);
        assert_eq!(g.degree_bound(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn validate_accepts_constructed_graphs() {
        for g in [
            CsrGraph::from_edges(1, &[]),
            path4(),
            CsrGraph::from_edges(6, &[(5, 0), (4, 0), (3, 0), (0, 1), (2, 0), (1, 2), (3, 4)]),
        ] {
            assert_eq!(g.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_corruption() {
        // Hand-build broken structures through the private fields.
        let asym = CsrGraph {
            offsets: vec![0usize, 1, 1].into_boxed_slice(),
            adj: vec![1 as VertexId].into_boxed_slice(),
            hubs: HubBitmaps::none(),
        };
        assert!(asym.validate().unwrap_err().contains("odd total degree"));
        let unsorted = CsrGraph {
            offsets: vec![0usize, 2, 3, 4].into_boxed_slice(),
            adj: vec![2 as VertexId, 1, 0, 0].into_boxed_slice(),
            hubs: HubBitmaps::none(),
        };
        assert!(unsorted
            .validate()
            .unwrap_err()
            .contains("not strictly sorted"));
        let self_loop = CsrGraph {
            offsets: vec![0usize, 2, 4].into_boxed_slice(),
            adj: vec![0 as VertexId, 1, 0, 1].into_boxed_slice(),
            hubs: HubBitmaps::none(),
        };
        assert!(self_loop.validate().unwrap_err().contains("self-loop"));
    }

    #[test]
    fn validate_rejects_hub_corruption() {
        let mut g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)])
            .with_hybrid_config(&HybridConfig::dense());
        assert!(g.hub_count() > 0);
        assert_eq!(g.validate(), Ok(()));
        // Flip a bit in vertex 0's row: adjacency and bitmap now disagree.
        g.hubs.words[0] ^= 1u64 << 3;
        assert!(g.validate().unwrap_err().contains("disagrees"));
    }

    #[test]
    fn hub_selection_respects_threshold_and_config() {
        // A 70-leaf star: the hub clears the default floor of 32, leaves
        // stay slice-only.
        let edges: Vec<(VertexId, VertexId)> = (1..=70).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(71, &edges);
        assert_eq!(g.hub_count(), 1);
        assert!(g.hub_bitmap(0).is_some());
        assert!(g.hub_bitmap(1).is_none());
        let t = g.hub_threshold().expect("star hub gets a row");
        assert!(t <= 70 && t > 1);
        // Disabled config: plain CSR.
        let plain = g.with_hybrid_config(&HybridConfig::disabled());
        assert_eq!(plain.hub_count(), 0);
        assert_eq!(plain.hub_threshold(), None);
        assert_eq!(plain.validate(), Ok(()));
        // Dense config on a tiny graph: every non-isolated vertex rows up.
        let dense = g.with_hybrid_config(&HybridConfig::dense());
        assert_eq!(dense.hub_count(), 71);
    }

    #[test]
    fn common_neighbors_dispatch_agrees_across_configs() {
        // Karate club has max degree 17 < 32: default has no hubs; dense
        // has all. Every pair must agree with the merge reference.
        let base = classic_karate();
        let dense = base.with_hybrid_config(&HybridConfig::dense());
        assert_eq!(base.hub_count(), 0);
        assert_eq!(dense.hub_count(), 34);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for u in base.vertices() {
            for v in base.vertices() {
                a.clear();
                b.clear();
                base.common_neighbors_into(u, v, &mut a);
                dense.common_neighbors_into(u, v, &mut b);
                assert_eq!(a, b, "pair ({u},{v})");
                assert_eq!(dense.common_neighbor_count(u, v), a.len());
                assert_eq!(base.has_edge(u, v), dense.has_edge(u, v));
            }
        }
    }

    /// Zachary's karate club, inlined to keep `egobtw-gen` out of this
    /// crate's dev-dependencies.
    fn classic_karate() -> CsrGraph {
        let edges: [(VertexId, VertexId); 78] = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (0, 7),
            (0, 8),
            (0, 10),
            (0, 11),
            (0, 12),
            (0, 13),
            (0, 17),
            (0, 19),
            (0, 21),
            (0, 31),
            (1, 2),
            (1, 3),
            (1, 7),
            (1, 13),
            (1, 17),
            (1, 19),
            (1, 21),
            (1, 30),
            (2, 3),
            (2, 7),
            (2, 8),
            (2, 9),
            (2, 13),
            (2, 27),
            (2, 28),
            (2, 32),
            (3, 7),
            (3, 12),
            (3, 13),
            (4, 6),
            (4, 10),
            (5, 6),
            (5, 10),
            (5, 16),
            (6, 16),
            (8, 30),
            (8, 32),
            (8, 33),
            (9, 33),
            (13, 33),
            (14, 32),
            (14, 33),
            (15, 32),
            (15, 33),
            (18, 32),
            (18, 33),
            (19, 33),
            (20, 32),
            (20, 33),
            (22, 32),
            (22, 33),
            (23, 25),
            (23, 27),
            (23, 29),
            (23, 32),
            (23, 33),
            (24, 25),
            (24, 27),
            (24, 31),
            (25, 31),
            (26, 29),
            (26, 33),
            (27, 33),
            (28, 31),
            (28, 33),
            (29, 32),
            (29, 33),
            (30, 32),
            (30, 33),
            (31, 32),
            (31, 33),
            (32, 33),
        ];
        CsrGraph::from_edges(34, &edges)
    }
}
