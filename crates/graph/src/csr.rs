//! Immutable compressed-sparse-row graph.
//!
//! [`CsrGraph`] is the workhorse static representation: two flat arrays
//! (offsets + concatenated sorted adjacency lists). Every algorithm crate
//! reads neighborhoods as `&[u32]` slices, which keeps hot loops free of
//! pointer chasing and lets intersections run on sorted slices.

use crate::pair::pack_pair;
use crate::VertexId;

/// An undirected, unweighted simple graph in compressed-sparse-row form.
///
/// Invariants (established by all constructors, relied upon everywhere):
/// * vertices are `0..n`;
/// * adjacency slices are strictly increasing (sorted, no duplicates);
/// * no self-loops;
/// * symmetry: `v ∈ N(u) ⟺ u ∈ N(v)`.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Box<[usize]>,
    adj: Box<[VertexId]>,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Self-loops are dropped; duplicate edges (in either orientation) are
    /// collapsed. Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut keys: Vec<u64> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for n={n}"
            );
            if u != v {
                keys.push(pack_pair(u, v));
            }
        }
        keys.sort_unstable();
        keys.dedup();

        let mut degrees = vec![0usize; n];
        for &k in &keys {
            let (u, v) = crate::pair::unpack_pair(k);
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut adj = vec![0 as VertexId; acc];
        for &k in &keys {
            let (u, v) = crate::pair::unpack_pair(k);
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Keys were sorted by (min, max); per-vertex lists need their own
        // sort because a vertex appears as both min and max endpoint.
        for u in 0..n {
            adj[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        let g = CsrGraph {
            offsets: offsets.into_boxed_slice(),
            adj: adj.into_boxed_slice(),
        };
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// Exhaustively checks the structural invariants every algorithm
    /// relies on: monotone offsets covering the adjacency array, strictly
    /// sorted self-loop-free neighbor slices with in-range endpoints,
    /// symmetry (`v ∈ N(u) ⟺ u ∈ N(v)`), and an even total degree.
    ///
    /// Returns a description of the first violation. Debug builds run this
    /// after every construction; the conformance harness runs it on every
    /// generated and replayed graph in release builds too. Cost
    /// `O(m log d_max)`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if *self.offsets.first().expect("offsets non-empty") != 0 {
            return Err("offsets[0] != 0".into());
        }
        for u in 0..n {
            if self.offsets[u] > self.offsets[u + 1] {
                return Err(format!("offsets not monotone at vertex {u}"));
            }
        }
        if self.offsets[n] != self.adj.len() {
            return Err(format!(
                "offsets end {} != adjacency length {}",
                self.offsets[n],
                self.adj.len()
            ));
        }
        if !self.adj.len().is_multiple_of(2) {
            return Err(format!("odd total degree {}", self.adj.len()));
        }
        for u in 0..n as VertexId {
            let ns = self.neighbors(u);
            for w in ns.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!(
                        "adjacency of {u} not strictly sorted: {} then {}",
                        w[0], w[1]
                    ));
                }
            }
            for &v in ns {
                if v as usize >= n {
                    return Err(format!("neighbor {v} of {u} out of range (n={n})"));
                }
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
                if self.neighbors(v).binary_search(&u).is_err() {
                    return Err(format!("asymmetric edge: {v} ∈ N({u}) but {u} ∉ N({v})"));
                }
            }
        }
        Ok(())
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Sorted neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Edge membership by binary search: `O(log d(u))` on the smaller
    /// endpoint. For O(1) membership in hot loops build an [`crate::EdgeSet`].
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n() as VertexId
    }

    /// Iterator over undirected edges as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree (`d_max` in the paper's tables). Zero for empty graphs.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as VertexId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Sum over vertices of `d(u)²`; the worst-case size of the S-map store
    /// (Theorem 2's space term) — useful for sizing estimates in harnesses.
    pub fn degree_square_sum(&self) -> u64 {
        (0..self.n() as VertexId)
            .map(|u| (self.degree(u) as u64).pow(2))
            .sum()
    }

    /// The static upper bound `ub(u) = d(u)(d(u)-1)/2` of Lemma 2.
    #[inline]
    pub fn degree_bound(&self, u: VertexId) -> f64 {
        let d = self.degree(u) as f64;
        d * (d - 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn basic_accessors() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = CsrGraph::from_edges(4, &[(2, 1), (3, 0), (1, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let g = CsrGraph::from_edges(6, &[(5, 0), (4, 0), (3, 0), (0, 1), (2, 0), (1, 2), (3, 4)]);
        for u in g.vertices() {
            let ns = g.neighbors(u);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            for &v in ns {
                assert!(g.neighbors(v).contains(&u), "symmetry");
            }
        }
    }

    #[test]
    fn degree_square_sum_and_bound() {
        let g = path4();
        assert_eq!(g.degree_square_sum(), 1 + 4 + 4 + 1);
        assert_eq!(g.degree_bound(1), 1.0);
        assert_eq!(g.degree_bound(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn validate_accepts_constructed_graphs() {
        for g in [
            CsrGraph::from_edges(1, &[]),
            path4(),
            CsrGraph::from_edges(6, &[(5, 0), (4, 0), (3, 0), (0, 1), (2, 0), (1, 2), (3, 4)]),
        ] {
            assert_eq!(g.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_corruption() {
        // Hand-build broken structures through the private fields.
        let asym = CsrGraph {
            offsets: vec![0usize, 1, 1].into_boxed_slice(),
            adj: vec![1 as VertexId].into_boxed_slice(),
        };
        assert!(asym.validate().unwrap_err().contains("odd total degree"));
        let unsorted = CsrGraph {
            offsets: vec![0usize, 2, 3, 4].into_boxed_slice(),
            adj: vec![2 as VertexId, 1, 0, 0].into_boxed_slice(),
        };
        assert!(unsorted
            .validate()
            .unwrap_err()
            .contains("not strictly sorted"));
        let self_loop = CsrGraph {
            offsets: vec![0usize, 2, 4].into_boxed_slice(),
            adj: vec![0 as VertexId, 1, 0, 1].into_boxed_slice(),
        };
        assert!(self_loop.validate().unwrap_err().contains("self-loop"));
    }
}
