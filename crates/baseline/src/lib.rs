//! The effectiveness baseline: classical betweenness centrality.
//!
//! The paper's Exp-6/7 compare top-k *ego*-betweenness (TopEBW) against
//! top-k betweenness computed with Brandes' algorithm (TopBW), both on
//! runtime (ego wins by orders of magnitude) and on the overlap of the two
//! top-k sets (typically 60–90%, the evidence that ego-betweenness is a
//! faithful cheap proxy).
//!
//! * [`brandes::betweenness`] — exact Brandes for unweighted graphs,
//!   `O(nm)`;
//! * [`brandes::betweenness_parallel`] — source-partitioned parallel
//!   version (the paper runs TopBW with 64 threads to make the comparison
//!   even remotely feasible);
//! * [`brandes::top_bw`] — TopBW;
//! * [`overlap`] — top-k set agreement metrics.

pub mod brandes;
pub mod overlap;

pub use brandes::{betweenness, betweenness_parallel, top_bw};
pub use overlap::{jaccard, overlap_fraction};
