//! Agreement metrics between two top-k rankings.
//!
//! The paper reports the overlap `|BW ∩ EBW| / k` (Fig. 11(c–d),
//! Fig. 12(c–d), and the starred rows of Tables III–IV).

use egobtw_graph::{FxHashSet, VertexId};

/// `|A ∩ B| / max(|A|, |B|)` — the paper's overlap percentage when both
/// rankings have the same length `k`. Returns 1.0 for two empty sets.
pub fn overlap_fraction(a: &[VertexId], b: &[VertexId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: FxHashSet<VertexId> = a.iter().copied().collect();
    let inter = b.iter().filter(|v| sa.contains(v)).count();
    inter as f64 / a.len().max(b.len()) as f64
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`.
pub fn jaccard(a: &[VertexId], b: &[VertexId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: FxHashSet<VertexId> = a.iter().copied().collect();
    let sb: FxHashSet<VertexId> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        assert_eq!(overlap_fraction(&[1, 2, 3], &[3, 2, 1]), 1.0);
        assert_eq!(jaccard(&[1, 2, 3], &[3, 2, 1]), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(overlap_fraction(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        assert!((overlap_fraction(&[1, 2, 3, 4], &[3, 4, 5, 6]) - 0.5).abs() < 1e-12);
        assert!((jaccard(&[1, 2, 3, 4], &[3, 4, 5, 6]) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets() {
        assert_eq!(overlap_fraction(&[], &[]), 1.0);
        assert_eq!(overlap_fraction(&[], &[1]), 0.0);
    }
}
