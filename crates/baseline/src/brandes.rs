//! Brandes' betweenness centrality for unweighted graphs.
//!
//! One BFS per source computes shortest-path counts `σ`, then a reverse
//! sweep accumulates dependencies `δ(v) = Σ_{w: v∈pred(w)} σ(v)/σ(w) ·
//! (1 + δ(w))`. Predecessors are recognized by the distance test
//! `dist[v] = dist[w] − 1`, so no predecessor lists are materialized.
//! Per-source state is reset via the visit stack (touched vertices only),
//! keeping each source at `O(m)` instead of `O(n + m)` re-initialization.
//!
//! For an undirected graph each unordered pair is counted from both
//! endpoints, so the accumulated totals are halved at the end.

use egobtw_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Reusable per-source workspace.
struct Workspace {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    stack: Vec<VertexId>,
    queue: std::collections::VecDeque<VertexId>,
}

impl Workspace {
    fn new(n: usize) -> Self {
        Workspace {
            dist: vec![u32::MAX; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            stack: Vec::with_capacity(n),
            queue: std::collections::VecDeque::with_capacity(n),
        }
    }

    /// Runs one source and accumulates dependencies into `bc`.
    fn accumulate_source(&mut self, g: &CsrGraph, s: VertexId, bc: &mut [f64]) {
        self.stack.clear();
        self.queue.clear();
        self.dist[s as usize] = 0;
        self.sigma[s as usize] = 1.0;
        self.queue.push_back(s);
        while let Some(v) = self.queue.pop_front() {
            self.stack.push(v);
            let dv = self.dist[v as usize];
            for &w in g.neighbors(v) {
                if self.dist[w as usize] == u32::MAX {
                    self.dist[w as usize] = dv + 1;
                    self.queue.push_back(w);
                }
                if self.dist[w as usize] == dv + 1 {
                    self.sigma[w as usize] += self.sigma[v as usize];
                }
            }
        }
        for &w in self.stack.iter().rev() {
            let dw = self.dist[w as usize];
            let coeff = (1.0 + self.delta[w as usize]) / self.sigma[w as usize];
            for &v in g.neighbors(w) {
                if self.dist[v as usize] + 1 == dw {
                    self.delta[v as usize] += self.sigma[v as usize] * coeff;
                }
            }
            if w != s {
                bc[w as usize] += self.delta[w as usize];
            }
        }
        // Touched-only reset.
        for &v in &self.stack {
            self.dist[v as usize] = u32::MAX;
            self.sigma[v as usize] = 0.0;
            self.delta[v as usize] = 0.0;
        }
    }
}

/// Exact betweenness of every vertex (unordered pairs counted once).
pub fn betweenness(g: &CsrGraph) -> Vec<f64> {
    let n = g.n();
    let mut bc = vec![0.0f64; n];
    let mut ws = Workspace::new(n);
    for s in 0..n as VertexId {
        ws.accumulate_source(g, s, &mut bc);
    }
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

/// Parallel Brandes: sources are partitioned across `threads` workers via
/// an atomic cursor; each worker accumulates into a private vector, summed
/// at the end (no locks on the hot path).
pub fn betweenness_parallel(g: &CsrGraph, threads: usize) -> Vec<f64> {
    assert!(threads >= 1);
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    const CHUNK: usize = 16;
    let cursor = AtomicUsize::new(0);
    let partials: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut bc = vec![0.0f64; n];
                    let mut ws = Workspace::new(n);
                    loop {
                        let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for v in start..(start + CHUNK).min(n) {
                            ws.accumulate_source(g, v as VertexId, &mut bc);
                        }
                    }
                    bc
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut bc = vec![0.0f64; n];
    for part in partials {
        for (acc, x) in bc.iter_mut().zip(part) {
            *acc += x;
        }
    }
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

/// TopBW: the `k` highest-betweenness vertices (descending; ties toward
/// smaller id), computed with [`betweenness_parallel`].
pub fn top_bw(g: &CsrGraph, k: usize, threads: usize) -> Vec<(VertexId, f64)> {
    let bc = betweenness_parallel(g, threads);
    let mut v: Vec<(VertexId, f64)> = bc
        .iter()
        .enumerate()
        .map(|(i, &b)| (i as VertexId, b))
        .collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_gen::{classic, gnp};

    /// O(n³)-ish reference: pairwise dependency from two BFS sweeps.
    fn brute(g: &CsrGraph) -> Vec<f64> {
        let n = g.n();
        let mut dist = vec![vec![u32::MAX; n]; n];
        let mut sigma = vec![vec![0.0f64; n]; n];
        for s in 0..n {
            dist[s][s] = 0;
            sigma[s][s] = 1.0;
            let mut q = std::collections::VecDeque::from([s as VertexId]);
            while let Some(v) = q.pop_front() {
                for &w in g.neighbors(v) {
                    if dist[s][w as usize] == u32::MAX {
                        dist[s][w as usize] = dist[s][v as usize] + 1;
                        q.push_back(w);
                    }
                    if dist[s][w as usize] == dist[s][v as usize] + 1 {
                        sigma[s][w as usize] += sigma[s][v as usize];
                    }
                }
            }
        }
        let mut bc = vec![0.0f64; n];
        for s in 0..n {
            for t in s + 1..n {
                if dist[s][t] == u32::MAX {
                    continue;
                }
                for v in 0..n {
                    if v == s || v == t {
                        continue;
                    }
                    if dist[s][v] != u32::MAX
                        && dist[t][v] != u32::MAX
                        && dist[s][v] + dist[t][v] == dist[s][t]
                    {
                        bc[v] += sigma[s][v] * sigma[t][v] / sigma[s][t];
                    }
                }
            }
        }
        bc
    }

    fn assert_close_vec(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_closed_form() {
        // bc(i) on P_n = i · (n−1−i).
        let g = classic::path(7);
        let bc = betweenness(&g);
        for (i, &b) in bc.iter().enumerate().take(7) {
            assert!((b - (i * (6 - i)) as f64).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn star_closed_form() {
        let g = classic::star(9);
        let bc = betweenness(&g);
        assert!((bc[0] - (8.0 * 7.0 / 2.0)).abs() < 1e-9);
        for leaf in &bc[1..9] {
            assert!(leaf.abs() < 1e-9);
        }
    }

    #[test]
    fn complete_graph_zero() {
        let bc = betweenness(&classic::complete(6));
        assert!(bc.iter().all(|&b| b.abs() < 1e-9));
    }

    #[test]
    fn matches_brute_on_random_graphs() {
        for seed in 0..4 {
            let g = gnp(28, 0.15, seed);
            assert_close_vec(&betweenness(&g), &brute(&g));
        }
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        assert_close_vec(&betweenness(&g), &brute(&g));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gnp(60, 0.1, 7);
        let seq = betweenness(&g);
        for threads in [1, 2, 4, 8] {
            assert_close_vec(&betweenness_parallel(&g, threads), &seq);
        }
    }

    #[test]
    fn top_bw_orders_and_truncates() {
        let g = classic::karate_club();
        let top = top_bw(&g, 5, 2);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Karate club's highest-betweenness vertex is the president (0).
        assert_eq!(top[0].0, 0);
    }
}
