//! Ring-buffered slow-query log.
//!
//! Requests whose total latency crosses a runtime-settable threshold are
//! captured with their full span breakdown into a bounded ring; when the
//! ring is full the oldest entry is evicted (and counted as dropped).
//! The fast path costs one relaxed atomic load when the log is disabled
//! or the request is fast — entry construction is deferred to a closure
//! that only runs for outliers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One captured outlier.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Monotone sequence number (survives draining).
    pub seq: u64,
    /// Unix timestamp, milliseconds.
    pub unix_ms: u64,
    /// Command verb (`TOPK`, `UPDATE`, …).
    pub verb: String,
    /// Dataset name, or empty for catalog-level commands.
    pub dataset: String,
    /// Total request nanoseconds.
    pub total_ns: u64,
    /// Span breakdown (a [`crate::span::Trace::summary`] token).
    pub breakdown: String,
}

impl SlowEntry {
    /// One-line rendering used by the `SLOWLOG` reply.
    pub fn render(&self) -> String {
        format!(
            "#{} ts_ms={} verb={} dataset={} total_us={} {}",
            self.seq,
            self.unix_ms,
            self.verb,
            if self.dataset.is_empty() {
                "-"
            } else {
                &self.dataset
            },
            self.total_ns / 1_000,
            self.breakdown,
        )
    }
}

/// Bounded ring of [`SlowEntry`] outliers.
pub struct SlowLog {
    cap: usize,
    /// Threshold in nanoseconds; 0 disables capture entirely.
    threshold_ns: AtomicU64,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A disabled slow-query log holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        SlowLog {
            cap: cap.max(1),
            threshold_ns: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Sets the capture threshold in milliseconds (0 disables).
    pub fn set_threshold_ms(&self, ms: u64) {
        self.threshold_ns
            .store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Sets the capture threshold in nanoseconds (0 disables); the
    /// millisecond flag is the operator surface, this is for tests that
    /// need every request captured.
    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Current threshold in nanoseconds (0 = disabled).
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Entries evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records the request if the log is enabled and `total_ns` crosses
    /// the threshold; `make` builds the entry only in that case. Returns
    /// true when an entry was captured.
    pub fn maybe_record(&self, total_ns: u64, make: impl FnOnce() -> SlowEntry) -> bool {
        let threshold = self.threshold_ns.load(Ordering::Relaxed);
        if threshold == 0 || total_ns < threshold {
            return false;
        }
        let mut entry = make();
        entry.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
        true
    }

    /// Removes and returns every captured entry, oldest first.
    pub fn drain(&self) -> Vec<SlowEntry> {
        self.ring.lock().unwrap().drain(..).collect()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(verb: &str, total_ns: u64) -> SlowEntry {
        SlowEntry {
            seq: 0,
            unix_ms: 1,
            verb: verb.to_string(),
            dataset: String::new(),
            total_ns,
            breakdown: format!("total:{}us", total_ns / 1_000),
        }
    }

    #[test]
    fn disabled_by_default_and_threshold_gates() {
        let log = SlowLog::new(4);
        assert!(!log.maybe_record(u64::MAX, || entry("TOPK", u64::MAX)));
        log.set_threshold_ms(1);
        assert!(!log.maybe_record(999_999, || entry("TOPK", 999_999)));
        assert!(log.maybe_record(1_000_000, || entry("TOPK", 1_000_000)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let log = SlowLog::new(2);
        log.set_threshold_ns(1);
        for i in 1..=5u64 {
            assert!(log.maybe_record(i, || entry("SCORE", i)));
        }
        assert_eq!(log.dropped(), 3);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].total_ns, 4);
        assert_eq!(drained[1].total_ns, 5);
        // Sequence numbers are monotone and survive the eviction.
        assert_eq!(drained[0].seq, 3);
        assert_eq!(drained[1].seq, 4);
        assert!(log.is_empty());
    }

    #[test]
    fn render_shape() {
        let e = SlowEntry {
            seq: 9,
            unix_ms: 1234,
            verb: "TOPK".into(),
            dataset: "web".into(),
            total_ns: 2_500_000,
            breakdown: "total:2500us,compute:2400us,exact:12".into(),
        };
        assert_eq!(
            e.render(),
            "#9 ts_ms=1234 verb=TOPK dataset=web total_us=2500 total:2500us,compute:2400us,exact:12"
        );
    }
}
