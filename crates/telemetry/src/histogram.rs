//! Fixed-bucket log2 latency histograms.
//!
//! Bucket `i` holds every value whose bit length is `i`: bucket 0 is
//! `{0}`, bucket 1 is `{1}`, bucket `i` is `[2^(i-1), 2^i - 1]`, bucket
//! 64 is `[2^63, u64::MAX]`. That gives constant memory (65 atomics),
//! lock-free recording, exact mergeability (bucket-wise addition), and
//! quantiles recoverable to within one power-of-two bucket — the
//! resolution every "agrees within one histogram bucket" check in this
//! workspace is phrased against.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets (bit lengths 0..=64).
pub const NUM_BUCKETS: usize = 65;

/// Bucket index for a value: its bit length (`0` only for `v == 0`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Largest value falling in bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// 1-based closest rank of quantile `q` among `n` ordered observations
/// (`q` clamped to `[0, 1]`; 0 when `n == 0`).
pub fn closest_rank(n: usize, q: f64) -> usize {
    if n == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    ((q * n as f64).ceil() as usize).clamp(1, n)
}

/// Linearly interpolated percentile over an ascending-sorted slice.
///
/// Unlike nearest-rank rounding (which silently clamps small-sample tail
/// quantiles like p999 to the max), interpolation between the two
/// closest ranks degrades gracefully; pair the value with `sorted.len()`
/// when reporting so consumers can judge significance.
pub fn percentile_sorted(sorted: &[u64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let base = sorted[lo] as f64;
    Some(base + (sorted[hi] as f64 - base) * (pos - lo as f64))
}

/// Lock-free log2 histogram: 65 bucket counters plus a saturating sum.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation (relaxed atomics; never blocks).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // Saturating, not wrapping: a u64::MAX observation must not make
        // the exposed `_sum` lie by wrapping back toward zero.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
    }

    /// A point-in-time copy. Concurrent `record`s may or may not be
    /// included, but every bucket count is monotone, so a snapshot never
    /// goes backwards relative to an earlier one.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state; mergeable and queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (index = bit length of the value).
    pub buckets: [u64; NUM_BUCKETS],
    /// Saturating sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound of the bucket containing the closest-rank observation
    /// for quantile `q`, or `None` when empty. The true quantile lies
    /// within one log2 bucket of the returned value.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = closest_rank(count as usize, q) as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        unreachable!("rank {rank} exceeds total count {count}")
    }

    /// Bucket-wise addition; merging is associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "upper bound of {i}");
        }
    }

    #[test]
    fn zero_observations() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.quantile(1.0), None);
    }

    #[test]
    fn single_observation_every_quantile_hits_its_bucket() {
        let h = Histogram::new();
        h.record(700);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum, 700);
        for q in [0.0, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(s.quantile(q), Some(bucket_upper_bound(bucket_index(700))));
        }
    }

    #[test]
    fn u64_max_duration_lands_in_last_bucket_and_sum_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(s.quantile(0.999), Some(u64::MAX));
    }

    #[test]
    fn quantiles_track_ranks() {
        let h = Histogram::new();
        // 90 fast (bucket of 100 = 7), 9 medium (bucket of 10_000 = 14),
        // 1 slow (bucket of 1_000_000 = 20).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(bucket_upper_bound(7)));
        assert_eq!(s.quantile(0.9), Some(bucket_upper_bound(7)));
        assert_eq!(s.quantile(0.95), Some(bucket_upper_bound(14)));
        assert_eq!(s.quantile(0.999), Some(bucket_upper_bound(20)));
        assert_eq!(s.quantile(1.0), Some(bucket_upper_bound(20)));
    }

    #[test]
    fn concurrent_record_vs_snapshot_never_tears() {
        let h = Arc::new(Histogram::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(1 << (t * 4));
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let mut last_count = 0u64;
        for _ in 0..200 {
            let s = h.snapshot();
            let c = s.count();
            assert!(c >= last_count, "snapshot count went backwards");
            last_count = c;
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(h.snapshot().count(), total);
    }

    /// Property test: merge is associative (and commutative) on randomly
    /// generated snapshots — `(a ∪ b) ∪ c == a ∪ (b ∪ c)`.
    #[test]
    fn merge_associativity_property() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let mut snaps: Vec<HistogramSnapshot> = Vec::new();
            for _ in 0..3 {
                let h = Histogram::new();
                for _ in 0..(next() % 50) {
                    h.record(next() >> (next() % 64));
                }
                snaps.push(h.snapshot());
            }
            let (a, b, c) = (&snaps[0], &snaps[1], &snaps[2]);
            let mut left = a.clone();
            left.merge(b);
            left.merge(c);
            let mut bc = b.clone();
            bc.merge(c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "merge must be associative");
            let mut ba = b.clone();
            ba.merge(a);
            let mut ab = a.clone();
            ab.merge(b);
            assert_eq!(ab, ba, "merge must be commutative");
        }
    }

    #[test]
    fn closest_rank_edges() {
        assert_eq!(closest_rank(0, 0.5), 0);
        assert_eq!(closest_rank(1, 0.0), 1);
        assert_eq!(closest_rank(1, 1.0), 1);
        assert_eq!(closest_rank(10, 0.5), 5);
        assert_eq!(closest_rank(10, 0.999), 10);
        assert_eq!(closest_rank(1000, 0.999), 999);
    }

    #[test]
    fn percentile_sorted_interpolates_instead_of_clamping() {
        assert_eq!(percentile_sorted(&[], 0.5), None);
        assert_eq!(percentile_sorted(&[42], 0.999), Some(42.0));
        let v: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        assert_eq!(percentile_sorted(&v, 0.0), Some(100.0));
        assert_eq!(percentile_sorted(&v, 1.0), Some(1000.0));
        let p50 = percentile_sorted(&v, 0.5).unwrap();
        assert!((p50 - 550.0).abs() < 1e-9, "p50 = {p50}");
        // The old nearest-rank rounding returned the max for p999 on a
        // 10-sample set; interpolation stays strictly below it.
        let p999 = percentile_sorted(&v, 0.999).unwrap();
        assert!(p999 < 1000.0 && p999 > 990.0, "p999 = {p999}");
    }
}
