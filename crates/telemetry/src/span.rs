//! Lightweight per-request tracing.
//!
//! A [`Trace`] is a stack-allocated record of where one request spent
//! its time — fixed phase array, monotonic clocks, zero heap allocation
//! until [`Trace::summary`] renders it (which only happens for `TRACE`d
//! requests and slow-query-log outliers). Phases are timed with
//! [`PhaseTimer`] values so no long-lived `&mut` borrow is held across
//! the timed region:
//!
//! ```
//! use egobtw_telemetry::span::{Phase, PhaseTimer, Trace};
//! let mut trace = Trace::start();
//! let t = PhaseTimer::start(Phase::Compute);
//! // … do the work …
//! trace.end(t);
//! assert!(trace.phase_ns(Phase::Compute) > 0 || trace.phase_ns(Phase::Compute) == 0);
//! ```

use std::time::Instant;

/// Where a request can spend its time, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Command-line parsing (prefix splitting + verb dispatch).
    Parse,
    /// Waiting in the admission queue for a worker.
    Queue,
    /// Acquiring the epoch snapshot (and the cache claim).
    Snapshot,
    /// Engine computation (exact search, approx sampling, or replay).
    Compute,
    /// Rendering the reply line.
    Serialize,
    /// Writing the reply frame to the socket.
    Write,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 6;
    /// All phases, in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Parse,
        Phase::Queue,
        Phase::Snapshot,
        Phase::Compute,
        Phase::Serialize,
        Phase::Write,
    ];

    /// Stable lowercase label used in `trace=` summaries and metric names.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Queue => "queue",
            Phase::Snapshot => "snapshot",
            Phase::Compute => "compute",
            Phase::Serialize => "serialize",
            Phase::Write => "write",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Queue => 1,
            Phase::Snapshot => 2,
            Phase::Compute => 3,
            Phase::Serialize => 4,
            Phase::Write => 5,
        }
    }
}

/// Engine work folded into a trace: `SearchStats`-shaped counters plus
/// the approx sampler's effort counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Vertices computed exactly (the paper's Table II metric).
    pub exact: u64,
    /// Vertices pruned by a bound.
    pub pruned: u64,
    /// Triangles processed.
    pub triangles: u64,
    /// Dynamic-bound refreshes.
    pub bound_refreshes: u64,
    /// Approx connector-pair samples drawn.
    pub samples: u64,
    /// Approx sampling rounds.
    pub rounds: u64,
}

impl WorkCounters {
    /// True when every counter is zero (nothing to report).
    pub fn is_empty(&self) -> bool {
        *self == WorkCounters::default()
    }
}

/// An in-flight phase measurement; hand it back to [`Trace::end`].
pub struct PhaseTimer {
    phase: Phase,
    t0: Instant,
}

impl PhaseTimer {
    /// Starts timing `phase` now.
    pub fn start(phase: Phase) -> Self {
        PhaseTimer {
            phase,
            t0: Instant::now(),
        }
    }
}

/// Stack-allocated span record for one request.
#[derive(Clone, Debug)]
pub struct Trace {
    started: Instant,
    phase_ns: [u64; Phase::COUNT],
    /// Engine work counters folded in by the compute path.
    pub work: WorkCounters,
}

impl Default for Trace {
    fn default() -> Self {
        Self::start()
    }
}

impl Trace {
    /// A fresh trace whose total clock starts now.
    pub fn start() -> Self {
        Trace {
            started: Instant::now(),
            phase_ns: [0; Phase::COUNT],
            work: WorkCounters::default(),
        }
    }

    /// Folds a finished [`PhaseTimer`] into the trace.
    pub fn end(&mut self, timer: PhaseTimer) {
        self.add_ns(timer.phase, timer.t0.elapsed().as_nanos() as u64);
    }

    /// Adds externally measured time to a phase (e.g. queue wait handed
    /// down by the acceptor).
    pub fn add_ns(&mut self, phase: Phase, ns: u64) {
        self.phase_ns[phase.index()] = self.phase_ns[phase.index()].saturating_add(ns);
    }

    /// Accumulated nanoseconds in `phase`.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// Wall-clock nanoseconds since the trace started.
    pub fn total_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Single-token summary (no spaces — safe to append to `key=value`
    /// reply lines): `total:…us,parse:…us,…,exact:…` with zero phases
    /// and zero work counters omitted.
    pub fn summary(&self) -> String {
        let mut out = format!("total:{}us", self.total_ns() / 1_000);
        for p in Phase::ALL {
            let ns = self.phase_ns(p);
            if ns > 0 {
                out.push_str(&format!(",{}:{}us", p.label(), ns / 1_000));
            }
        }
        let w = &self.work;
        for (label, v) in [
            ("exact", w.exact),
            ("pruned", w.pruned),
            ("triangles", w.triangles),
            ("bound_refreshes", w.bound_refreshes),
            ("samples", w.samples),
            ("rounds", w.rounds),
        ] {
            if v > 0 {
                out.push_str(&format!(",{label}:{v}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_summarize() {
        let mut tr = Trace::start();
        tr.add_ns(Phase::Parse, 2_000);
        tr.add_ns(Phase::Compute, 1_000_000);
        tr.add_ns(Phase::Compute, 500_000);
        tr.work.exact = 7;
        tr.work.samples = 120;
        assert_eq!(tr.phase_ns(Phase::Compute), 1_500_000);
        let s = tr.summary();
        assert!(s.starts_with("total:"), "{s}");
        assert!(s.contains(",parse:2us"), "{s}");
        assert!(s.contains(",compute:1500us"), "{s}");
        assert!(!s.contains("queue"), "zero phases omitted: {s}");
        assert!(s.contains(",exact:7"), "{s}");
        assert!(s.contains(",samples:120"), "{s}");
        assert!(!s.contains("pruned"), "zero counters omitted: {s}");
        assert!(!s.contains(' '), "summary must be a single token: {s}");
    }

    #[test]
    fn timer_records_elapsed_into_its_phase() {
        let mut tr = Trace::start();
        let t = PhaseTimer::start(Phase::Snapshot);
        std::thread::sleep(std::time::Duration::from_millis(2));
        tr.end(t);
        assert!(tr.phase_ns(Phase::Snapshot) >= 1_000_000);
        assert!(tr.total_ns() >= tr.phase_ns(Phase::Snapshot));
    }

    #[test]
    fn saturating_phase_addition() {
        let mut tr = Trace::start();
        tr.add_ns(Phase::Write, u64::MAX);
        tr.add_ns(Phase::Write, 10);
        assert_eq!(tr.phase_ns(Phase::Write), u64::MAX);
    }
}
