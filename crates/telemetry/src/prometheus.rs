//! Parser for the Prometheus text exposition format.
//!
//! Covers the subset [`crate::Registry::render`] emits — `# HELP`,
//! `# TYPE`, and `name{label="value",…} value` sample lines — strictly
//! enough to act as the schema gate for scrapes: unknown line shapes,
//! malformed labels, or non-numeric values are hard errors, and
//! [`Exposition::validate`] checks the structural invariants consumers
//! rely on (buckets cumulative, `_count` consistent with `+Inf`).

use std::collections::BTreeMap;

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Full sample name as written (may carry `_bucket`/`_sum`/`_count`).
    pub name: String,
    /// Label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True when every `(key, value)` in `want` appears in this sample's
    /// labels.
    pub fn matches(&self, want: &[(&str, &str)]) -> bool {
        want.iter().all(|(k, v)| self.label(k) == Some(v))
    }
}

/// One metric family: metadata plus its samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Family {
    /// `# HELP` text (empty if absent).
    pub help: String,
    /// `# TYPE` string (`counter` | `gauge` | `histogram`; empty if absent).
    pub kind: String,
    /// Samples belonging to this family.
    pub samples: Vec<Sample>,
}

/// A parsed exposition document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Exposition {
    /// Families keyed by base metric name.
    pub families: BTreeMap<String, Family>,
}

/// Strips a histogram sample suffix to recover the family name.
fn family_name(sample: &str, families: &BTreeMap<String, Family>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample.strip_suffix(suffix) {
            if families.get(base).is_some_and(|f| f.kind == "histogram") {
                return base.to_string();
            }
        }
    }
    sample.to_string()
}

fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() {
            return Err(format!("line {line_no}: empty label name"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line_no}: label value must be quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "line {line_no}: bad escape {:?}",
                            other.map(|(_, c)| c)
                        ))
                    }
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((key, value));
        rest = &rest[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

/// Parses an exposition document. Unknown comment directives, malformed
/// sample lines, or unparsable values are errors.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut it = comment.splitn(3, ' ');
            let directive = it.next().unwrap_or_default();
            let name = it
                .next()
                .ok_or_else(|| format!("line {line_no}: {directive} without a metric name"))?;
            let rest = it.next().unwrap_or_default();
            match directive {
                "HELP" => families.entry(name.to_string()).or_default().help = rest.to_string(),
                "TYPE" => {
                    if !matches!(
                        rest,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {line_no}: unknown metric type {rest:?}"));
                    }
                    families.entry(name.to_string()).or_default().kind = rest.to_string();
                }
                other => return Err(format!("line {line_no}: unknown directive {other:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }
        // name[{labels}] value
        let (name_part, value_part) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
                if close < brace {
                    return Err(format!("line {line_no}: mismatched braces"));
                }
                (&line[..close + 1], line[close + 1..].trim())
            }
            None => {
                let sp = line
                    .find(' ')
                    .ok_or_else(|| format!("line {line_no}: sample without a value"))?;
                (&line[..sp], line[sp + 1..].trim())
            }
        };
        let (name, labels) = match name_part.find('{') {
            Some(brace) => (
                &name_part[..brace],
                parse_labels(&name_part[brace + 1..name_part.len() - 1], line_no)?,
            ),
            None => (name_part, Vec::new()),
        };
        if name.is_empty() {
            return Err(format!("line {line_no}: empty metric name"));
        }
        let value = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|e| format!("line {line_no}: bad value {v:?}: {e}"))?,
        };
        let base = family_name(name, &families);
        families.entry(base).or_default().samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(Exposition { families })
}

/// Cumulative histogram reconstructed from `_bucket` samples, aggregated
/// across every series matching a label subset.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedHistogram {
    /// `(le, cumulative count)` ascending by `le`; `None` is `+Inf`.
    pub buckets: Vec<(Option<u64>, u64)>,
    /// Total observations (`+Inf` bucket).
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl ParsedHistogram {
    /// Upper bound of the bucket containing the closest-rank observation
    /// for quantile `q` (`u64::MAX` when it falls in `+Inf`), or `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = crate::histogram::closest_rank(self.count as usize, q) as u64;
        for &(le, cum) in &self.buckets {
            if cum >= rank {
                return Some(le.unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

impl Exposition {
    /// The value of the single sample `name{labels ⊇ want}`; `None` when
    /// no sample matches, an error listing the matches when several do.
    pub fn value(&self, name: &str, want: &[(&str, &str)]) -> Result<Option<f64>, String> {
        let matches: Vec<&Sample> = self
            .families
            .values()
            .flat_map(|f| &f.samples)
            .filter(|s| s.name == name && s.matches(want))
            .collect();
        match matches.len() {
            0 => Ok(None),
            1 => Ok(Some(matches[0].value)),
            n => Err(format!("{n} samples match {name}{want:?}")),
        }
    }

    /// Reconstructs the histogram family `name`, aggregating every series
    /// whose labels contain `want` (bucket-wise sum, valid because all
    /// series share the same `le` grid).
    pub fn histogram(&self, name: &str, want: &[(&str, &str)]) -> Option<ParsedHistogram> {
        let fam = self.families.get(name)?;
        let mut by_le: BTreeMap<Option<u64>, u64> = BTreeMap::new();
        let mut sum = 0.0;
        let mut count = 0u64;
        let mut any = false;
        for s in &fam.samples {
            if !s.matches(want) {
                continue;
            }
            if s.name == format!("{name}_bucket") {
                any = true;
                let le = match s.label("le")? {
                    "+Inf" => None,
                    v => Some(v.parse::<u64>().ok()?),
                };
                *by_le.entry(le).or_default() += s.value as u64;
            } else if s.name == format!("{name}_sum") {
                sum += s.value;
            } else if s.name == format!("{name}_count") {
                count += s.value as u64;
            }
        }
        if !any {
            return None;
        }
        // BTreeMap orders Some(_) ascending with None first; move +Inf last.
        let inf = by_le.remove(&None);
        let mut buckets: Vec<(Option<u64>, u64)> = by_le.into_iter().collect();
        if let Some(c) = inf {
            buckets.push((None, c));
        }
        Some(ParsedHistogram {
            buckets,
            count,
            sum,
        })
    }

    /// Structural schema checks: every name in `required` has at least
    /// one sample, histogram buckets are cumulative per series, and each
    /// histogram's `+Inf` bucket equals its `_count`. Returns the list of
    /// violations (empty = pass).
    pub fn validate(&self, required: &[&str]) -> Vec<String> {
        let mut violations = Vec::new();
        for name in required {
            let present = self
                .families
                .get(*name)
                .map(|f| !f.samples.is_empty())
                .unwrap_or(false);
            if !present {
                violations.push(format!("required metric {name} missing from exposition"));
            }
        }
        for (name, fam) in &self.families {
            if fam.kind != "histogram" {
                continue;
            }
            // Group bucket samples per label set (minus `le`): the key is
            // the sorted label pairs, the value is (le, cumulative count)
            // with `le = None` standing for `+Inf`.
            type SeriesKey = Vec<(String, String)>;
            let mut per_series: BTreeMap<SeriesKey, Vec<(Option<u64>, u64)>> = BTreeMap::new();
            let mut counts: BTreeMap<SeriesKey, u64> = BTreeMap::new();
            for s in &fam.samples {
                let mut labels: Vec<(String, String)> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                labels.sort();
                if s.name == format!("{name}_bucket") {
                    let le = match s.label("le") {
                        Some("+Inf") => None,
                        Some(v) => match v.parse::<u64>() {
                            Ok(n) => Some(n),
                            Err(_) => {
                                violations.push(format!("{name}: unparsable le={v:?}"));
                                continue;
                            }
                        },
                        None => {
                            violations.push(format!("{name}: bucket sample without le"));
                            continue;
                        }
                    };
                    per_series
                        .entry(labels)
                        .or_default()
                        .push((le, s.value as u64));
                } else if s.name == format!("{name}_count") {
                    counts.insert(labels, s.value as u64);
                }
            }
            for (labels, mut buckets) in per_series {
                buckets.sort_by_key(|&(le, _)| (le.is_none(), le));
                let mut last = 0u64;
                for &(le, cum) in &buckets {
                    if cum < last {
                        violations.push(format!(
                            "{name}{labels:?}: bucket le={le:?} count {cum} < previous {last}"
                        ));
                    }
                    last = cum;
                }
                match buckets.last() {
                    Some(&(None, inf)) => {
                        if let Some(&c) = counts.get(&labels) {
                            if c != inf {
                                violations.push(format!(
                                    "{name}{labels:?}: _count {c} != +Inf bucket {inf}"
                                ));
                            }
                        }
                    }
                    _ => violations.push(format!("{name}{labels:?}: no +Inf bucket")),
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn round_trip_render_parse() {
        let r = Registry::new();
        r.counter("req_total", "requests", &[("verb", "TOPK")])
            .add(4);
        r.counter("req_total", "requests", &[("verb", "PING")])
            .add(1);
        r.gauge("inflight", "in flight", &[]).set(2);
        let h = r.histogram("lat_ns", "latency", &[("dataset", "a b\"c\\d")]);
        for v in [3u64, 900, 900, 1 << 20] {
            h.record(v);
        }
        let text = r.render();
        let expo = parse(&text).expect("rendered exposition must parse");
        assert_eq!(
            expo.value("req_total", &[("verb", "TOPK")]).unwrap(),
            Some(4.0)
        );
        assert_eq!(
            expo.value("req_total", &[("verb", "PING")]).unwrap(),
            Some(1.0)
        );
        assert_eq!(expo.value("inflight", &[]).unwrap(), Some(2.0));
        let fam = &expo.families["lat_ns"];
        assert_eq!(fam.kind, "histogram");
        assert_eq!(fam.help, "latency");
        let parsed = expo
            .histogram("lat_ns", &[("dataset", "a b\"c\\d")])
            .expect("histogram with escaped labels survives round trip");
        assert_eq!(parsed.count, 4);
        assert_eq!(parsed.sum, (3 + 900 + 900 + (1 << 20)) as f64);
        // Quantile agrees with the live histogram's own snapshot.
        let live = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(parsed.quantile(q), live.quantile(q), "q={q}");
        }
        assert!(expo
            .validate(&["req_total", "inflight", "lat_ns"])
            .is_empty());
    }

    #[test]
    fn validate_flags_missing_and_non_monotone() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"3\"} 4
h_bucket{le=\"+Inf\"} 6
h_count 6
h_sum 12
";
        let expo = parse(text).unwrap();
        let violations = expo.validate(&["h", "missing_total"]);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("missing_total")));
        assert!(violations
            .iter()
            .any(|v| v.contains("count 4 < previous 5")));
    }

    #[test]
    fn validate_flags_count_mismatch_and_missing_inf() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 2
h_bucket{le=\"+Inf\"} 3
h_count 9
# TYPE g histogram
g_bucket{le=\"1\"} 2
g_count 2
";
        let expo = parse(text).unwrap();
        let violations = expo.validate(&[]);
        assert!(violations
            .iter()
            .any(|v| v.contains("_count 9 != +Inf bucket 3")));
        assert!(violations.iter().any(|v| v.contains("no +Inf bucket")));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("metric_without_value\n").is_err());
        assert!(parse("m{le=1} 3\n").is_err(), "unquoted label value");
        assert!(parse("m{x=\"unterminated} 3\n").is_err());
        assert!(parse("m not-a-number\n").is_err());
        assert!(parse("# FROB m x\n").is_err(), "unknown directive");
        assert!(parse("# TYPE m flavor\n").is_err(), "unknown type");
    }

    #[test]
    fn suffix_only_strips_for_histogram_families() {
        // A counter legitimately named *_count must not be folded into a
        // nonexistent histogram family.
        let text = "\
# TYPE retry_count counter
retry_count 3
";
        let expo = parse(text).unwrap();
        assert!(expo.families.contains_key("retry_count"));
        assert_eq!(expo.value("retry_count", &[]).unwrap(), Some(3.0));
    }
}
