//! Sharded metrics registry.
//!
//! Registration (name + sorted labels → handle) is sharded by key hash
//! behind per-shard `RwLock`s; the handles themselves are plain atomics,
//! so the hot path — bumping a cached `Arc<Counter>` or recording into a
//! cached `Arc<Histogram>` — is lock-free. Call sites are expected to
//! hold onto the `Arc` they get back; re-looking a series up per event
//! costs a read-lock and a hash.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Monotonic counter (never decremented).
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value; may go up or down.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (use a negative `n` to subtract).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` and returns the value after the addition — the atomic
    /// read-modify-write an admission watermark check needs (separate
    /// `add` + `get` would race under concurrent requests).
    pub fn add_and_get(&self, n: i64) -> i64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a metric family is — drives the exposition `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Log2 latency histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Series {
    fn kind(&self) -> MetricKind {
        match self {
            Series::Counter(_) => MetricKind::Counter,
            Series::Gauge(_) => MetricKind::Gauge,
            Series::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const SHARDS: usize = 8;

/// Sharded registry of named metric series.
pub struct Registry {
    shards: [RwLock<HashMap<SeriesKey, Series>>; SHARDS],
    /// Per-family metadata (help + kind), keyed by metric name.
    families: Mutex<BTreeMap<String, (String, MetricKind)>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            families: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: &SeriesKey) -> &RwLock<HashMap<SeriesKey, Series>> {
        &self.shards[(fnv1a64(key.name.as_bytes()) as usize) % SHARDS]
    }

    fn describe(&self, name: &str, help: &str, kind: MetricKind) {
        let mut fams = self.families.lock().unwrap();
        if let Some((_, existing)) = fams.get(name) {
            assert_eq!(
                *existing, kind,
                "metric {name:?} re-registered with a different kind"
            );
            return;
        }
        fams.insert(name.to_string(), (help.to_string(), kind));
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Series,
        unwrap: impl Fn(&Series) -> Option<Arc<T>>,
    ) -> Arc<T> {
        self.describe(name, help, kind);
        let key = SeriesKey::new(name, labels);
        let shard = self.shard(&key);
        if let Some(series) = shard.read().unwrap().get(&key) {
            return unwrap(series)
                .unwrap_or_else(|| panic!("metric {name:?} already registered as another kind"));
        }
        let mut w = shard.write().unwrap();
        let series = w.entry(key).or_insert_with(make);
        assert_eq!(
            series.kind(),
            kind,
            "metric {name:?} already registered as another kind"
        );
        unwrap(series).expect("kind just checked")
    }

    /// Gets or creates the counter series `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Counter,
            || Series::Counter(Arc::new(Counter::new())),
            |s| match s {
                Series::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Gets or creates the gauge series `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || Series::Gauge(Arc::new(Gauge::new())),
            |s| match s {
                Series::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Gets or creates the histogram series `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Histogram,
            || Series::Histogram(Arc::new(Histogram::new())),
            |s| match s {
                Series::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Snapshot of the histogram series `name{labels}`, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let key = SeriesKey::new(name, labels);
        match self.shard(&key).read().unwrap().get(&key) {
            Some(Series::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Renders every registered series in Prometheus text exposition
    /// format: `# HELP` / `# TYPE` per family (names sorted), then one
    /// sample line per series (label sets sorted); histograms expand to
    /// cumulative `_bucket{le=…}` lines plus `_sum` and `_count`.
    pub fn render(&self) -> String {
        // name → sorted (labels → snapshot) map.
        let mut by_name: BTreeMap<String, BTreeMap<Vec<(String, String)>, SeriesValue>> =
            BTreeMap::new();
        for shard in &self.shards {
            for (key, series) in shard.read().unwrap().iter() {
                let value = match series {
                    Series::Counter(c) => SeriesValue::Counter(c.get()),
                    Series::Gauge(g) => SeriesValue::Gauge(g.get()),
                    Series::Histogram(h) => SeriesValue::Histogram(Box::new(h.snapshot())),
                };
                by_name
                    .entry(key.name.clone())
                    .or_default()
                    .insert(key.labels.clone(), value);
            }
        }
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, series) in &by_name {
            if let Some((help, kind)) = families.get(name) {
                out.push_str(&format!("# HELP {name} {help}\n"));
                out.push_str(&format!("# TYPE {name} {}\n", kind.as_str()));
            }
            for (labels, value) in series {
                match value {
                    SeriesValue::Counter(v) => {
                        out.push_str(&sample_line(name, labels, None, &v.to_string()));
                    }
                    SeriesValue::Gauge(v) => {
                        out.push_str(&sample_line(name, labels, None, &v.to_string()));
                    }
                    SeriesValue::Histogram(snap) => {
                        render_histogram(&mut out, name, labels, snap);
                    }
                }
            }
        }
        out
    }
}

enum SeriesValue {
    Counter(u64),
    Gauge(i64),
    // Boxed: a snapshot is 65 bucket counts, far larger than the scalars.
    Histogram(Box<HistogramSnapshot>),
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn sample_line(
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{}}} {value}\n", parts.join(","))
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    use crate::histogram::{bucket_upper_bound, NUM_BUCKETS};
    let mut cum = 0u64;
    // Emit the populated prefix of the bucket grid (always at least the
    // first bucket) so exposition stays compact while `le` values remain
    // comparable across scrapes: cumulative counts are monotone in `le`
    // by construction.
    let highest = snap
        .buckets
        .iter()
        .rposition(|&b| b > 0)
        .unwrap_or(0)
        .min(NUM_BUCKETS - 1);
    for (i, &b) in snap.buckets.iter().enumerate().take(highest + 1) {
        cum += b;
        let le = bucket_upper_bound(i).to_string();
        out.push_str(&sample_line(
            &format!("{name}_bucket"),
            labels,
            Some(("le", &le)),
            &cum.to_string(),
        ));
    }
    let count = snap.count();
    out.push_str(&sample_line(
        &format!("{name}_bucket"),
        labels,
        Some(("le", "+Inf")),
        &count.to_string(),
    ));
    out.push_str(&sample_line(
        &format!("{name}_sum"),
        labels,
        None,
        &snap.sum.to_string(),
    ));
    out.push_str(&sample_line(
        &format!("{name}_count"),
        labels,
        None,
        &count.to_string(),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instance() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", &[("dataset", "a")]);
        let b = r.counter("x_total", "help", &[("dataset", "a")]);
        a.add(3);
        assert_eq!(b.get(), 3);
        let other = r.counter("x_total", "help", &[("dataset", "b")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.counter("y_total", "h", &[("a", "1"), ("b", "2")]);
        let b = r.counter("y_total", "h", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("z_total", "h", &[]);
        let _ = r.gauge("z_total", "h", &[]);
    }

    #[test]
    fn render_contains_help_type_and_sorted_samples() {
        let r = Registry::new();
        r.counter("b_total", "b help", &[]).add(7);
        r.gauge("a_gauge", "a help", &[("shard", "0")]).set(-2);
        let h = r.histogram("lat_ns", "latency", &[("verb", "TOPK")]);
        h.record(5);
        h.record(100);
        let text = r.render();
        let a_pos = text.find("# HELP a_gauge a help").unwrap();
        let b_pos = text.find("# HELP b_total b help").unwrap();
        assert!(a_pos < b_pos, "families sorted by name");
        assert!(text.contains("# TYPE a_gauge gauge"));
        assert!(text.contains("a_gauge{shard=\"0\"} -2"));
        assert!(text.contains("b_total 7"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{verb=\"TOPK\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_sum{verb=\"TOPK\"} 105"));
        assert!(text.contains("lat_ns_count{verb=\"TOPK\"} 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let r = Registry::new();
        let h = r.histogram("m_ns", "m", &[]);
        for v in [1u64, 2, 2, 900, 70_000] {
            h.record(v);
        }
        let text = r.render();
        let mut last = 0u64;
        let mut saw_inf = false;
        for line in text.lines().filter(|l| l.starts_with("m_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
            saw_inf |= line.contains("le=\"+Inf\"");
        }
        assert!(saw_inf);
        assert_eq!(last, 5);
    }
}
