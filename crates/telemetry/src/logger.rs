//! Leveled structured logger with `key=value` lines.
//!
//! Lines look like `ts_ms=1723... level=warn event=worker-panic worker=3`
//! — one event name plus free-form fields, values quoted only when they
//! contain whitespace, quotes, or `=`. Sinks are pluggable: production
//! uses [`StderrSink`], tests capture lines in-memory with
//! [`BufferSink`]. A process-global logger ([`set_global`]/[`global`])
//! serves call sites that have no handle to thread one through.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 0,
    /// Degraded but continuing (panicked worker, failed compaction).
    Warn = 1,
    /// Lifecycle events (startup, recovery, drain).
    Info = 2,
    /// Per-request noise for debugging.
    Debug = 3,
}

impl Level {
    /// Parses a level name as accepted by `--log-level`.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Where formatted log lines go.
pub trait LogSink: Send + Sync {
    /// Emits one already-formatted line (no trailing newline).
    fn write_line(&self, line: &str);
}

/// Writes lines to stderr.
pub struct StderrSink;

impl LogSink for StderrSink {
    fn write_line(&self, line: &str) {
        eprintln!("{line}");
    }
}

/// Captures lines in memory — the test sink.
#[derive(Default)]
pub struct BufferSink {
    lines: Mutex<Vec<String>>,
}

impl BufferSink {
    /// An empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything logged so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }
}

impl LogSink for BufferSink {
    fn write_line(&self, line: &str) {
        self.lines.lock().unwrap().push(line.to_string());
    }
}

fn quote_value(v: &str) -> String {
    if !v.is_empty() && !v.chars().any(|c| c.is_whitespace() || c == '"' || c == '=') {
        return v.to_string();
    }
    format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
}

/// A leveled `key=value` logger bound to a sink.
pub struct Logger {
    level: AtomicU8,
    sink: Arc<dyn LogSink>,
}

impl Logger {
    /// A logger at `level` writing to `sink`.
    pub fn new(level: Level, sink: Arc<dyn LogSink>) -> Self {
        Logger {
            level: AtomicU8::new(level as u8),
            sink,
        }
    }

    /// Changes the minimum level at runtime.
    pub fn set_level(&self, level: Level) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// True when events at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        (level as u8) <= self.level.load(Ordering::Relaxed)
    }

    /// Emits `event` with `fields` at `level` (a no-op below the
    /// configured level).
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, &str)]) {
        if !self.enabled(level) {
            return;
        }
        let mut line = format!(
            "ts_ms={} level={} event={}",
            crate::slowlog::unix_ms(),
            level.as_str(),
            quote_value(event)
        );
        for (k, v) in fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&quote_value(v));
        }
        self.sink.write_line(&line);
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, &str)]) {
        self.log(Level::Error, event, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, &str)]) {
        self.log(Level::Warn, event, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, &str)]) {
        self.log(Level::Info, event, fields);
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&str, &str)]) {
        self.log(Level::Debug, event, fields);
    }
}

static GLOBAL: OnceLock<Arc<Logger>> = OnceLock::new();

/// Installs the process-global logger; the first caller wins and later
/// calls are ignored (returning false).
pub fn set_global(logger: Arc<Logger>) -> bool {
    GLOBAL.set(logger).is_ok()
}

/// The process-global logger (defaults to [`Level::Info`] on stderr if
/// [`set_global`] was never called).
pub fn global() -> Arc<Logger> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Logger::new(Level::Info, Arc::new(StderrSink)))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_gating_and_format() {
        let sink = Arc::new(BufferSink::new());
        let log = Logger::new(Level::Warn, sink.clone());
        log.info("ignored", &[]);
        log.debug("ignored", &[]);
        log.warn(
            "compaction-failed",
            &[("dataset", "web"), ("err", "disk full")],
        );
        log.error("boom", &[("code", "7")]);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("level=warn event=compaction-failed dataset=web err=\"disk full\"")
        );
        assert!(lines[0].starts_with("ts_ms="));
        assert!(lines[1].contains("level=error event=boom code=7"));
    }

    #[test]
    fn set_level_reopens_the_gate() {
        let sink = Arc::new(BufferSink::new());
        let log = Logger::new(Level::Error, sink.clone());
        log.debug("nope", &[]);
        log.set_level(Level::Debug);
        log.debug("yep", &[]);
        assert_eq!(sink.lines().len(), 1);
        assert!(log.enabled(Level::Debug));
    }

    #[test]
    fn values_with_specials_are_quoted() {
        assert_eq!(quote_value("plain"), "plain");
        assert_eq!(quote_value("has space"), "\"has space\"");
        assert_eq!(quote_value("a=b"), "\"a=b\"");
        assert_eq!(quote_value("q\"uote"), "\"q\\\"uote\"");
        assert_eq!(quote_value(""), "\"\"");
    }

    #[test]
    fn level_parse_round_trip() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
    }
}
