//! Std-only observability toolkit for the egobtw service.
//!
//! Four pieces, composable but independent:
//!
//! * [`Registry`] — sharded get-or-create metric registry handing out
//!   lock-free [`Counter`]/[`Gauge`]/[`Histogram`] handles, rendered to
//!   Prometheus text exposition by [`Registry::render`] and parsed back
//!   (for schema gates and scrapers) by [`prometheus::parse`];
//! * [`span`] — stack-allocated per-request phase tracing with engine
//!   work counters folded in, rendered as a single `trace=`-able token;
//! * [`SlowLog`] — ring-buffered capture of span breakdowns for requests
//!   crossing a runtime threshold;
//! * [`logger`] — leveled `key=value` structured logging with pluggable
//!   sinks (stderr in production, an in-memory buffer in tests).
//!
//! Everything here is dependency-free and makes no assumptions about the
//! serving stack; the `service` crate owns the metric names.

#![warn(missing_docs)]

pub mod histogram;
pub mod logger;
pub mod prometheus;
pub mod registry;
pub mod slowlog;
pub mod span;

pub use histogram::{
    bucket_index, bucket_upper_bound, closest_rank, percentile_sorted, Histogram, HistogramSnapshot,
};
pub use logger::{global, set_global, BufferSink, Level, LogSink, Logger, StderrSink};
pub use registry::{Counter, Gauge, MetricKind, Registry};
pub use slowlog::{unix_ms, SlowEntry, SlowLog};
pub use span::{Phase, PhaseTimer, Trace, WorkCounters};
