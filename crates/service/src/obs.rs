//! Service-level observability wiring: the metric names this crate owns.
//!
//! [`ServiceMetrics`] bundles the shared [`Registry`], the slow-query
//! log, the request-outcome counters, and the per-verb latency
//! histograms every request path records into. It is created once per
//! [`crate::Service`] and shared (via the service) with the TCP server
//! and the catalog, so one `METRICS` scrape covers every layer.
//!
//! Accounting contract (asserted by the conformance chaos driver):
//! every admitted command line lands in **exactly one** outcome bucket,
//! so at any scrape point
//!
//! ```text
//! egobtw_requests_admitted_total ==
//!     egobtw_requests_completed_total
//!   + egobtw_requests_cancelled_total
//!   + egobtw_requests_failed_total
//! ```
//!
//! `cancelled` covers deadline expiry and client-gone aborts; `failed`
//! covers every other `ERR` (parse errors and `ERR busy` sheds
//! included); `completed` is an `OK` reply — the `METRICS` command
//! counts itself *before* rendering, so the invariant holds within its
//! own scrape.

use egobtw_telemetry::{Counter, Histogram, Registry, SlowLog};
use std::collections::HashMap;
use std::sync::Arc;

/// How many slow-query entries the ring retains before evicting.
pub const SLOWLOG_CAP: usize = 128;

/// Every verb the request-latency histogram family is pre-registered
/// for (unknown verbs fall into the `"?"` series).
const VERBS: [&str; 13] = [
    "LOAD", "TOPK", "SCORE", "COMMON", "UPDATE", "STATS", "LIST", "DROP", "COMPACT", "PING",
    "METRICS", "SLOWLOG", "?",
];

/// Shared observability state of one [`crate::Service`].
pub struct ServiceMetrics {
    registry: Arc<Registry>,
    slowlog: Arc<SlowLog>,
    /// Command lines admitted for execution (bumped at line entry).
    pub admitted: Arc<Counter>,
    /// Lines answered with `OK`.
    pub completed: Arc<Counter>,
    /// Lines abandoned by deadline expiry or client disconnect.
    pub cancelled: Arc<Counter>,
    /// Lines answered with any other `ERR` (sheds and parse errors too).
    pub failed: Arc<Counter>,
    /// Per-verb request latency (total nanoseconds, log2 buckets).
    latency: HashMap<&'static str, Arc<Histogram>>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics::new(Arc::new(Registry::new()))
    }
}

impl ServiceMetrics {
    /// Wires the outcome counters and latency histograms into `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        let outcome = |name: &str, help: &str| registry.counter(name, help, &[]);
        let latency = VERBS
            .iter()
            .map(|&verb| {
                (
                    verb,
                    registry.histogram(
                        "egobtw_request_latency_ns",
                        "Server-side request latency in nanoseconds, by verb.",
                        &[("verb", verb)],
                    ),
                )
            })
            .collect();
        ServiceMetrics {
            admitted: outcome(
                "egobtw_requests_admitted_total",
                "Command lines admitted for execution.",
            ),
            completed: outcome(
                "egobtw_requests_completed_total",
                "Command lines answered with OK.",
            ),
            cancelled: outcome(
                "egobtw_requests_cancelled_total",
                "Command lines abandoned by deadline expiry or client disconnect.",
            ),
            failed: outcome(
                "egobtw_requests_failed_total",
                "Command lines answered with ERR (sheds and parse errors included).",
            ),
            latency,
            slowlog: Arc::new(SlowLog::new(SLOWLOG_CAP)),
            registry,
        }
    }

    /// The registry behind the `METRICS` exposition.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The slow-query ring drained by `SLOWLOG`.
    pub fn slowlog(&self) -> &Arc<SlowLog> {
        &self.slowlog
    }

    /// The latency histogram for `verb` (the `"?"` series for verbs that
    /// never parsed).
    pub fn latency(&self, verb: &str) -> &Histogram {
        self.latency.get(verb).unwrap_or_else(|| &self.latency["?"])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counters_and_latency_land_in_the_exposition() {
        let m = ServiceMetrics::default();
        m.admitted.inc();
        m.completed.inc();
        m.latency("TOPK").record(1_500);
        m.latency("NOPE").record(7); // unknown verb → "?" series
        let text = m.registry().render();
        assert!(text.contains("egobtw_requests_admitted_total 1"), "{text}");
        assert!(text.contains("egobtw_requests_completed_total 1"), "{text}");
        assert!(text.contains("egobtw_requests_cancelled_total 0"), "{text}");
        assert!(
            text.contains("egobtw_request_latency_ns_count{verb=\"TOPK\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("egobtw_request_latency_ns_count{verb=\"?\"} 1"),
            "{text}"
        );
    }
}
