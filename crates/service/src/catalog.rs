//! Graph catalog: named datasets with epoch-swapped immutable snapshots.
//!
//! Each [`Dataset`] is split into a writer side and a reader side:
//!
//! * the **writer** — a dynamic maintainer ([`LocalIndex`] or
//!   [`LazyTopK`]) behind a `Mutex`, owning the mutable graph. Update
//!   batches go through the maintainer's incremental path, then a fresh
//!   immutable CSR snapshot is built and published;
//! * the **reader** — an `RwLock<Arc<EpochSnapshot>>` holding the current
//!   epoch. Readers clone the `Arc` under a momentary read lock and then
//!   work entirely on immutable data, so a slow query never sees a
//!   half-applied batch and a slow writer never blocks query threads
//!   (the write lock is held only for the pointer swap).
//!
//! Every snapshot carries its own result cache; publishing a new epoch
//! abandons the old snapshot (and its cache) to the readers still holding
//! it, which makes cache invalidation structural — there is no way to
//! serve a stale cached answer for the current epoch.
//!
//! The three maintainer modes trade differently, which is the point of
//! the paper's Algorithm 5 vs 6 in a serving context: [`Mode::Local`]
//! keeps every score exact (any `k` is served straight from the index);
//! [`Mode::Lazy`] defers recomputation, so a snapshot published after
//! deletes may carry no exact maintained top-k — the service then decides
//! *when* to pay the refresh via [`Dataset::refresh_maintained`]
//! ([`LazyTopK::peek_top_k`] tells it whether the cost is due at all);
//! [`Mode::Delta`] keeps every score exact like `local` but re-certifies
//! the top-k incrementally per op, so publishing costs O(k log k) instead
//! of a full O(n log n) sort — the cheapest writer under update-heavy
//! load at small k.

use egobtw_core::registry::topk_from_scores;
use egobtw_dynamic::{DeltaIndex, EdgeOp, LazyTopK, LocalIndex};
use egobtw_graph::{CsrGraph, FxHashMap, VertexId};
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, RwLock};

/// How many maintained entries a [`Mode::Local`] dataset publishes into
/// each snapshot (requests with `k` at most this are answered without
/// touching an engine or the writer lock).
pub const DEFAULT_PUBLISH_K: usize = 64;

/// Maintainer choice for a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Exact local updates (Algorithm 5): all scores maintained; each
    /// snapshot publishes the top-`publish_k` entries.
    Local {
        /// How many entries each snapshot publishes.
        publish_k: usize,
    },
    /// Lazy maintenance (Algorithm 6) at a fixed `k`: snapshots publish
    /// exact entries only when the maintained set happens to be fully
    /// fresh; otherwise the refresh cost is deferred to the first reader
    /// that needs exact values.
    Lazy {
        /// The maintained `k`.
        k: usize,
    },
    /// Delta maintenance at a fixed `k`: per-pair contribution patching
    /// with an incrementally re-certified top-k heap. Every snapshot
    /// publishes exact entries (like `local`) but without re-sorting all
    /// `n` scores on each batch.
    Delta {
        /// The maintained `k`.
        k: usize,
    },
}

impl Default for Mode {
    fn default() -> Self {
        Mode::Local {
            publish_k: DEFAULT_PUBLISH_K,
        }
    }
}

impl Mode {
    /// Parses the wire form: `local`, `local:K`, `lazy:K`, or `delta:K`.
    pub fn parse(text: &str) -> Result<Mode, String> {
        let parse_k = |s: &str| s.parse::<usize>().map_err(|_| format!("bad mode k {s:?}"));
        if text == "local" {
            Ok(Mode::default())
        } else if let Some(k) = text.strip_prefix("local:") {
            Ok(Mode::Local {
                publish_k: parse_k(k)?,
            })
        } else if let Some(k) = text.strip_prefix("lazy:") {
            let k = parse_k(k)?;
            if k == 0 {
                return Err("lazy:k needs k ≥ 1".into());
            }
            Ok(Mode::Lazy { k })
        } else if let Some(k) = text.strip_prefix("delta:") {
            let k = parse_k(k)?;
            if k == 0 {
                return Err("delta:k needs k ≥ 1".into());
            }
            Ok(Mode::Delta { k })
        } else {
            Err(format!(
                "bad mode {text:?}: expected local, local:K, lazy:K, or delta:K"
            ))
        }
    }

    /// The wire form parsed by [`Mode::parse`].
    pub fn render(&self) -> String {
        match self {
            Mode::Local { publish_k } => format!("local:{publish_k}"),
            Mode::Lazy { k } => format!("lazy:{k}"),
            Mode::Delta { k } => format!("delta:{k}"),
        }
    }

    /// Splits a CLI `PATH[:MODE]` spec, trying the longest mode suffix
    /// first (`…:lazy:8` before `…:local`) so paths containing `:` still
    /// work. Shared by `egobtw-serve --load` and `egobtw-cli --dataset`.
    pub fn split_path_mode(rest: &str) -> (String, Mode) {
        let segments: Vec<&str> = rest.split(':').collect();
        for take in [2usize, 1] {
            if segments.len() > take {
                let suffix = segments[segments.len() - take..].join(":");
                if let Ok(mode) = Mode::parse(&suffix) {
                    return (rest[..rest.len() - suffix.len() - 1].to_string(), mode);
                }
            }
        }
        (rest.to_string(), Mode::default())
    }
}

/// Cache key for one hot query at one epoch.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub enum CacheKey {
    /// A top-k answer under a named engine (`auto` included).
    TopK {
        /// Engine name.
        engine: String,
        /// Requested k.
        k: usize,
    },
    /// One vertex's exact score.
    Score(VertexId),
}

/// Shared, immutable ranked entries — the currency of the result cache.
pub type SharedEntries = Arc<Vec<(VertexId, f64)>>;

/// One immutable published epoch of a dataset.
pub struct EpochSnapshot {
    /// Epoch number: 0 at load, +1 per published update batch.
    pub epoch: u64,
    /// The graph at this epoch.
    pub graph: Arc<CsrGraph>,
    /// Exact maintained top-k entries published with the snapshot, when
    /// the maintainer had them: always for [`Mode::Local`] (length
    /// `min(publish_k, n)`), and for [`Mode::Lazy`] only when the peek was
    /// fully fresh at publish time.
    pub maintained: Option<Vec<(VertexId, f64)>>,
    /// For [`Mode::Lazy`]: how many maintained members were stale at
    /// publish time (0 whenever `maintained` is `Some`).
    pub stale_members: usize,
    /// Per-epoch result cache. Dies with the snapshot, which *is* the
    /// invalidation scheme.
    cache: Mutex<FxHashMap<CacheKey, SharedEntries>>,
}

impl EpochSnapshot {
    fn new(
        epoch: u64,
        graph: Arc<CsrGraph>,
        maintained: Option<Vec<(VertexId, f64)>>,
        stale_members: usize,
    ) -> Self {
        EpochSnapshot {
            epoch,
            graph,
            maintained,
            stale_members,
            cache: Mutex::new(FxHashMap::default()),
        }
    }

    /// Cache lookup.
    pub fn cache_get(&self, key: &CacheKey) -> Option<SharedEntries> {
        self.cache.lock().unwrap().get(key).cloned()
    }

    /// Cache insert (last writer wins; all writers computed the same
    /// answer for this epoch, so races are benign).
    pub fn cache_put(&self, key: CacheKey, value: SharedEntries) {
        self.cache.lock().unwrap().insert(key, value);
    }
}

/// Writer-side state: the maintainer plus the epoch it has reached.
enum Maintainer {
    Local(LocalIndex),
    Lazy(Box<LazyTopK>),
    Delta(Box<DeltaIndex>),
}

struct Writer {
    maintainer: Maintainer,
    epoch: u64,
    /// Total ops accepted (graph actually changed) since load.
    ops_applied: u64,
}

/// Outcome of one published update batch.
#[derive(Clone, Copy, Debug)]
pub struct UpdateOutcome {
    /// Epoch of the snapshot the batch published.
    pub epoch: u64,
    /// Ops that changed the graph.
    pub applied: usize,
    /// No-op or out-of-range ops skipped (forgiving stream semantics,
    /// matching [`egobtw_dynamic::replay_graph`]).
    pub skipped: usize,
    /// Vertex count after the batch.
    pub n: usize,
    /// Edge count after the batch.
    pub m: usize,
}

/// A named dataset: writer-side maintainer + reader-side current snapshot.
pub struct Dataset {
    name: String,
    mode: Mode,
    writer: Mutex<Writer>,
    current: RwLock<Arc<EpochSnapshot>>,
    /// Cumulative cache counters (across epochs; the per-epoch caches
    /// themselves are dropped on every publish).
    pub cache_hits: AtomicU64,
    /// See [`Dataset::cache_hits`].
    pub cache_misses: AtomicU64,
}

impl Dataset {
    /// Builds the maintainer on `g` and publishes epoch 0.
    pub fn new(name: impl Into<String>, g: CsrGraph, mode: Mode) -> Self {
        let (maintainer, maintained, stale) = match mode {
            Mode::Local { publish_k } => {
                let li = LocalIndex::new(&g);
                let top = li.top_k(publish_k);
                (Maintainer::Local(li), Some(top), 0)
            }
            Mode::Lazy { k } => {
                let lz = LazyTopK::new(&g, k);
                let peek = lz.peek_top_k();
                // A fresh build is always fully exact.
                debug_assert_eq!(peek.stale_members, 0);
                (Maintainer::Lazy(Box::new(lz)), Some(peek.entries), 0)
            }
            Mode::Delta { k } => {
                let di = DeltaIndex::new(&g, k);
                let top = di.top_k();
                (Maintainer::Delta(Box::new(di)), Some(top), 0)
            }
        };
        let snapshot = EpochSnapshot::new(0, Arc::new(g), maintained, stale);
        Dataset {
            name: name.into(),
            mode,
            writer: Mutex::new(Writer {
                maintainer,
                epoch: 0,
                ops_applied: 0,
            }),
            current: RwLock::new(Arc::new(snapshot)),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// The dataset's catalog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The maintainer mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Total ops that changed the graph since load.
    pub fn ops_applied(&self) -> u64 {
        self.writer.lock().unwrap().ops_applied
    }

    /// The current snapshot. The read lock is held only for the clone.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.current.read().unwrap().clone()
    }

    /// Applies one update batch through the maintainer and publishes a new
    /// epoch. Ops whose endpoints are out of range, self-loops, duplicate
    /// inserts, and absent deletes are counted as skipped.
    pub fn apply_updates(&self, ops: &[EdgeOp]) -> UpdateOutcome {
        let mut w = self.writer.lock().unwrap();
        let n = match &w.maintainer {
            Maintainer::Local(li) => li.graph().n(),
            Maintainer::Lazy(lz) => lz.graph().n(),
            Maintainer::Delta(di) => di.graph().n(),
        };
        let mut applied = 0usize;
        for &op in ops {
            let (u, v) = op.endpoints();
            if (u as usize) >= n || (v as usize) >= n {
                continue; // skipped: out of range
            }
            let changed = match &mut w.maintainer {
                Maintainer::Local(li) => li.apply(op),
                Maintainer::Lazy(lz) => lz.apply(op),
                Maintainer::Delta(di) => di.apply(op),
            };
            if changed {
                applied += 1;
            }
        }
        w.epoch += 1;
        w.ops_applied += applied as u64;
        let snapshot = self.publish_locked(&mut w);
        let (sn, sm) = (snapshot.graph.n(), snapshot.graph.m());
        let epoch = snapshot.epoch;
        *self.current.write().unwrap() = snapshot;
        UpdateOutcome {
            epoch,
            applied,
            skipped: ops.len() - applied,
            n: sn,
            m: sm,
        }
    }

    /// Builds the snapshot for the writer's current state. Called with the
    /// writer lock held; the expensive part (CSR rebuild, maintained
    /// top-k read-off) happens outside any reader-visible lock.
    fn publish_locked(&self, w: &mut Writer) -> Arc<EpochSnapshot> {
        let (graph, maintained, stale) = match (&mut w.maintainer, self.mode) {
            (Maintainer::Local(li), Mode::Local { publish_k }) => {
                (Arc::new(li.graph().to_csr()), Some(li.top_k(publish_k)), 0)
            }
            (Maintainer::Lazy(lz), Mode::Lazy { .. }) => {
                let peek = lz.peek_top_k();
                let maintained = (peek.stale_members == 0).then_some(peek.entries);
                (
                    Arc::new(lz.graph().to_csr()),
                    maintained,
                    peek.stale_members,
                )
            }
            // The delta heap is re-certified after every applied op, so
            // the read-off is O(k log k) — no full sort on publish.
            (Maintainer::Delta(di), Mode::Delta { .. }) => {
                (Arc::new(di.graph().to_csr()), Some(di.top_k()), 0)
            }
            _ => unreachable!("maintainer/mode pairing is fixed at construction"),
        };
        Arc::new(EpochSnapshot::new(w.epoch, graph, maintained, stale))
    }

    /// Pays the deferred lazy refresh for `epoch`, if the writer is still
    /// at that epoch: refreshes the maintained set to exact values,
    /// republishes the snapshot (same epoch, same graph, `maintained`
    /// filled in), and returns the entries. Returns `None` when the writer
    /// has already moved past `epoch` (the caller falls back to running an
    /// engine on its snapshot) or the dataset is not lazy.
    pub fn refresh_maintained(&self, epoch: u64) -> Option<Vec<(VertexId, f64)>> {
        let mut w = self.writer.lock().unwrap();
        if w.epoch != epoch {
            return None;
        }
        let Maintainer::Lazy(lz) = &mut w.maintainer else {
            return None;
        };
        let entries = lz.top_k();
        let snapshot = self.publish_locked(&mut w);
        debug_assert_eq!(snapshot.epoch, epoch);
        debug_assert!(snapshot.maintained.is_some());
        *self.current.write().unwrap() = snapshot;
        Some(entries)
    }

    /// Full exact score vector of the current writer state, computed from
    /// the published snapshot graph (used by STATS-style introspection and
    /// tests; not a hot path).
    pub fn exact_topk_uncached(&self, k: usize) -> Vec<(VertexId, f64)> {
        let snap = self.snapshot();
        topk_from_scores(&egobtw_core::compute_all(&snap.graph).0, k)
    }
}

/// The named-dataset catalog.
#[derive(Default)]
pub struct Catalog {
    datasets: RwLock<HashMap<String, Arc<Dataset>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a dataset built from `g`. Fails if the name is taken.
    pub fn insert(&self, name: &str, g: CsrGraph, mode: Mode) -> Result<Arc<Dataset>, String> {
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_graphic()) {
            return Err(format!("bad dataset name {name:?}"));
        }
        let mut map = self.datasets.write().unwrap();
        if map.contains_key(name) {
            return Err(format!("dataset {name:?} already loaded"));
        }
        let ds = Arc::new(Dataset::new(name, g, mode));
        map.insert(name.to_string(), ds.clone());
        Ok(ds)
    }

    /// Looks a dataset up.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>, String> {
        self.datasets
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| format!("no dataset {name:?} (use LOAD first)"))
    }

    /// All dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.datasets.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Removes a dataset. Readers holding its snapshots keep them alive
    /// until they finish.
    pub fn drop_dataset(&self, name: &str) -> Result<(), String> {
        self.datasets
            .write()
            .unwrap()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| format!("no dataset {name:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_gen::classic;

    #[test]
    fn mode_parse_and_render_roundtrip() {
        for text in ["local:64", "local:10", "lazy:8", "delta:8", "delta:1"] {
            assert_eq!(Mode::parse(text).unwrap().render(), text);
        }
        assert_eq!(Mode::parse("local").unwrap(), Mode::default());
        for bad in [
            "", "lazy", "lazy:0", "lazy:x", "local:", "exact", "delta", "delta:0", "delta:x",
        ] {
            assert!(Mode::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn split_path_mode_handles_colons_in_paths() {
        assert_eq!(
            Mode::split_path_mode("/tmp/a.snap:lazy:8"),
            ("/tmp/a.snap".to_string(), Mode::Lazy { k: 8 })
        );
        assert_eq!(
            Mode::split_path_mode("/tmp/a.snap:local"),
            ("/tmp/a.snap".to_string(), Mode::default())
        );
        assert_eq!(
            Mode::split_path_mode("/tmp/a.snap"),
            ("/tmp/a.snap".to_string(), Mode::default())
        );
        // A ':' that is not a mode suffix stays part of the path.
        assert_eq!(
            Mode::split_path_mode("C:/data/a.snap"),
            ("C:/data/a.snap".to_string(), Mode::default())
        );
        assert_eq!(
            Mode::split_path_mode("/tmp/a.snap:delta:4"),
            ("/tmp/a.snap".to_string(), Mode::Delta { k: 4 })
        );
    }

    #[test]
    fn epoch_advances_and_snapshots_are_isolated() {
        let ds = Dataset::new("k", classic::karate_club(), Mode::default());
        let before = ds.snapshot();
        assert_eq!(before.epoch, 0);
        let out = ds.apply_updates(&[EdgeOp::Insert(0, 9), EdgeOp::Insert(0, 9)]);
        assert_eq!(out.epoch, 1);
        assert_eq!((out.applied, out.skipped), (1, 1));
        let after = ds.snapshot();
        assert_eq!(after.epoch, 1);
        // The old snapshot is untouched: readers in flight see epoch 0.
        assert_eq!(before.epoch, 0);
        assert_eq!(before.graph.m() + 1, after.graph.m());
        assert!(!before.graph.has_edge(0, 9) && after.graph.has_edge(0, 9));
    }

    #[test]
    fn out_of_range_and_self_loop_ops_are_skipped() {
        let ds = Dataset::new("k", classic::star(5), Mode::default());
        let out = ds.apply_updates(&[
            EdgeOp::Insert(0, 99), // out of range
            EdgeOp::Insert(3, 3),  // self-loop
            EdgeOp::Delete(1, 2),  // absent
            EdgeOp::Insert(1, 2),  // applies
        ]);
        assert_eq!((out.applied, out.skipped), (1, 3));
        assert_eq!(ds.ops_applied(), 1);
    }

    #[test]
    fn local_mode_publishes_exact_maintained_topk() {
        let g = classic::karate_club();
        let ds = Dataset::new("k", g.clone(), Mode::Local { publish_k: 7 });
        let snap = ds.snapshot();
        let maintained = snap.maintained.as_ref().unwrap();
        assert_eq!(maintained.len(), 7);
        let truth = topk_from_scores(&egobtw_core::compute_all(&g).0, 7);
        for ((_, a), (_, b)) in maintained.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_mode_publishes_exact_maintained_topk_every_epoch() {
        let g = classic::karate_club();
        let ds = Dataset::new("k", g.clone(), Mode::Delta { k: 5 });
        let check = |snap: &EpochSnapshot| {
            let maintained = snap.maintained.as_ref().expect("delta always publishes");
            let truth = topk_from_scores(&egobtw_core::compute_all(&snap.graph).0, 5);
            assert_eq!(maintained.len(), truth.len());
            for ((_, a), (_, b)) in maintained.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        };
        check(&ds.snapshot());
        // Deletes — the case where lazy defers — still publish exact.
        ds.apply_updates(&[EdgeOp::Delete(0, 1), EdgeOp::Insert(9, 15)]);
        let snap = ds.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.stale_members, 0);
        check(&snap);
        // Refresh is a lazy-only concept; delta has nothing deferred.
        assert!(ds.refresh_maintained(1).is_none());
    }

    #[test]
    fn lazy_mode_defers_and_refresh_republishes_same_epoch() {
        // Deleting an edge with common neighbors leaves stale members
        // (Example 8), so the published snapshot defers the refresh.
        let g = egobtw_gen::toy::paper_graph();
        let ds = Dataset::new("toy", g, Mode::Lazy { k: 12 });
        assert!(ds.snapshot().maintained.is_some(), "fresh at load");
        ds.apply_updates(&[EdgeOp::Delete(
            egobtw_gen::toy::ids::C,
            egobtw_gen::toy::ids::G,
        )]);
        let snap = ds.snapshot();
        assert_eq!(snap.epoch, 1);
        assert!(snap.maintained.is_none(), "stale members defer publish");
        assert!(snap.stale_members > 0);
        // Paying the refresh republishes the same epoch with entries.
        let entries = ds.refresh_maintained(1).expect("writer still at epoch 1");
        let snap2 = ds.snapshot();
        assert_eq!(snap2.epoch, 1);
        assert_eq!(snap2.maintained.as_ref().unwrap(), &entries);
        assert!(Arc::ptr_eq(&snap.graph, &snap2.graph) || snap.graph.m() == snap2.graph.m());
        // Refresh for a stale epoch is refused.
        ds.apply_updates(&[EdgeOp::Insert(0, 5)]);
        assert!(ds.refresh_maintained(1).is_none());
    }

    #[test]
    fn cache_lives_and_dies_with_the_epoch() {
        let ds = Dataset::new("k", classic::karate_club(), Mode::default());
        let key = CacheKey::TopK {
            engine: "auto".into(),
            k: 3,
        };
        let snap = ds.snapshot();
        assert!(snap.cache_get(&key).is_none());
        snap.cache_put(key.clone(), Arc::new(vec![(0, 1.0)]));
        assert!(snap.cache_get(&key).is_some());
        ds.apply_updates(&[EdgeOp::Insert(0, 9)]);
        assert!(
            ds.snapshot().cache_get(&key).is_none(),
            "new epoch starts with an empty cache"
        );
    }

    #[test]
    fn catalog_insert_get_list_drop() {
        let cat = Catalog::new();
        cat.insert("a", classic::star(4), Mode::default()).unwrap();
        cat.insert("b", classic::path(4), Mode::Lazy { k: 2 })
            .unwrap();
        assert!(cat.insert("a", classic::star(4), Mode::default()).is_err());
        assert!(cat
            .insert("bad name", classic::star(4), Mode::default())
            .is_err());
        assert_eq!(cat.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cat.get("b").unwrap().mode(), Mode::Lazy { k: 2 });
        assert!(cat.get("c").is_err());
        cat.drop_dataset("a").unwrap();
        assert!(cat.drop_dataset("a").is_err());
        assert_eq!(cat.names(), vec!["b".to_string()]);
    }
}
