//! Graph catalog: named datasets with epoch-swapped immutable snapshots,
//! sharded maps, per-shard writer pools, and optional durability.
//!
//! Each [`Dataset`] is split into a writer side and a reader side:
//!
//! * the **writer** — a dynamic maintainer ([`LocalIndex`] or
//!   [`LazyTopK`]) behind a `Mutex`, owning the mutable graph. Update
//!   batches go through the maintainer's incremental path, then a fresh
//!   immutable CSR snapshot is built and published;
//! * the **reader** — an `RwLock<Arc<EpochSnapshot>>` holding the current
//!   epoch. Readers clone the `Arc` under a momentary read lock and then
//!   work entirely on immutable data, so a slow query never sees a
//!   half-applied batch and a slow writer never blocks query threads
//!   (the write lock is held only for the pointer swap).
//!
//! Every snapshot carries its own result cache; publishing a new epoch
//! abandons the old snapshot (and its cache) to the readers still holding
//! it, which makes cache invalidation structural — there is no way to
//! serve a stale cached answer for the current epoch. Within an epoch the
//! cache also **coalesces**: the first requester of a key claims a
//! compute ticket and everyone else arriving before it finishes blocks on
//! the pending slot instead of redundantly running the same engine
//! ([`EpochSnapshot::claim`]).
//!
//! The catalog itself is split into [`Catalog`] **shards** keyed by a
//! hash of the dataset name. Each shard has its own map lock and its own
//! lazily-spawned writer pool, so a writer storm on one dataset never
//! contends with lookups — or updates — of datasets living in other
//! shards.
//!
//! With a [`PersistConfig`], every dataset additionally owns a directory
//! holding a manifest, a CSR snapshot, and a write-ahead log of its
//! update batches (see [`crate::wal`]). The WAL append lands — and, under
//! [`crate::wal::FsyncPolicy::Always`], is fsynced — *before* the epoch
//! is published to readers, so no client ever observes an epoch that a
//! restart could lose.
//!
//! The three maintainer modes trade differently, which is the point of
//! the paper's Algorithm 5 vs 6 in a serving context: [`Mode::Local`]
//! keeps every score exact (any `k` is served straight from the index);
//! [`Mode::Lazy`] defers recomputation, so a snapshot published after
//! deletes may carry no exact maintained top-k — the service then decides
//! *when* to pay the refresh via [`Dataset::refresh_maintained`]
//! ([`LazyTopK::peek_top_k`] tells it whether the cost is due at all);
//! [`Mode::Delta`] keeps every score exact like `local` but re-certifies
//! the top-k incrementally per op, so publishing costs O(k log k) instead
//! of a full O(n log n) sort — the cheapest writer under update-heavy
//! load at small k.

use crate::wal::{self, crash, PersistConfig, Wal, WalMetrics, WalRecord, WAL_FILE};
use egobtw_core::registry::topk_from_scores;
use egobtw_dynamic::{DeltaIndex, EdgeOp, LazyTopK, LocalIndex};
use egobtw_graph::io::fnv1a64;
use egobtw_graph::{CsrGraph, FxHashMap, VertexId};
use egobtw_telemetry::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::fs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// How many maintained entries a [`Mode::Local`] dataset publishes into
/// each snapshot (requests with `k` at most this are answered without
/// touching an engine or the writer lock).
pub const DEFAULT_PUBLISH_K: usize = 64;

/// Maintainer choice for a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Exact local updates (Algorithm 5): all scores maintained; each
    /// snapshot publishes the top-`publish_k` entries.
    Local {
        /// How many entries each snapshot publishes.
        publish_k: usize,
    },
    /// Lazy maintenance (Algorithm 6) at a fixed `k`: snapshots publish
    /// exact entries only when the maintained set happens to be fully
    /// fresh; otherwise the refresh cost is deferred to the first reader
    /// that needs exact values.
    Lazy {
        /// The maintained `k`.
        k: usize,
    },
    /// Delta maintenance at a fixed `k`: per-pair contribution patching
    /// with an incrementally re-certified top-k heap. Every snapshot
    /// publishes exact entries (like `local`) but without re-sorting all
    /// `n` scores on each batch.
    Delta {
        /// The maintained `k`.
        k: usize,
    },
}

impl Default for Mode {
    fn default() -> Self {
        Mode::Local {
            publish_k: DEFAULT_PUBLISH_K,
        }
    }
}

impl Mode {
    /// Parses the wire form: `local`, `local:K`, `lazy:K`, or `delta:K`.
    pub fn parse(text: &str) -> Result<Mode, String> {
        let parse_k = |s: &str| s.parse::<usize>().map_err(|_| format!("bad mode k {s:?}"));
        if text == "local" {
            Ok(Mode::default())
        } else if let Some(k) = text.strip_prefix("local:") {
            Ok(Mode::Local {
                publish_k: parse_k(k)?,
            })
        } else if let Some(k) = text.strip_prefix("lazy:") {
            let k = parse_k(k)?;
            if k == 0 {
                return Err("lazy:k needs k ≥ 1".into());
            }
            Ok(Mode::Lazy { k })
        } else if let Some(k) = text.strip_prefix("delta:") {
            let k = parse_k(k)?;
            if k == 0 {
                return Err("delta:k needs k ≥ 1".into());
            }
            Ok(Mode::Delta { k })
        } else {
            Err(format!(
                "bad mode {text:?}: expected local, local:K, lazy:K, or delta:K"
            ))
        }
    }

    /// The wire form parsed by [`Mode::parse`].
    pub fn render(&self) -> String {
        match self {
            Mode::Local { publish_k } => format!("local:{publish_k}"),
            Mode::Lazy { k } => format!("lazy:{k}"),
            Mode::Delta { k } => format!("delta:{k}"),
        }
    }

    /// Splits a CLI `PATH[:MODE]` spec, trying the longest mode suffix
    /// first (`…:lazy:8` before `…:local`) so paths containing `:` still
    /// work. Shared by `egobtw-serve --load` and `egobtw-cli --dataset`.
    pub fn split_path_mode(rest: &str) -> (String, Mode) {
        let segments: Vec<&str> = rest.split(':').collect();
        for take in [2usize, 1] {
            if segments.len() > take {
                let suffix = segments[segments.len() - take..].join(":");
                if let Ok(mode) = Mode::parse(&suffix) {
                    return (rest[..rest.len() - suffix.len() - 1].to_string(), mode);
                }
            }
        }
        (rest.to_string(), Mode::default())
    }
}

/// Cache key for one hot query at one epoch.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub enum CacheKey {
    /// A top-k answer under a named engine (`auto` included).
    TopK {
        /// Engine name.
        engine: String,
        /// Requested k.
        k: usize,
    },
    /// One vertex's exact score.
    Score(VertexId),
}

/// Shared, immutable ranked entries — the currency of the result cache.
pub type SharedEntries = Arc<Vec<(VertexId, f64)>>;

/// The in-flight side of a coalesced query: the first requester computes,
/// everyone else blocks here until the slot is filled.
pub struct PendingResult {
    state: Mutex<Option<Result<SharedEntries, String>>>,
    cv: Condvar,
}

impl PendingResult {
    fn new() -> Arc<Self> {
        Arc::new(PendingResult {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Blocks until the computing requester fills the slot.
    pub fn wait(&self) -> Result<SharedEntries, String> {
        let mut g = self.state.lock().unwrap();
        while g.is_none() {
            g = self.cv.wait(g).unwrap();
        }
        g.as_ref().unwrap().clone()
    }

    fn fill(&self, result: Result<SharedEntries, String>) {
        *self.state.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }
}

enum CacheSlot {
    Ready(SharedEntries),
    Pending(Arc<PendingResult>),
}

/// What [`EpochSnapshot::claim`] handed this requester.
pub enum Claim {
    /// The answer was cached — use it.
    Ready(SharedEntries),
    /// Another requester is computing the same key right now — call
    /// [`PendingResult::wait`].
    Wait(Arc<PendingResult>),
    /// This requester computes; it MUST consume the ticket via
    /// [`ComputeTicket::fulfill`] or [`ComputeTicket::fail`] (dropping it
    /// fails the waiters cleanly, so a panic cannot strand them).
    Compute(ComputeTicket),
}

/// Obligation to fill a claimed cache slot exactly once.
pub struct ComputeTicket {
    snap: Arc<EpochSnapshot>,
    key: CacheKey,
    slot: Arc<PendingResult>,
    done: bool,
}

impl ComputeTicket {
    /// Publishes the computed entries: caches them for later requesters at
    /// this epoch and wakes every coalesced waiter.
    pub fn fulfill(mut self, entries: SharedEntries) {
        self.snap
            .cache
            .lock()
            .unwrap()
            .insert(self.key.clone(), CacheSlot::Ready(entries.clone()));
        self.slot.fill(Ok(entries));
        self.done = true;
    }

    /// Propagates a computation error: the slot is vacated (a later
    /// requester may retry) and every waiter gets the error.
    pub fn fail(mut self, err: String) {
        self.snap.cache.lock().unwrap().remove(&self.key);
        self.slot.fill(Err(err));
        self.done = true;
    }
}

impl Drop for ComputeTicket {
    fn drop(&mut self) {
        if !self.done {
            self.snap.cache.lock().unwrap().remove(&self.key);
            self.slot
                .fill(Err("query computation aborted before completion".into()));
        }
    }
}

/// One immutable published epoch of a dataset.
pub struct EpochSnapshot {
    /// Epoch number: 0 at load (or the recovered epoch after a restart),
    /// +1 per published update batch.
    pub epoch: u64,
    /// The graph at this epoch.
    pub graph: Arc<CsrGraph>,
    /// Exact maintained top-k entries published with the snapshot, when
    /// the maintainer had them: always for [`Mode::Local`] (length
    /// `min(publish_k, n)`), and for [`Mode::Lazy`] only when the peek was
    /// fully fresh at publish time.
    pub maintained: Option<Vec<(VertexId, f64)>>,
    /// For [`Mode::Lazy`]: how many maintained members were stale at
    /// publish time (0 whenever `maintained` is `Some`).
    pub stale_members: usize,
    /// Per-epoch result cache. Dies with the snapshot, which *is* the
    /// invalidation scheme.
    cache: Mutex<FxHashMap<CacheKey, CacheSlot>>,
}

impl EpochSnapshot {
    fn new(
        epoch: u64,
        graph: Arc<CsrGraph>,
        maintained: Option<Vec<(VertexId, f64)>>,
        stale_members: usize,
    ) -> Self {
        EpochSnapshot {
            epoch,
            graph,
            maintained,
            stale_members,
            cache: Mutex::new(FxHashMap::default()),
        }
    }

    /// Cache lookup (ready answers only; pending slots are invisible here
    /// — use [`EpochSnapshot::claim`] to coalesce).
    pub fn cache_get(&self, key: &CacheKey) -> Option<SharedEntries> {
        match self.cache.lock().unwrap().get(key) {
            Some(CacheSlot::Ready(v)) => Some(v.clone()),
            _ => None,
        }
    }

    /// Cache insert (last writer wins; all writers computed the same
    /// answer for this epoch, so races are benign). If a pending slot was
    /// occupying the key, its waiters get this value.
    pub fn cache_put(&self, key: CacheKey, value: SharedEntries) {
        let previous = self
            .cache
            .lock()
            .unwrap()
            .insert(key, CacheSlot::Ready(value.clone()));
        if let Some(CacheSlot::Pending(p)) = previous {
            p.fill(Ok(value));
        }
    }

    /// Coalescing entry point: atomically either returns the cached
    /// answer, joins an in-flight computation, or makes this requester the
    /// computing one (single-flight per key per epoch).
    pub fn claim(self: &Arc<Self>, key: CacheKey) -> Claim {
        let mut cache = self.cache.lock().unwrap();
        match cache.get(&key) {
            Some(CacheSlot::Ready(v)) => Claim::Ready(v.clone()),
            Some(CacheSlot::Pending(p)) => Claim::Wait(p.clone()),
            None => {
                let slot = PendingResult::new();
                cache.insert(key.clone(), CacheSlot::Pending(slot.clone()));
                Claim::Compute(ComputeTicket {
                    snap: self.clone(),
                    key,
                    slot,
                    done: false,
                })
            }
        }
    }
}

/// Writer-side state: the maintainer plus the epoch it has reached.
enum Maintainer {
    Local(LocalIndex),
    Lazy(Box<LazyTopK>),
    Delta(Box<DeltaIndex>),
}

impl Maintainer {
    fn build(g: &CsrGraph, mode: Mode) -> (Maintainer, Option<Vec<(VertexId, f64)>>, usize) {
        match mode {
            Mode::Local { publish_k } => {
                let li = LocalIndex::new(g);
                let top = li.top_k(publish_k);
                (Maintainer::Local(li), Some(top), 0)
            }
            Mode::Lazy { k } => {
                let lz = LazyTopK::new(g, k);
                let peek = lz.peek_top_k();
                // A fresh build is always fully exact.
                debug_assert_eq!(peek.stale_members, 0);
                (Maintainer::Lazy(Box::new(lz)), Some(peek.entries), 0)
            }
            Mode::Delta { k } => {
                let di = DeltaIndex::new(g, k);
                let top = di.top_k();
                (Maintainer::Delta(Box::new(di)), Some(top), 0)
            }
        }
    }

    fn n(&self) -> usize {
        match self {
            Maintainer::Local(li) => li.graph().n(),
            Maintainer::Lazy(lz) => lz.graph().n(),
            Maintainer::Delta(di) => di.graph().n(),
        }
    }

    fn apply(&mut self, op: EdgeOp) -> bool {
        match self {
            Maintainer::Local(li) => li.apply(op),
            Maintainer::Lazy(lz) => lz.apply(op),
            Maintainer::Delta(di) => di.apply(op),
        }
    }

    fn to_csr(&self) -> CsrGraph {
        match self {
            Maintainer::Local(li) => li.graph().to_csr(),
            Maintainer::Lazy(lz) => lz.graph().to_csr(),
            Maintainer::Delta(di) => di.graph().to_csr(),
        }
    }
}

/// Durable state of one dataset: its directory, open WAL, and compaction
/// cadence. Lives inside the writer lock, so appends are serialized with
/// the maintainer mutations they log.
struct DatasetPersist {
    dir: std::path::PathBuf,
    wal: Wal,
    compact_every: u64,
}

/// What the writer remembers about the last sequenced batch it applied —
/// enough to recognize a client's retry of an already-acked batch (same
/// expected-epoch token, same ops) and re-ack it without reapplying.
#[derive(Clone, Copy, Debug)]
struct SeqRecord {
    seq: u64,
    ops_hash: u64,
    outcome: UpdateOutcome,
}

struct Writer {
    maintainer: Maintainer,
    epoch: u64,
    /// Total ops accepted (graph actually changed) since load or recovery.
    ops_applied: u64,
    persist: Option<DatasetPersist>,
    /// Last `seq=`-tokened batch applied (None after restart — recovery
    /// clients resolve ambiguity by comparing STATS epoch to their token).
    last_seq: Option<SeqRecord>,
}

/// Order-sensitive fingerprint of an op batch, for duplicate detection.
fn ops_fingerprint(ops: &[EdgeOp]) -> u64 {
    let mut bytes = Vec::with_capacity(ops.len() * 9);
    for op in ops {
        bytes.push(match op {
            EdgeOp::Insert(..) => b'+',
            EdgeOp::Delete(..) => b'-',
        });
        let (u, v) = op.endpoints();
        bytes.extend_from_slice(&u.to_le_bytes());
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Outcome of one published update batch.
#[derive(Clone, Copy, Debug)]
pub struct UpdateOutcome {
    /// Epoch of the snapshot the batch published.
    pub epoch: u64,
    /// Ops that changed the graph.
    pub applied: usize,
    /// No-op or out-of-range ops skipped (forgiving stream semantics,
    /// matching [`egobtw_dynamic::replay_graph`]).
    pub skipped: usize,
    /// Vertex count after the batch.
    pub n: usize,
    /// Edge count after the batch.
    pub m: usize,
}

/// What a restart reconstructed for one dataset.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Epoch of the snapshot file recovery started from.
    pub snapshot_epoch: u64,
    /// Epoch reached after replaying the WAL tail.
    pub epoch: u64,
    /// WAL records replayed (epochs past the snapshot).
    pub replayed: usize,
    /// Whether a torn tail was discarded from the WAL.
    pub torn_tail: bool,
}

/// Per-dataset telemetry bundle. Detached handles by default (usable
/// standalone in tests); [`Catalog::insert`] and [`Catalog::recover_all`]
/// swap in registry-backed handles labeled `dataset`/`shard`, so one
/// `METRICS` scrape covers every dataset of the catalog.
#[derive(Clone, Default)]
pub struct DatasetMetrics {
    /// Queries answered from the per-epoch result cache (cumulative
    /// across epochs; the caches themselves die on every publish).
    pub cache_hits: Arc<Counter>,
    /// Queries that had to run an engine.
    pub cache_misses: Arc<Counter>,
    /// Queries answered by joining another requester's in-flight
    /// computation of the same key at the same epoch.
    pub coalesced: Arc<Counter>,
    /// Cumulative pair samples drawn by `approx:` engine runs on this
    /// dataset (0 until the first approx query).
    pub approx_samples: Arc<Counter>,
    /// Cumulative adaptive rounds run before the approx stopping rule
    /// fired, across all `approx:` engine runs on this dataset.
    pub approx_rounds: Arc<Counter>,
    /// Exact ego-betweenness computations engines ran on this dataset.
    pub exact: Arc<Counter>,
    /// Candidate vertices engines pruned via upper bounds.
    pub pruned: Arc<Counter>,
    /// Triangles enumerated by engine computations.
    pub triangles: Arc<Counter>,
    /// Current published epoch.
    pub epoch: Arc<Gauge>,
    /// Stale maintained members at the current epoch (lazy mode; 0
    /// elsewhere).
    pub stale_members: Arc<Gauge>,
    /// Snapshot compactions completed.
    pub compactions: Arc<Counter>,
    /// WAL append/fsync counters handed to the dataset's [`Wal`].
    pub wal: WalMetrics,
}

impl DatasetMetrics {
    /// Registry-backed handles for `dataset` living in `shard`.
    pub fn registered(registry: &Registry, dataset: &str, shard: usize) -> Self {
        let shard = shard.to_string();
        let labels: &[(&str, &str)] = &[("dataset", dataset), ("shard", &shard)];
        let counter = |name, help: &str| registry.counter(name, help, labels);
        DatasetMetrics {
            cache_hits: counter(
                "egobtw_cache_hits_total",
                "Queries answered from the per-epoch result cache.",
            ),
            cache_misses: counter(
                "egobtw_cache_misses_total",
                "Queries that had to run an engine.",
            ),
            coalesced: counter(
                "egobtw_cache_coalesced_total",
                "Queries that joined another requester's in-flight computation.",
            ),
            approx_samples: counter(
                "egobtw_approx_samples_total",
                "Pair samples drawn by approx engine runs.",
            ),
            approx_rounds: counter(
                "egobtw_approx_rounds_total",
                "Adaptive rounds run by approx engine runs.",
            ),
            exact: counter(
                "egobtw_work_exact_total",
                "Exact ego-betweenness computations run by engines.",
            ),
            pruned: counter(
                "egobtw_work_pruned_total",
                "Candidate vertices pruned by engine upper bounds.",
            ),
            triangles: counter(
                "egobtw_work_triangles_total",
                "Triangles enumerated by engine computations.",
            ),
            epoch: registry.gauge("egobtw_dataset_epoch", "Current published epoch.", labels),
            stale_members: registry.gauge(
                "egobtw_dataset_stale_members",
                "Stale maintained members at the current epoch (lazy mode).",
                labels,
            ),
            compactions: counter(
                "egobtw_wal_compactions_total",
                "Snapshot compactions completed.",
            ),
            wal: WalMetrics {
                appends: counter("egobtw_wal_appends_total", "WAL records appended."),
                fsyncs: counter("egobtw_wal_fsyncs_total", "Explicit WAL data syncs."),
            },
        }
    }
}

/// A named dataset: writer-side maintainer + reader-side current snapshot.
pub struct Dataset {
    name: String,
    mode: Mode,
    writer: Mutex<Writer>,
    current: RwLock<Arc<EpochSnapshot>>,
    retired: AtomicBool,
    metrics: DatasetMetrics,
}

impl Dataset {
    /// Builds the maintainer on `g` and publishes epoch 0 (in-memory only;
    /// see [`Dataset::create_persistent`] for the durable variant).
    pub fn new(name: impl Into<String>, g: CsrGraph, mode: Mode) -> Self {
        let (maintainer, maintained, stale) = Maintainer::build(&g, mode);
        let snapshot = EpochSnapshot::new(0, Arc::new(g), maintained, stale);
        Dataset {
            name: name.into(),
            mode,
            writer: Mutex::new(Writer {
                maintainer,
                epoch: 0,
                ops_applied: 0,
                persist: None,
                last_seq: None,
            }),
            current: RwLock::new(Arc::new(snapshot)),
            retired: AtomicBool::new(false),
            metrics: DatasetMetrics::default(),
        }
    }

    /// Builds a durable dataset: creates `<cfg.dir>/<name>/`, writes the
    /// manifest and the epoch-0 snapshot, opens an empty WAL, then
    /// publishes epoch 0. A leftover directory from an interrupted
    /// creation or an earlier incarnation is replaced.
    pub fn create_persistent(
        name: &str,
        g: CsrGraph,
        mode: Mode,
        cfg: &PersistConfig,
    ) -> Result<Self, String> {
        let dir = cfg.dir.join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).map_err(|e| format!("create {dir:?}: {e}"))?;
        wal::write_manifest(&dir, name, mode).map_err(|e| format!("write manifest: {e}"))?;
        wal::write_snapshot_at(&dir, &g, 0).map_err(|e| format!("write snapshot: {e}"))?;
        let wal =
            Wal::create(&dir.join(WAL_FILE), cfg.fsync).map_err(|e| format!("create WAL: {e}"))?;
        let ds = Dataset::new(name, g, mode);
        ds.writer.lock().unwrap().persist = Some(DatasetPersist {
            dir,
            wal,
            compact_every: cfg.compact_every.max(1),
        });
        Ok(ds)
    }

    /// Rebuilds a dataset from its directory: newest parseable snapshot,
    /// then WAL tail replay (records at or before the snapshot epoch are
    /// skipped; a torn tail is truncated). The maintainer mode comes from
    /// the manifest, so a dataset recovers with the same serving semantics
    /// it was created with.
    pub fn recover(name: &str, cfg: &PersistConfig) -> Result<(Self, RecoveryReport), String> {
        let dir = cfg.dir.join(name);
        let (manifest_name, mode) = wal::read_manifest(&dir)?;
        if manifest_name != name {
            return Err(format!(
                "manifest in {dir:?} names dataset {manifest_name:?}, expected {name:?}"
            ));
        }
        let (snapshot_epoch, g) = wal::latest_snapshot(&dir)
            .ok_or_else(|| format!("no parseable snapshot in {dir:?}"))?;
        let (records, wal_handle, torn_tail) = Wal::recover(&dir.join(WAL_FILE), cfg.fsync)
            .map_err(|e| format!("recover WAL in {dir:?}: {e}"))?;
        let (mut maintainer, _, _) = Maintainer::build(&g, mode);
        let n = maintainer.n();
        let mut epoch = snapshot_epoch;
        let mut ops_applied = 0u64;
        let mut replayed = 0usize;
        for rec in &records {
            if rec.epoch <= snapshot_epoch {
                continue; // compacted away logically; crash kept the bytes
            }
            if rec.epoch != epoch + 1 {
                break; // an epoch gap means the tail is not trustworthy
            }
            for &op in &rec.ops {
                let (u, v) = op.endpoints();
                if (u as usize) >= n || (v as usize) >= n {
                    continue;
                }
                if maintainer.apply(op) {
                    ops_applied += 1;
                }
            }
            epoch = rec.epoch;
            replayed += 1;
        }
        let mut writer = Writer {
            maintainer,
            epoch,
            ops_applied,
            persist: Some(DatasetPersist {
                dir,
                wal: wal_handle,
                compact_every: cfg.compact_every.max(1),
            }),
            last_seq: None,
        };
        let snapshot = Self::build_snapshot(mode, &mut writer);
        let ds = Dataset {
            name: name.to_string(),
            mode,
            writer: Mutex::new(writer),
            current: RwLock::new(snapshot),
            retired: AtomicBool::new(false),
            metrics: DatasetMetrics::default(),
        };
        Ok((
            ds,
            RecoveryReport {
                snapshot_epoch,
                epoch,
                replayed,
                torn_tail,
            },
        ))
    }

    /// The dataset's catalog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dataset's telemetry handles (detached unless the dataset was
    /// created through a [`Catalog`]).
    pub fn metrics(&self) -> &DatasetMetrics {
        &self.metrics
    }

    /// Swaps in registry-backed telemetry (before the dataset becomes
    /// shared): wires the WAL counters through and seeds the epoch and
    /// staleness gauges from the current state.
    fn attach_metrics(&mut self, metrics: DatasetMetrics) {
        {
            let mut w = self.writer.lock().unwrap();
            if let Some(p) = w.persist.as_mut() {
                p.wal.set_metrics(metrics.wal.clone());
            }
            metrics.epoch.set(w.epoch as i64);
        }
        metrics
            .stale_members
            .set(self.snapshot().stale_members as i64);
        self.metrics = metrics;
    }

    /// The maintainer mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Whether this dataset journals its updates to a WAL.
    pub fn persisted(&self) -> bool {
        self.writer.lock().unwrap().persist.is_some()
    }

    /// Records currently in the WAL (0 when not persistent).
    pub fn wal_records(&self) -> u64 {
        self.writer
            .lock()
            .unwrap()
            .persist
            .as_ref()
            .map_or(0, |p| p.wal.records())
    }

    /// Whether the dataset has been retired by DROP (writes are refused).
    pub fn retired(&self) -> bool {
        self.retired.load(Ordering::SeqCst)
    }

    /// Total ops that changed the graph since load or recovery.
    pub fn ops_applied(&self) -> u64 {
        self.writer.lock().unwrap().ops_applied
    }

    /// The current snapshot. The read lock is held only for the clone.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.current.read().unwrap().clone()
    }

    /// Applies one update batch through the maintainer and publishes a new
    /// epoch. Ops whose endpoints are out of range, self-loops, duplicate
    /// inserts, and absent deletes are counted as skipped. For a durable
    /// dataset the raw batch is appended to the WAL (fsynced under
    /// [`crate::wal::FsyncPolicy::Always`]) *before* the publish, and a compaction
    /// runs afterwards once the WAL holds `compact_every` records.
    ///
    /// Errors when the dataset is retired, and on a WAL append failure —
    /// in which case the dataset retires itself, because the in-memory
    /// maintainer has advanced past what the log can replay.
    pub fn apply_updates(&self, ops: &[EdgeOp]) -> Result<UpdateOutcome, String> {
        self.apply_updates_seq(ops, None)
    }

    /// [`Dataset::apply_updates`] with an optional idempotency token: `seq`
    /// is the epoch the client believes is current, i.e. the epoch its ack
    /// would advance *from*. A batch whose token does not match the
    /// writer's epoch is refused (`stale seq`) — **unless** it re-sends the
    /// writer's last applied sequenced batch (same token, same ops), in
    /// which case the recorded outcome is re-acked without reapplying.
    /// That makes blind client retries of a lost `OK update` ack safe: at
    /// most one application, never a silent double-apply.
    pub fn apply_updates_seq(
        &self,
        ops: &[EdgeOp],
        seq: Option<u64>,
    ) -> Result<UpdateOutcome, String> {
        let mut w = self.writer.lock().unwrap();
        if self.retired() {
            return Err(format!("dataset {:?} is retired", self.name));
        }
        let ops_hash = seq.map(|_| ops_fingerprint(ops));
        if let Some(s) = seq {
            if let Some(last) = w.last_seq {
                if last.seq == s && Some(last.ops_hash) == ops_hash {
                    return Ok(last.outcome); // duplicate retry: re-ack
                }
            }
            if w.epoch != s {
                return Err(format!(
                    "stale seq={s}: dataset {:?} is at epoch {}",
                    self.name, w.epoch
                ));
            }
        }
        let n = w.maintainer.n();
        let mut applied = 0usize;
        for &op in ops {
            let (u, v) = op.endpoints();
            if (u as usize) >= n || (v as usize) >= n {
                continue; // skipped: out of range
            }
            if w.maintainer.apply(op) {
                applied += 1;
            }
        }
        let epoch = w.epoch + 1;
        if let Some(p) = w.persist.as_mut() {
            let rec = WalRecord {
                epoch,
                ops: ops.to_vec(),
            };
            if let Err(e) = p.wal.append(&rec) {
                self.retired.store(true, Ordering::SeqCst);
                return Err(format!(
                    "WAL append failed, dataset {:?} retired: {e}",
                    self.name
                ));
            }
            crash::abort_if("post-append");
        }
        w.epoch = epoch;
        w.ops_applied += applied as u64;
        let snapshot = Self::build_snapshot(self.mode, &mut w);
        let (sn, sm) = (snapshot.graph.n(), snapshot.graph.m());
        let stale = snapshot.stale_members;
        *self.current.write().unwrap() = snapshot;
        self.metrics.epoch.set(epoch as i64);
        self.metrics.stale_members.set(stale as i64);
        if let Some(p) = w.persist.as_ref() {
            if p.wal.records() >= p.compact_every {
                if let Err(e) = self.compact_locked(&mut w) {
                    // Compaction failure is not fatal: the WAL still holds
                    // every record a restart needs.
                    egobtw_telemetry::global().warn(
                        "compaction-failed",
                        &[("dataset", self.name.as_str()), ("error", e.as_str())],
                    );
                }
            }
        }
        let outcome = UpdateOutcome {
            epoch,
            applied,
            skipped: ops.len() - applied,
            n: sn,
            m: sm,
        };
        w.last_seq = seq.map(|s| SeqRecord {
            seq: s,
            ops_hash: ops_hash.unwrap_or(0),
            outcome,
        });
        Ok(outcome)
    }

    /// Forces the WAL's bytes to stable storage now, regardless of the
    /// fsync policy — the graceful-drain path calls this so an exit 0
    /// promises every acked epoch is durable even under
    /// [`crate::wal::FsyncPolicy::Never`]. No-op for in-memory datasets.
    pub fn sync_wal(&self) -> Result<(), String> {
        let mut w = self.writer.lock().unwrap();
        if let Some(p) = w.persist.as_mut() {
            p.wal
                .sync()
                .map_err(|e| format!("sync WAL of {:?}: {e}", self.name))?;
        }
        Ok(())
    }

    /// Forces a snapshot compaction now (also runs automatically every
    /// `compact_every` batches). Returns the epoch the snapshot captures.
    pub fn compact(&self) -> Result<u64, String> {
        let mut w = self.writer.lock().unwrap();
        if self.retired() {
            return Err(format!("dataset {:?} is retired", self.name));
        }
        self.compact_locked(&mut w)
    }

    fn compact_locked(&self, w: &mut Writer) -> Result<u64, String> {
        let epoch = w.epoch;
        let g = w.maintainer.to_csr();
        let Some(p) = w.persist.as_mut() else {
            return Err("dataset is not persistent".into());
        };
        wal::write_snapshot_at(&p.dir, &g, epoch).map_err(|e| format!("write snapshot: {e}"))?;
        p.wal.truncate().map_err(|e| format!("truncate WAL: {e}"))?;
        self.metrics.compactions.inc();
        Ok(epoch)
    }

    /// Retires the dataset: marks it refused-for-writes, waits for any
    /// in-flight batch to drain (by taking the writer lock), and deletes
    /// its on-disk directory. Readers holding old snapshots keep them
    /// until they finish; new writes get an error.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::SeqCst);
        let mut w = self.writer.lock().unwrap();
        if let Some(p) = w.persist.take() {
            let dir = p.dir.clone();
            drop(p); // close the WAL handle before unlinking
            let _ = fs::remove_dir_all(&dir);
        }
    }

    /// Builds the snapshot for the writer's current state. Called with the
    /// writer lock held; the expensive part (CSR rebuild, maintained
    /// top-k read-off) happens outside any reader-visible lock.
    fn build_snapshot(mode: Mode, w: &mut Writer) -> Arc<EpochSnapshot> {
        let (graph, maintained, stale) = match (&mut w.maintainer, mode) {
            (Maintainer::Local(li), Mode::Local { publish_k }) => {
                (Arc::new(li.graph().to_csr()), Some(li.top_k(publish_k)), 0)
            }
            (Maintainer::Lazy(lz), Mode::Lazy { .. }) => {
                let peek = lz.peek_top_k();
                let maintained = (peek.stale_members == 0).then_some(peek.entries);
                (
                    Arc::new(lz.graph().to_csr()),
                    maintained,
                    peek.stale_members,
                )
            }
            // The delta heap is re-certified after every applied op, so
            // the read-off is O(k log k) — no full sort on publish.
            (Maintainer::Delta(di), Mode::Delta { .. }) => {
                (Arc::new(di.graph().to_csr()), Some(di.top_k()), 0)
            }
            _ => unreachable!("maintainer/mode pairing is fixed at construction"),
        };
        Arc::new(EpochSnapshot::new(w.epoch, graph, maintained, stale))
    }

    /// Pays the deferred lazy refresh for `epoch`, if the writer is still
    /// at that epoch: refreshes the maintained set to exact values,
    /// republishes the snapshot (same epoch, same graph, `maintained`
    /// filled in), and returns the entries. Returns `None` when the writer
    /// has already moved past `epoch` (the caller falls back to running an
    /// engine on its snapshot) or the dataset is not lazy.
    pub fn refresh_maintained(&self, epoch: u64) -> Option<Vec<(VertexId, f64)>> {
        let mut w = self.writer.lock().unwrap();
        if w.epoch != epoch || self.retired() {
            return None;
        }
        let Maintainer::Lazy(lz) = &mut w.maintainer else {
            return None;
        };
        let entries = lz.top_k();
        let snapshot = Self::build_snapshot(self.mode, &mut w);
        debug_assert_eq!(snapshot.epoch, epoch);
        debug_assert!(snapshot.maintained.is_some());
        *self.current.write().unwrap() = snapshot;
        self.metrics.stale_members.set(0);
        Some(entries)
    }

    /// Full exact score vector of the current writer state, computed from
    /// the published snapshot graph (used by STATS-style introspection and
    /// tests; not a hot path).
    pub fn exact_topk_uncached(&self, k: usize) -> Vec<(VertexId, f64)> {
        let snap = self.snapshot();
        topk_from_scores(&egobtw_core::compute_all(&snap.graph).0, k)
    }
}

struct UpdateJob {
    ds: Arc<Dataset>,
    ops: Vec<EdgeOp>,
    seq: Option<u64>,
    reply: Sender<Result<UpdateOutcome, String>>,
}

struct WriterPool {
    tx: Sender<UpdateJob>,
    handles: Vec<JoinHandle<()>>,
}

impl WriterPool {
    fn spawn(workers: usize) -> WriterPool {
        let (tx, rx) = channel::<UpdateJob>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("egobtw-writer-{i}"))
                    .spawn(move || loop {
                        // Take the lock only to pull a job, never while
                        // applying — co-workers must be able to pull jobs
                        // for other datasets of this shard concurrently.
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => return,
                        };
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            job.ds.apply_updates_seq(&job.ops, job.seq)
                        }))
                        .unwrap_or_else(|_| Err("update worker panicked applying batch".into()));
                        let _ = job.reply.send(result);
                    })
                    .expect("spawn writer thread")
            })
            .collect();
        WriterPool { tx, handles }
    }
}

struct Shard {
    map: RwLock<HashMap<String, Arc<Dataset>>>,
    pool: Mutex<Option<WriterPool>>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: RwLock::new(HashMap::new()),
            pool: Mutex::new(None),
        }
    }
}

/// Catalog construction knobs.
#[derive(Clone)]
pub struct CatalogConfig {
    /// Independent shards (map locks + writer pools). Dataset names hash
    /// to a shard; operations on different shards never contend.
    pub shards: usize,
    /// Writer threads per shard (spawned lazily on the first routed
    /// update).
    pub writers_per_shard: usize,
    /// Durability; `None` keeps every dataset in-memory only.
    pub persist: Option<PersistConfig>,
    /// Registry every dataset's telemetry lands in. The service shares
    /// its own registry here so one `METRICS` scrape covers the catalog.
    pub registry: Arc<Registry>,
}

impl std::fmt::Debug for CatalogConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogConfig")
            .field("shards", &self.shards)
            .field("writers_per_shard", &self.writers_per_shard)
            .field("persist", &self.persist)
            .finish_non_exhaustive()
    }
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            shards: 8,
            writers_per_shard: 2,
            persist: None,
            registry: Arc::new(Registry::new()),
        }
    }
}

/// The named-dataset catalog, split into independent shards.
pub struct Catalog {
    shards: Vec<Shard>,
    writers_per_shard: usize,
    persist: Option<PersistConfig>,
    registry: Arc<Registry>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::with_config(CatalogConfig::default())
    }
}

impl Catalog {
    /// An empty in-memory catalog with the default shard count.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// An empty catalog with explicit sharding/durability knobs.
    pub fn with_config(cfg: CatalogConfig) -> Self {
        Catalog {
            shards: (0..cfg.shards.max(1)).map(|_| Shard::new()).collect(),
            writers_per_shard: cfg.writers_per_shard.max(1),
            persist: cfg.persist,
            registry: cfg.registry,
        }
    }

    /// The registry dataset telemetry lands in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Checks a dataset name: non-empty, at most 200 bytes, charset
    /// `[A-Za-z0-9._-]`, and not dots-only. Names become file-system path
    /// components once durability is on, so `/`, `\`, `..` and friends
    /// must never pass.
    pub fn validate_name(name: &str) -> Result<(), String> {
        let charset_ok = name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
        if name.is_empty() || name.len() > 200 || !charset_ok || name.bytes().all(|b| b == b'.') {
            return Err(format!(
                "bad dataset name {name:?}: need 1-200 chars of [A-Za-z0-9._-], not dots-only"
            ));
        }
        Ok(())
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[self.shard_of(name)]
    }

    /// The shard index `name` hashes to.
    pub fn shard_of(&self, name: &str) -> usize {
        (fnv1a64(name.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether datasets are created durable.
    pub fn persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// Registers a dataset built from `g`. Fails if the name is invalid
    /// (see [`Catalog::validate_name`]) or taken. With durability on, the
    /// dataset's directory, manifest, epoch-0 snapshot, and WAL are
    /// created before the insert becomes visible.
    pub fn insert(&self, name: &str, g: CsrGraph, mode: Mode) -> Result<Arc<Dataset>, String> {
        Self::validate_name(name)?;
        let shard = self.shard(name);
        // Build under the shard's write lock: only this shard blocks, and
        // two racing LOADs of one name cannot both create the directory.
        let mut map = shard.map.write().unwrap();
        if map.contains_key(name) {
            return Err(format!("dataset {name:?} already loaded"));
        }
        let mut ds = match &self.persist {
            Some(cfg) => Dataset::create_persistent(name, g, mode, cfg)?,
            None => Dataset::new(name, g, mode),
        };
        ds.attach_metrics(DatasetMetrics::registered(
            &self.registry,
            name,
            self.shard_of(name),
        ));
        let ds = Arc::new(ds);
        map.insert(name.to_string(), ds.clone());
        Ok(ds)
    }

    /// Looks a dataset up.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>, String> {
        self.shard(name)
            .map
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| format!("no dataset {name:?} (use LOAD first)"))
    }

    /// All dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.map.read().unwrap().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Routes an update batch through the dataset's shard writer pool and
    /// waits for the outcome. Batches for datasets in other shards run on
    /// other pools concurrently.
    pub fn apply_updates(&self, name: &str, ops: Vec<EdgeOp>) -> Result<UpdateOutcome, String> {
        self.apply_updates_seq(name, ops, None)
    }

    /// [`Catalog::apply_updates`] carrying the client's idempotency token
    /// through to [`Dataset::apply_updates_seq`].
    pub fn apply_updates_seq(
        &self,
        name: &str,
        ops: Vec<EdgeOp>,
        seq: Option<u64>,
    ) -> Result<UpdateOutcome, String> {
        let ds = self.get(name)?;
        let shard = self.shard(name);
        let (reply_tx, reply_rx) = channel();
        {
            let mut pool = shard.pool.lock().unwrap();
            let pool = pool.get_or_insert_with(|| WriterPool::spawn(self.writers_per_shard));
            pool.tx
                .send(UpdateJob {
                    ds,
                    ops,
                    seq,
                    reply: reply_tx,
                })
                .map_err(|_| "writer pool is shut down".to_string())?;
        }
        reply_rx
            .recv()
            .map_err(|_| "writer pool dropped the batch".to_string())?
    }

    /// Fsyncs every persistent dataset's WAL (see [`Dataset::sync_wal`]) —
    /// the drain path's durability barrier before exit 0. Returns the
    /// first error, after attempting every dataset.
    pub fn sync_all(&self) -> Result<(), String> {
        let mut first_err = None;
        for shard in &self.shards {
            let datasets: Vec<Arc<Dataset>> = shard.map.read().unwrap().values().cloned().collect();
            for ds in datasets {
                if let Err(e) = ds.sync_wal() {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Removes a dataset: unlinks it from the map (new lookups fail
    /// immediately), then retires it — draining any in-flight batch,
    /// refusing later writes, and deleting its WAL + snapshots. Readers
    /// holding its snapshots keep them alive until they finish.
    pub fn drop_dataset(&self, name: &str) -> Result<(), String> {
        let ds = self
            .shard(name)
            .map
            .write()
            .unwrap()
            .remove(name)
            .ok_or_else(|| format!("no dataset {name:?}"))?;
        // Outside the map lock: draining a mid-batch writer can take a
        // while, and lookups of other datasets must not wait for it.
        ds.retire();
        Ok(())
    }

    /// Recovers every dataset directory under the persistence root
    /// (directories holding a manifest), sorted by name. No-op for an
    /// in-memory catalog.
    pub fn recover_all(&self) -> Result<Vec<(String, RecoveryReport)>, String> {
        let Some(cfg) = self.persist.clone() else {
            return Ok(Vec::new());
        };
        let entries = match fs::read_dir(&cfg.dir) {
            Ok(e) => e,
            Err(_) => return Ok(Vec::new()), // nothing persisted yet
        };
        let mut names: Vec<String> = entries
            .flatten()
            .filter(|e| e.path().join(wal::MANIFEST_FILE).is_file())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| Self::validate_name(n).is_ok())
            .collect();
        names.sort();
        let mut out = Vec::new();
        for name in names {
            let (mut ds, report) = Dataset::recover(&name, &cfg)?;
            ds.attach_metrics(DatasetMetrics::registered(
                &self.registry,
                &name,
                self.shard_of(&name),
            ));
            self.shard(&name)
                .map
                .write()
                .unwrap()
                .insert(name.clone(), Arc::new(ds));
            out.push((name, report));
        }
        Ok(out)
    }
}

impl Drop for Catalog {
    fn drop(&mut self) {
        for shard in &self.shards {
            let pool = shard.pool.lock().unwrap().take();
            if let Some(pool) = pool {
                drop(pool.tx); // close the channel so workers exit
                for h in pool.handles {
                    let _ = h.join();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_gen::classic;

    #[test]
    fn mode_parse_and_render_roundtrip() {
        for text in ["local:64", "local:10", "lazy:8", "delta:8", "delta:1"] {
            assert_eq!(Mode::parse(text).unwrap().render(), text);
        }
        assert_eq!(Mode::parse("local").unwrap(), Mode::default());
        for bad in [
            "", "lazy", "lazy:0", "lazy:x", "local:", "exact", "delta", "delta:0", "delta:x",
        ] {
            assert!(Mode::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn split_path_mode_handles_colons_in_paths() {
        assert_eq!(
            Mode::split_path_mode("/tmp/a.snap:lazy:8"),
            ("/tmp/a.snap".to_string(), Mode::Lazy { k: 8 })
        );
        assert_eq!(
            Mode::split_path_mode("/tmp/a.snap:local"),
            ("/tmp/a.snap".to_string(), Mode::default())
        );
        assert_eq!(
            Mode::split_path_mode("/tmp/a.snap"),
            ("/tmp/a.snap".to_string(), Mode::default())
        );
        // A ':' that is not a mode suffix stays part of the path.
        assert_eq!(
            Mode::split_path_mode("C:/data/a.snap"),
            ("C:/data/a.snap".to_string(), Mode::default())
        );
        assert_eq!(
            Mode::split_path_mode("/tmp/a.snap:delta:4"),
            ("/tmp/a.snap".to_string(), Mode::Delta { k: 4 })
        );
    }

    #[test]
    fn epoch_advances_and_snapshots_are_isolated() {
        let ds = Dataset::new("k", classic::karate_club(), Mode::default());
        let before = ds.snapshot();
        assert_eq!(before.epoch, 0);
        let out = ds
            .apply_updates(&[EdgeOp::Insert(0, 9), EdgeOp::Insert(0, 9)])
            .unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!((out.applied, out.skipped), (1, 1));
        let after = ds.snapshot();
        assert_eq!(after.epoch, 1);
        // The old snapshot is untouched: readers in flight see epoch 0.
        assert_eq!(before.epoch, 0);
        assert_eq!(before.graph.m() + 1, after.graph.m());
        assert!(!before.graph.has_edge(0, 9) && after.graph.has_edge(0, 9));
    }

    #[test]
    fn out_of_range_and_self_loop_ops_are_skipped() {
        let ds = Dataset::new("k", classic::star(5), Mode::default());
        let out = ds
            .apply_updates(&[
                EdgeOp::Insert(0, 99), // out of range
                EdgeOp::Insert(3, 3),  // self-loop
                EdgeOp::Delete(1, 2),  // absent
                EdgeOp::Insert(1, 2),  // applies
            ])
            .unwrap();
        assert_eq!((out.applied, out.skipped), (1, 3));
        assert_eq!(ds.ops_applied(), 1);
    }

    #[test]
    fn local_mode_publishes_exact_maintained_topk() {
        let g = classic::karate_club();
        let ds = Dataset::new("k", g.clone(), Mode::Local { publish_k: 7 });
        let snap = ds.snapshot();
        let maintained = snap.maintained.as_ref().unwrap();
        assert_eq!(maintained.len(), 7);
        let truth = topk_from_scores(&egobtw_core::compute_all(&g).0, 7);
        for ((_, a), (_, b)) in maintained.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_mode_publishes_exact_maintained_topk_every_epoch() {
        let g = classic::karate_club();
        let ds = Dataset::new("k", g.clone(), Mode::Delta { k: 5 });
        let check = |snap: &EpochSnapshot| {
            let maintained = snap.maintained.as_ref().expect("delta always publishes");
            let truth = topk_from_scores(&egobtw_core::compute_all(&snap.graph).0, 5);
            assert_eq!(maintained.len(), truth.len());
            for ((_, a), (_, b)) in maintained.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        };
        check(&ds.snapshot());
        // Deletes — the case where lazy defers — still publish exact.
        ds.apply_updates(&[EdgeOp::Delete(0, 1), EdgeOp::Insert(9, 15)])
            .unwrap();
        let snap = ds.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.stale_members, 0);
        check(&snap);
        // Refresh is a lazy-only concept; delta has nothing deferred.
        assert!(ds.refresh_maintained(1).is_none());
    }

    #[test]
    fn lazy_mode_defers_and_refresh_republishes_same_epoch() {
        // Deleting an edge with common neighbors leaves stale members
        // (Example 8), so the published snapshot defers the refresh.
        let g = egobtw_gen::toy::paper_graph();
        let ds = Dataset::new("toy", g, Mode::Lazy { k: 12 });
        assert!(ds.snapshot().maintained.is_some(), "fresh at load");
        ds.apply_updates(&[EdgeOp::Delete(
            egobtw_gen::toy::ids::C,
            egobtw_gen::toy::ids::G,
        )])
        .unwrap();
        let snap = ds.snapshot();
        assert_eq!(snap.epoch, 1);
        assert!(snap.maintained.is_none(), "stale members defer publish");
        assert!(snap.stale_members > 0);
        // Paying the refresh republishes the same epoch with entries.
        let entries = ds.refresh_maintained(1).expect("writer still at epoch 1");
        let snap2 = ds.snapshot();
        assert_eq!(snap2.epoch, 1);
        assert_eq!(snap2.maintained.as_ref().unwrap(), &entries);
        assert!(Arc::ptr_eq(&snap.graph, &snap2.graph) || snap.graph.m() == snap2.graph.m());
        // Refresh for a stale epoch is refused.
        ds.apply_updates(&[EdgeOp::Insert(0, 5)]).unwrap();
        assert!(ds.refresh_maintained(1).is_none());
    }

    #[test]
    fn cache_lives_and_dies_with_the_epoch() {
        let ds = Dataset::new("k", classic::karate_club(), Mode::default());
        let key = CacheKey::TopK {
            engine: "auto".into(),
            k: 3,
        };
        let snap = ds.snapshot();
        assert!(snap.cache_get(&key).is_none());
        snap.cache_put(key.clone(), Arc::new(vec![(0, 1.0)]));
        assert!(snap.cache_get(&key).is_some());
        ds.apply_updates(&[EdgeOp::Insert(0, 9)]).unwrap();
        assert!(
            ds.snapshot().cache_get(&key).is_none(),
            "new epoch starts with an empty cache"
        );
    }

    #[test]
    fn claim_coalesces_single_flight_per_key() {
        let ds = Dataset::new("k", classic::karate_club(), Mode::default());
        let snap = ds.snapshot();
        let key = CacheKey::TopK {
            engine: "auto".into(),
            k: 3,
        };
        let Claim::Compute(ticket) = snap.claim(key.clone()) else {
            panic!("first claim computes");
        };
        // Everyone else joins the pending slot while the ticket is open.
        assert!(matches!(snap.claim(key.clone()), Claim::Wait(_)));
        ticket.fulfill(Arc::new(vec![(0, 1.0)]));
        assert!(matches!(snap.claim(key.clone()), Claim::Ready(_)));
        assert!(snap.cache_get(&key).is_some());
    }

    #[test]
    fn dropped_ticket_fails_waiters_and_vacates_slot() {
        let ds = Dataset::new("k", classic::karate_club(), Mode::default());
        let snap = ds.snapshot();
        let key = CacheKey::TopK {
            engine: "bsearch".into(),
            k: 2,
        };
        let Claim::Compute(ticket) = snap.claim(key.clone()) else {
            panic!("first claim computes");
        };
        let Claim::Wait(pending) = snap.claim(key.clone()) else {
            panic!("second claim waits");
        };
        drop(ticket); // simulated panic in the computing requester
        assert!(pending.wait().is_err());
        // Slot is vacated: the next requester computes afresh.
        assert!(matches!(snap.claim(key), Claim::Compute(_)));
    }

    #[test]
    fn name_validation_rejects_path_shaped_names() {
        for bad in [
            "",
            ".",
            "..",
            "...",
            "a/b",
            "../etc",
            "a\\b",
            "a b",
            "a:b",
            "a*",
            "café",
            &"x".repeat(201),
        ] {
            assert!(Catalog::validate_name(bad).is_err(), "{bad:?}");
        }
        for good in ["a", "karate--w10", "ds_1.snap", "A-Z.0", &"x".repeat(200)] {
            assert!(Catalog::validate_name(good).is_ok(), "{good:?}");
        }
    }

    #[test]
    fn catalog_insert_get_list_drop() {
        let cat = Catalog::new();
        cat.insert("a", classic::star(4), Mode::default()).unwrap();
        cat.insert("b", classic::path(4), Mode::Lazy { k: 2 })
            .unwrap();
        assert!(cat.insert("a", classic::star(4), Mode::default()).is_err());
        assert!(cat
            .insert("bad name", classic::star(4), Mode::default())
            .is_err());
        assert!(cat
            .insert("../traversal", classic::star(4), Mode::default())
            .is_err());
        assert_eq!(cat.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cat.get("b").unwrap().mode(), Mode::Lazy { k: 2 });
        assert!(cat.get("c").is_err());
        cat.drop_dataset("a").unwrap();
        assert!(cat.drop_dataset("a").is_err());
        assert_eq!(cat.names(), vec!["b".to_string()]);
    }

    #[test]
    fn dropped_dataset_refuses_writes() {
        let cat = Catalog::new();
        let ds = cat.insert("a", classic::star(6), Mode::default()).unwrap();
        ds.apply_updates(&[EdgeOp::Insert(1, 2)]).unwrap();
        cat.drop_dataset("a").unwrap();
        assert!(ds.retired());
        let err = ds.apply_updates(&[EdgeOp::Insert(2, 3)]).unwrap_err();
        assert!(err.contains("retired"), "{err}");
        // The name is free again.
        cat.insert("a", classic::star(6), Mode::default()).unwrap();
    }

    #[test]
    fn seq_token_duplicate_retry_reacks_without_reapplying() {
        let ds = Dataset::new("k", classic::star(8), Mode::default());
        let batch = [EdgeOp::Insert(1, 2), EdgeOp::Insert(2, 3)];
        let first = ds.apply_updates_seq(&batch, Some(0)).unwrap();
        assert_eq!(first.epoch, 1);
        assert_eq!(first.applied, 2);
        // A blind retry of the same (seq, ops) — a lost ack — re-acks the
        // recorded outcome; nothing applies twice.
        let again = ds.apply_updates_seq(&batch, Some(0)).unwrap();
        assert_eq!((again.epoch, again.applied), (first.epoch, first.applied));
        assert_eq!(ds.snapshot().epoch, 1, "no phantom epoch from the retry");
        assert_eq!(ds.ops_applied(), 2);
    }

    #[test]
    fn seq_token_mismatch_is_refused_naming_the_epoch() {
        let ds = Dataset::new("k", classic::star(8), Mode::default());
        ds.apply_updates_seq(&[EdgeOp::Insert(1, 2)], Some(0))
            .unwrap();
        // Wrong expectation: refused, and the error names where we are.
        let err = ds
            .apply_updates_seq(&[EdgeOp::Insert(3, 4)], Some(0))
            .unwrap_err();
        assert!(err.contains("stale seq=0") && err.ends_with('1'), "{err}");
        // Same token but *different* ops is not the duplicate-retry case:
        // acking it would claim we applied a batch we never saw.
        let err = ds
            .apply_updates_seq(&[EdgeOp::Insert(5, 6)], Some(0))
            .unwrap_err();
        assert!(err.contains("stale seq"), "{err}");
        assert_eq!(ds.snapshot().epoch, 1);
        // The correct next token proceeds.
        let out = ds
            .apply_updates_seq(&[EdgeOp::Insert(3, 4)], Some(1))
            .unwrap();
        assert_eq!(out.epoch, 2);
    }

    #[test]
    fn unsequenced_updates_keep_at_least_once_semantics() {
        let ds = Dataset::new("k", classic::star(8), Mode::default());
        let batch = [EdgeOp::Insert(1, 2)];
        assert_eq!(ds.apply_updates_seq(&batch, None).unwrap().epoch, 1);
        // Without a token the same bytes are a *new* batch (dup insert
        // skips, but the epoch still advances) — exactly at-least-once.
        let again = ds.apply_updates_seq(&batch, None).unwrap();
        assert_eq!((again.epoch, again.applied, again.skipped), (2, 0, 1));
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let cat = Catalog::with_config(CatalogConfig {
            shards: 4,
            ..CatalogConfig::default()
        });
        assert_eq!(cat.shard_count(), 4);
        for name in ["a", "b", "karate--w10", "tenant-042"] {
            let s = cat.shard_of(name);
            assert!(s < 4);
            assert_eq!(s, cat.shard_of(name), "stable");
        }
    }

    #[test]
    fn catalog_routes_updates_through_shard_pools() {
        let cat = Catalog::with_config(CatalogConfig {
            shards: 2,
            writers_per_shard: 2,
            ..CatalogConfig::default()
        });
        cat.insert("a", classic::star(8), Mode::default()).unwrap();
        cat.insert("b", classic::path(8), Mode::default()).unwrap();
        let out = cat
            .apply_updates("a", vec![EdgeOp::Insert(1, 2), EdgeOp::Insert(2, 3)])
            .unwrap();
        assert_eq!(out.epoch, 1);
        assert_eq!(out.applied, 2);
        let out = cat.apply_updates("b", vec![EdgeOp::Insert(0, 2)]).unwrap();
        assert_eq!(out.epoch, 1);
        assert!(cat.apply_updates("zzz", vec![]).is_err());
        // Pool threads are joined on drop without deadlocking.
        drop(cat);
    }
}
