//! Wire protocol: length-prefixed frames and the command grammar.
//!
//! A frame is an ASCII decimal byte length, a newline, then exactly that
//! many bytes of UTF-8 payload. A request payload holds one command per
//! line (a *batch*); the response payload holds exactly one line per
//! command, in order, each starting with `OK` or `ERR`. The length prefix
//! makes batches self-delimiting without escaping, and keeping the payload
//! line-oriented text keeps sessions scriptable and debuggable by hand.
//!
//! Command grammar (whitespace-separated tokens):
//!
//! ```text
//! LOAD   <name> <path> [local[:K] | lazy:<k> | delta:<k>]   load a dataset file
//! TOPK   <name> <k> [engine]                    top-k (engine: auto | registry name |
//!                                               approx:EPS,DELTA — seeded (ε, δ) sampler)
//! SCORE  <name> <v>...                          exact CB of named vertices
//! COMMON <name> <u> <v>                         common neighbors
//! UPDATE <name> [seq=<e>] (+u,v | -u,v)...      apply an edge-op batch; `seq` is an
//!                                               idempotency token (the epoch the client
//!                                               expects to advance from — retries of an
//!                                               acked batch are re-acked, not reapplied)
//! STATS  <name>                                 dataset counters
//! LIST                                          catalog contents
//! DROP   <name>                                 remove a dataset (retire + delete WAL)
//! COMPACT <name>                                force a snapshot compaction now
//! PING                                          liveness probe
//! METRICS                                       Prometheus text exposition of every
//!                                               registered metric (multi-line reply)
//! SLOWLOG                                       drain the slow-query ring (multi-line)
//! ```
//!
//! Any command line may carry a `DEADLINE <ms>` prefix, e.g.
//! `DEADLINE 250 TOPK g 8`: the server abandons the request (with
//! `ERR deadline`) once that many milliseconds have elapsed since
//! dequeue — enforced both before execution starts and cooperatively at
//! the engines' compute checkpoints.
//!
//! Any command line may also carry a `TRACE` prefix (before `DEADLINE`
//! when both are present), e.g. `TRACE DEADLINE 250 TOPK g 8`: the reply
//! line gains a trailing ` trace=total:…us,parse:…us,…` token with the
//! request's span breakdown and engine work counters.
//!
//! `METRICS` and `SLOWLOG` are the two replies that span multiple lines,
//! so each must be the **only** command line in its frame — batching
//! would break the one-response-line-per-command pairing every other
//! command relies on.

use crate::catalog::Mode;
use egobtw_dynamic::EdgeOp;
use egobtw_graph::VertexId;
use std::io::{self, BufRead, Write};

/// Upper bound on a frame payload; larger length prefixes are rejected
/// before any allocation happens (a garbage prefix must not OOM the
/// server).
pub const MAX_FRAME: usize = 16 << 20;

/// Upper bound on ops in one `UPDATE` batch, enforced at parse time with
/// a clear `ERR` (mirroring [`MAX_FRAME`]): one batch is one WAL record
/// and one epoch publish under the writer lock, so an unbounded batch
/// would let a single client monopolize a shard writer and balloon WAL
/// records far past [`crate::wal::Wal`]'s record cap.
pub const MAX_UPDATE_OPS: usize = 4096;

/// Writes one frame: decimal length, `\n`, payload. Assembled into one
/// buffer and written with a single call, so a frame is one TCP segment
/// on the wire (two small writes through a Nagle-enabled socket cost a
/// delayed-ACK round trip per frame).
pub fn write_frame<W: Write>(mut w: W, payload: &str) -> io::Result<()> {
    let mut buf = String::with_capacity(payload.len() + 12);
    buf.push_str(&payload.len().to_string());
    buf.push('\n');
    buf.push_str(payload);
    w.write_all(buf.as_bytes())?;
    w.flush()
}

/// Longest accepted length-prefix line, newline included (24 digits is
/// far beyond any length [`MAX_FRAME`] admits). The prefix read is capped
/// at this so a peer streaming junk with no newline cannot grow the line
/// buffer without bound.
const MAX_LEN_LINE: u64 = 24;

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary; a connection dying mid-frame is an error.
pub fn read_frame<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut len_line = String::new();
    // UFCS pins `take` to the `&mut R` impl (plain `.take()` would
    // auto-deref and try to move `R` itself out of the reference).
    if <&mut R as io::Read>::take(&mut *r, MAX_LEN_LINE).read_line(&mut len_line)? == 0 {
        return Ok(None);
    }
    if !len_line.ends_with('\n') {
        // Either the peer is streaming digits with no terminator (cap
        // hit) or the connection died inside the prefix — a prefix at
        // EOF must not round down to a phantom frame.
        return Err(io::Error::new(
            if len_line.len() as u64 == MAX_LEN_LINE {
                io::ErrorKind::InvalidData
            } else {
                io::ErrorKind::UnexpectedEof
            },
            "unterminated frame length prefix",
        ));
    }
    let len: usize = len_line
        .trim()
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad frame length prefix"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

/// One parsed request command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Load a dataset from an edge-list or binary-snapshot file.
    Load {
        /// Catalog name to register under.
        name: String,
        /// Filesystem path; the format is sniffed from the magic bytes.
        path: String,
        /// Maintainer mode.
        mode: Mode,
    },
    /// Top-k query.
    Topk {
        /// Dataset name.
        name: String,
        /// How many entries.
        k: usize,
        /// `auto` (maintained index / cache / default engine) or a
        /// registry engine name such as `core::compute_all`.
        engine: String,
    },
    /// Exact ego-betweenness of specific vertices.
    Score {
        /// Dataset name.
        name: String,
        /// Vertices to score.
        vertices: Vec<VertexId>,
    },
    /// Common-neighbor query.
    Common {
        /// Dataset name.
        name: String,
        /// First endpoint.
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// Apply a batch of edge updates; publishes one new epoch.
    Update {
        /// Dataset name.
        name: String,
        /// The ops, in order.
        ops: Vec<EdgeOp>,
        /// Idempotency token: the epoch the client expects to advance
        /// from. `None` keeps the original at-least-once semantics.
        seq: Option<u64>,
    },
    /// Dataset counters (size, epoch, cache hit rates, …).
    Stats {
        /// Dataset name.
        name: String,
    },
    /// List the catalog.
    List,
    /// Drop a dataset.
    Drop {
        /// Dataset name.
        name: String,
    },
    /// Force a snapshot compaction of a persistent dataset.
    Compact {
        /// Dataset name.
        name: String,
    },
    /// Liveness probe; replies `OK pong`.
    Ping,
    /// Prometheus text exposition of every registered metric. Multi-line
    /// reply: must be the only command line in its frame.
    Metrics,
    /// Drain the slow-query ring. Multi-line reply: must be the only
    /// command line in its frame.
    Slowlog,
}

fn parse_vertex(tok: &str) -> Result<VertexId, String> {
    tok.parse::<VertexId>()
        .map_err(|_| format!("bad vertex id {tok:?}"))
}

fn parse_op(tok: &str) -> Result<EdgeOp, String> {
    let (insert, rest) = if let Some(r) = tok.strip_prefix('+') {
        (true, r)
    } else if let Some(r) = tok.strip_prefix('-') {
        (false, r)
    } else {
        return Err(format!("bad op {tok:?}: must start with + or -"));
    };
    let (us, vs) = rest
        .split_once(',')
        .ok_or_else(|| format!("bad op {tok:?}: expected +u,v or -u,v"))?;
    let (u, v) = (parse_vertex(us)?, parse_vertex(vs)?);
    Ok(if insert {
        EdgeOp::Insert(u, v)
    } else {
        EdgeOp::Delete(u, v)
    })
}

/// Parses one command line. Verbs are case-sensitive uppercase, matching
/// the grammar in the module docs.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut it = line.split_whitespace();
    let verb = it.next().ok_or("empty command")?;
    let cmd = match verb {
        "LOAD" => {
            let name = it.next().ok_or("LOAD needs a name")?.to_string();
            let path = it.next().ok_or("LOAD needs a path")?.to_string();
            let mode = match it.next() {
                Some(m) => Mode::parse(m)?,
                None => Mode::default(),
            };
            Command::Load { name, path, mode }
        }
        "TOPK" => {
            let name = it.next().ok_or("TOPK needs a name")?.to_string();
            let k = it
                .next()
                .ok_or("TOPK needs k")?
                .parse::<usize>()
                .map_err(|e| format!("bad k: {e}"))?;
            // The engine name is the rest of the line: registry names can
            // contain single spaces (`core::opt_search(θ=1.05, degree-relabel)`).
            let rest: Vec<&str> = it.by_ref().collect();
            let engine = if rest.is_empty() {
                "auto".to_string()
            } else {
                rest.join(" ")
            };
            Command::Topk { name, k, engine }
        }
        "SCORE" => {
            let name = it.next().ok_or("SCORE needs a name")?.to_string();
            let vertices: Vec<VertexId> =
                it.by_ref().map(parse_vertex).collect::<Result<_, _>>()?;
            if vertices.is_empty() {
                return Err("SCORE needs at least one vertex".into());
            }
            Command::Score { name, vertices }
        }
        "COMMON" => {
            let name = it.next().ok_or("COMMON needs a name")?.to_string();
            let u = parse_vertex(it.next().ok_or("COMMON needs u")?)?;
            let v = parse_vertex(it.next().ok_or("COMMON needs v")?)?;
            Command::Common { name, u, v }
        }
        "UPDATE" => {
            let name = it.next().ok_or("UPDATE needs a name")?.to_string();
            let mut it = it.peekable();
            let seq = match it.peek().and_then(|tok| tok.strip_prefix("seq=")) {
                Some(v) => {
                    let s = v
                        .parse::<u64>()
                        .map_err(|_| format!("bad seq token {v:?}"))?;
                    it.next();
                    Some(s)
                }
                None => None,
            };
            let ops: Vec<EdgeOp> = it.by_ref().map(parse_op).collect::<Result<_, _>>()?;
            if ops.is_empty() {
                return Err("UPDATE needs at least one op".into());
            }
            if ops.len() > MAX_UPDATE_OPS {
                return Err(format!(
                    "UPDATE batch of {} ops exceeds the {MAX_UPDATE_OPS}-op cap \
                     (split it into smaller batches)",
                    ops.len()
                ));
            }
            return Ok(Command::Update { name, ops, seq });
        }
        "STATS" => Command::Stats {
            name: it.next().ok_or("STATS needs a name")?.to_string(),
        },
        "LIST" => Command::List,
        "DROP" => Command::Drop {
            name: it.next().ok_or("DROP needs a name")?.to_string(),
        },
        "COMPACT" => Command::Compact {
            name: it.next().ok_or("COMPACT needs a name")?.to_string(),
        },
        "PING" => Command::Ping,
        "METRICS" => Command::Metrics,
        "SLOWLOG" => Command::Slowlog,
        other => return Err(format!("unknown verb {other:?}")),
    };
    // Variadic commands (SCORE, UPDATE) drained the iterator above; every
    // fixed-arity command must have consumed the whole line too.
    if it.next().is_some() {
        return Err(format!("trailing tokens after {verb}"));
    }
    Ok(cmd)
}

/// Strips an optional `DEADLINE <ms>` prefix from a command line.
///
/// Returns the millisecond budget (if present) and the command text that
/// follows it. Lines without the prefix pass through untouched, so the
/// prefix composes with every verb. A `DEADLINE` token with a malformed
/// budget or no trailing command is an error — it must never be silently
/// reinterpreted as a verb.
pub fn split_deadline(line: &str) -> Result<(Option<u64>, &str), String> {
    let trimmed = line.trim_start();
    let rest = match trimmed.strip_prefix("DEADLINE") {
        Some(r) if r.starts_with(char::is_whitespace) => r.trim_start(),
        // A bare `DEADLINE` is the prefix with its operands missing.
        Some("") => return Err("DEADLINE needs a millisecond budget followed by a command".into()),
        // `DEADLINEX …` is not the prefix; let parse_command reject it.
        _ => return Ok((None, line)),
    };
    let (ms_tok, cmd) = rest
        .split_once(char::is_whitespace)
        .ok_or("DEADLINE needs a millisecond budget followed by a command")?;
    let ms = ms_tok
        .parse::<u64>()
        .map_err(|_| format!("bad DEADLINE budget {ms_tok:?}"))?;
    if cmd.trim().is_empty() {
        return Err("DEADLINE needs a command after the budget".into());
    }
    Ok((Some(ms), cmd))
}

/// Strips an optional `TRACE` prefix from a command line, mirroring
/// [`split_deadline`]'s semantics: lines without the prefix pass through
/// untouched, a bare `TRACE` is an error (never silently a verb), and
/// `TRACEX …` is not the prefix. The flag asks the service to append a
/// ` trace=…` span-breakdown token to the reply line.
pub fn split_trace(line: &str) -> Result<(bool, &str), String> {
    let trimmed = line.trim_start();
    match trimmed.strip_prefix("TRACE") {
        Some(r) if r.starts_with(char::is_whitespace) => {
            let rest = r.trim_start();
            if rest.is_empty() {
                return Err("TRACE needs a command to trace".into());
            }
            Ok((true, rest))
        }
        // A bare `TRACE` is the prefix with its command missing.
        Some("") => Err("TRACE needs a command to trace".into()),
        // `TRACEX …` is not the prefix; let parse_command reject it.
        _ => Ok((false, line)),
    }
}

/// Renders score entries as the wire form `v:score,v:score,…`. Scores use
/// Rust's shortest-roundtrip `f64` formatting, so parsing them back is
/// exact.
pub fn format_entries(entries: &[(VertexId, f64)]) -> String {
    let mut out = String::new();
    for (i, (v, s)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}:{s}"));
    }
    out
}

/// Parses the wire form produced by [`format_entries`]. An empty string is
/// an empty list.
pub fn parse_entries(text: &str) -> Result<Vec<(VertexId, f64)>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|item| {
            let (v, s) = item
                .split_once(':')
                .ok_or_else(|| format!("bad entry {item:?}"))?;
            Ok((
                parse_vertex(v)?,
                s.parse::<f64>().map_err(|_| format!("bad score {s:?}"))?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frame_roundtrip_including_empty_and_unicode() {
        for payload in ["", "TOPK g 5", "LIST\nPING", "héllo ↑"] {
            let mut buf = Vec::new();
            write_frame(&mut buf, payload).unwrap();
            let mut r = BufReader::new(buf.as_slice());
            assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(payload));
            assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after frame");
        }
    }

    #[test]
    fn frames_concatenate() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PING").unwrap();
        write_frame(&mut buf, "LIST").unwrap();
        let mut r = BufReader::new(buf.as_slice());
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("PING"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("LIST"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn frame_rejects_garbage_prefix_oversize_and_truncation() {
        let mut r = BufReader::new("x\nabc".as_bytes());
        assert!(read_frame(&mut r).is_err());
        let huge = format!("{}\n", MAX_FRAME + 1);
        let mut r = BufReader::new(huge.as_bytes());
        assert!(read_frame(&mut r).is_err());
        let mut r = BufReader::new("10\nshort".as_bytes());
        assert!(read_frame(&mut r).is_err(), "mid-frame EOF is an error");
    }

    #[test]
    fn frame_prefix_read_is_bounded() {
        // A peer streaming digits with no newline must be rejected after
        // MAX_LEN_LINE bytes, not buffered indefinitely.
        let endless = "9".repeat(4096);
        let mut r = BufReader::new(endless.as_bytes());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        // A newline-free prefix *shorter* than the cap is a connection
        // that died mid-prefix: an EOF error, never a phantom frame
        // (an empty payload's prefix cut at `0` used to slip through).
        let mut r = BufReader::new("123".as_bytes());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
        let mut r = BufReader::new("0".as_bytes());
        assert!(read_frame(&mut r).is_err(), "cut empty-frame prefix");
    }

    #[test]
    fn parses_each_verb() {
        assert_eq!(
            parse_command("LOAD g /tmp/x.snap lazy:8").unwrap(),
            Command::Load {
                name: "g".into(),
                path: "/tmp/x.snap".into(),
                mode: Mode::Lazy { k: 8 },
            }
        );
        assert_eq!(
            parse_command("LOAD g /tmp/x.snap delta:4").unwrap(),
            Command::Load {
                name: "g".into(),
                path: "/tmp/x.snap".into(),
                mode: Mode::Delta { k: 4 },
            }
        );
        assert_eq!(
            parse_command("TOPK g 5").unwrap(),
            Command::Topk {
                name: "g".into(),
                k: 5,
                engine: "auto".into()
            }
        );
        assert_eq!(
            parse_command("TOPK g 5 core::compute_all").unwrap(),
            Command::Topk {
                name: "g".into(),
                k: 5,
                engine: "core::compute_all".into()
            }
        );
        assert_eq!(
            parse_command("SCORE g 1 2 3").unwrap(),
            Command::Score {
                name: "g".into(),
                vertices: vec![1, 2, 3]
            }
        );
        assert_eq!(
            parse_command("COMMON g 0 33").unwrap(),
            Command::Common {
                name: "g".into(),
                u: 0,
                v: 33
            }
        );
        assert_eq!(
            parse_command("UPDATE g +1,2 -0,4").unwrap(),
            Command::Update {
                name: "g".into(),
                ops: vec![EdgeOp::Insert(1, 2), EdgeOp::Delete(0, 4)],
                seq: None,
            }
        );
        assert_eq!(
            parse_command("UPDATE g seq=17 +1,2").unwrap(),
            Command::Update {
                name: "g".into(),
                ops: vec![EdgeOp::Insert(1, 2)],
                seq: Some(17),
            }
        );
        assert_eq!(parse_command("LIST").unwrap(), Command::List);
        assert_eq!(parse_command("PING").unwrap(), Command::Ping);
        assert_eq!(parse_command("METRICS").unwrap(), Command::Metrics);
        assert_eq!(parse_command("SLOWLOG").unwrap(), Command::Slowlog);
        assert_eq!(
            parse_command("  STATS   g  ").unwrap(),
            Command::Stats { name: "g".into() }
        );
        assert_eq!(
            parse_command("DROP g").unwrap(),
            Command::Drop { name: "g".into() }
        );
        assert_eq!(
            parse_command("COMPACT g").unwrap(),
            Command::Compact { name: "g".into() }
        );
    }

    #[test]
    fn rejects_malformed_commands() {
        for bad in [
            "",
            "  ",
            "NOPE g",
            "TOPK g",
            "TOPK g five",
            "SCORE g",
            "SCORE g -1",
            "COMMON g 1",
            "COMMON g 1 2 3",
            "UPDATE g",
            "UPDATE g 1,2",
            "UPDATE g +1;2",
            "UPDATE g +1,x",
            "UPDATE g seq=17",
            "UPDATE g seq=banana +1,2",
            "UPDATE g +1,2 seq=17",
            "LOAD g",
            "LOAD g p weird-mode",
            "LIST extra",
            "DROP",
            "COMPACT",
            "COMPACT g extra",
            "METRICS extra",
            "SLOWLOG g",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn update_batch_cap_boundary() {
        let line = |n: usize| {
            let mut s = String::from("UPDATE g");
            for i in 0..n {
                s.push_str(&format!(" +{i},{}", i + 1));
            }
            s
        };
        match parse_command(&line(MAX_UPDATE_OPS)).unwrap() {
            Command::Update { ops, .. } => assert_eq!(ops.len(), MAX_UPDATE_OPS),
            other => panic!("{other:?}"),
        }
        let err = parse_command(&line(MAX_UPDATE_OPS + 1)).unwrap_err();
        assert!(err.contains("4096-op cap"), "{err}");
    }

    #[test]
    fn deadline_prefix_splits_and_rejects() {
        assert_eq!(
            split_deadline("DEADLINE 250 TOPK g 8").unwrap(),
            (Some(250), "TOPK g 8")
        );
        assert_eq!(split_deadline("TOPK g 8").unwrap(), (None, "TOPK g 8"));
        // Not the prefix: parse_command gets to reject the unknown verb.
        assert_eq!(
            split_deadline("DEADLINES 1 PING").unwrap(),
            (None, "DEADLINES 1 PING")
        );
        for bad in [
            "DEADLINE",
            "DEADLINE 250",
            "DEADLINE soon PING",
            "DEADLINE 250  ",
        ] {
            assert!(split_deadline(bad).is_err(), "{bad:?}");
        }
        // The split output feeds straight into parse_command.
        let (ms, rest) = split_deadline("DEADLINE 10 PING").unwrap();
        assert_eq!(ms, Some(10));
        assert_eq!(parse_command(rest).unwrap(), Command::Ping);
    }

    #[test]
    fn trace_prefix_splits_and_rejects() {
        assert_eq!(split_trace("TRACE TOPK g 8").unwrap(), (true, "TOPK g 8"));
        assert_eq!(split_trace("TOPK g 8").unwrap(), (false, "TOPK g 8"));
        // TRACE composes in front of DEADLINE.
        let (traced, rest) = split_trace("TRACE DEADLINE 250 TOPK g 8").unwrap();
        assert!(traced);
        assert_eq!(split_deadline(rest).unwrap(), (Some(250), "TOPK g 8"));
        // Not the prefix: parse_command gets to reject the unknown verb.
        assert_eq!(
            split_trace("TRACER 1 PING").unwrap(),
            (false, "TRACER 1 PING")
        );
        for bad in ["TRACE", "TRACE   ", "  TRACE"] {
            assert!(split_trace(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn entries_roundtrip() {
        let entries = vec![(3u32, 11.0), (7, 9.5), (0, 1.0 / 3.0)];
        let wire = format_entries(&entries);
        assert_eq!(parse_entries(&wire).unwrap(), entries);
        assert_eq!(parse_entries("").unwrap(), vec![]);
        assert!(parse_entries("3:").is_err());
        assert!(parse_entries("3").is_err());
    }
}
