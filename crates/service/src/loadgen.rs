//! Load-generating client: mixed read/update workloads, latency
//! percentiles, and an oracle-checked mode.
//!
//! One run drives each dataset with `threads` client threads: thread 0 is
//! the single **writer** (it owns the dataset's whole update stream, so
//! the mapping *epoch → op prefix* is well defined), the rest are
//! **readers** issuing a TOPK-heavy query mix. With `check` on, readers
//! sample their top-k responses and, after the run, every sampled answer
//! is verified against a from-scratch replay of the writer's stream at
//! that epoch — truth from [`ego_betweenness_reference`] (zero machinery
//! shared with any engine), compared with the `conformance` crate's
//! tie-aware comparator. A served answer that was stale, torn, or
//! cache-leaked across epochs cannot pass.
//!
//! A run covers one or more **scenarios**, each tagged with a `kind`:
//!
//! * `mixed` — named read/write mixes (e.g. `read-heavy` at 10% writes,
//!   `update-heavy` at 50%): every dataset is driven once per scenario,
//!   under a catalog name mangled with the scenario name so epochs never
//!   bleed across scenarios.
//! * `recovery` — per dataset: a write burst into a WAL-backed in-process
//!   service, a full teardown, a **timed restart recovery**, then an
//!   oracle-checked read phase against the recovered epoch.
//! * `skew` — all datasets driven **concurrently** against one catalog,
//!   with every write aimed at the first (hot) dataset: the sharded
//!   catalog's worst case, cold readers must not stall behind the hot
//!   shard's writer storm.
//! * `multi-tenant` — 100+ tiny synthesized datasets in one catalog with
//!   light per-tenant traffic; one aggregate record.
//! * `overload` — a deliberately tiny TCP server (2 workers, 2-slot
//!   queue, compute watermark 1) hammered past saturation: records the
//!   admitted-request QPS, the shed rate, and the latency percentiles of
//!   the requests that *were* admitted — and asserts every refused
//!   request got an explicit `ERR`, never a hang.
//!
//! Results go to `BENCH_service.json` (schema `egobtw/bench-service/v4`),
//! one record per (scenario, dataset) with throughput and read/update
//! latency percentiles; [`validate`] is the CI schema check.
//!
//! Writers send every `UPDATE` with a `seq=` idempotency token and retry
//! refused or failed batches under jittered exponential backoff — a retry
//! of an acked batch is re-acked, not reapplied, so at-least-once
//! delivery never double-applies an op.
//!
//! The oracle check replays the writer's stream from scratch per sampled
//! epoch with a cubic-per-vertex reference, so it is automatically
//! skipped (and recorded as skipped) for datasets larger than
//! [`LoadgenConfig::check_max_n`] — large graphs get throughput numbers,
//! small ones get proofs.

use crate::catalog::{CatalogConfig, Mode};
use crate::proto::parse_entries;
use crate::server::{
    connect_with_retry, is_retryable_response, roundtrip, RetryPolicy, Server, ServerConfig,
};
use crate::service::Service;
use crate::wal::{FsyncPolicy, PersistConfig};
use conformance::{check_topk, REL_TOL};
use egobtw_bench::json::Json;
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_dynamic::{replay_graph, EdgeOp};
use egobtw_graph::{CsrGraph, DynGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Schema tag written into `BENCH_service.json`.
pub const SCHEMA: &str = "egobtw/bench-service/v4";

/// One named read/write mix of a run.
#[derive(Clone, Debug)]
pub struct MixSpec {
    /// Scenario name (goes into the document and the mangled catalog
    /// names, so it must be catalog-name-safe).
    pub name: String,
    /// Fraction of ops that are edge updates (e.g. `0.5` for 50/50).
    pub write_frac: f64,
}

/// Which non-mix scenarios a run should include beyond its `mixed` ones.
#[derive(Clone, Debug, Default)]
pub struct ExtraScenarios {
    /// Run the `restart-recovery` scenario (WAL burst → teardown → timed
    /// recovery → oracle-checked reads). Always in-process: a restart
    /// cannot be driven through a TCP target.
    pub recovery: bool,
    /// Run the `shard-skew` scenario (all datasets concurrent, writes
    /// concentrated on the first). Needs at least two datasets.
    pub skew: bool,
    /// Tenant count for the `multi-tenant` scenario (`0` = off, minimum
    /// 2). Always in-process on synthesized tiny graphs.
    pub tenants: usize,
    /// Run the `overload` scenario (tiny saturated TCP server → shed
    /// rate, saturation QPS, admitted-read percentiles). Always spawns
    /// its own server.
    pub overload: bool,
}

/// Workload shape shared by every dataset in a run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Client threads per dataset (thread 0 writes, the rest read).
    pub threads: usize,
    /// Total operations per dataset (reads + updates).
    pub ops: usize,
    /// Default update fraction, used when a run names no explicit mixes.
    pub write_frac: f64,
    /// `k` for the top-k reads.
    pub k: usize,
    /// Update ops per UPDATE command (one epoch per command).
    pub batch: usize,
    /// Workload seed.
    pub seed: u64,
    /// Verify sampled top-k answers against the replay oracle.
    pub check: bool,
    /// Largest `n` the oracle check runs on (the reference truth is cubic
    /// per vertex); bigger datasets record the check as skipped.
    pub check_max_n: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            threads: 4,
            ops: 2000,
            write_frac: 0.1,
            k: 8,
            batch: 2,
            seed: 42,
            check: false,
            check_max_n: 512,
        }
    }
}

/// One dataset of a run.
pub struct DatasetSpec {
    /// Catalog name to load under (must be fresh for the run).
    pub name: String,
    /// The initial graph (also the replay base in check mode).
    pub g0: CsrGraph,
    /// File path to `g0`, required for TCP targets (the daemon loads the
    /// file itself).
    pub path: Option<String>,
    /// Maintainer mode.
    pub mode: Mode,
}

/// Where the load goes.
pub enum Target<'a> {
    /// Straight into an in-process [`Service`] (no sockets).
    InProc(&'a Service),
    /// A running daemon at this address.
    Tcp(String),
}

enum Conn<'a> {
    InProc(&'a Service),
    Tcp(Box<(BufReader<TcpStream>, TcpStream)>),
}

impl Conn<'_> {
    fn round(&mut self, payload: &str) -> Result<String, String> {
        match self {
            Conn::InProc(service) => Ok(service.handle_payload(payload)),
            Conn::Tcp(pair) => {
                let (reader, writer) = &mut **pair;
                roundtrip(reader, writer, payload).map_err(|e| format!("i/o: {e}"))
            }
        }
    }
}

fn open_conn<'a>(target: &'a Target<'a>) -> Result<Conn<'a>, String> {
    match target {
        Target::InProc(service) => Ok(Conn::InProc(service)),
        Target::Tcp(addr) => connect_with_retry(addr, std::time::Duration::from_secs(10))
            .map(|pair| Conn::Tcp(Box::new(pair)))
            .map_err(|e| format!("connect {addr}: {e}")),
    }
}

/// Pulls `key=value` out of a response line.
fn field<'r>(reply: &'r str, key: &str) -> Result<&'r str, String> {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| format!("no {key}= in reply {reply:?}"))
}

fn expect_ok(reply: &str) -> Result<&str, String> {
    if reply.starts_with("OK ") {
        Ok(reply)
    } else {
        Err(format!("server said: {reply}"))
    }
}

/// One sampled top-k answer, to be oracle-checked after the run.
struct TopkSample {
    epoch: u64,
    k: usize,
    entries: Vec<(VertexId, f64)>,
}

#[derive(Default)]
struct ThreadLog {
    read_ns: Vec<u64>,
    update_ns: Vec<u64>,
    samples: Vec<TopkSample>,
    /// Writer only: `(epoch, ops-prefix length)` after each batch.
    epochs: Vec<(u64, usize)>,
}

/// Per-thread workload parameters (shared fields of the two loops).
struct WorkerPlan<'a> {
    name: &'a str,
    n: usize,
    k: usize,
    seed: u64,
    check: bool,
    sample_every: usize,
}

/// One request, retried under `policy` while the server sheds or drains
/// (`ERR busy` / `ERR draining`). Returns the last response either way —
/// callers decide whether a still-refused final answer is fatal.
fn round_backoff(
    conn: &mut Conn<'_>,
    payload: &str,
    policy: &RetryPolicy,
) -> Result<String, String> {
    let mut reply = conn.round(payload)?;
    for retry in 0..policy.attempts {
        if !is_retryable_response(&reply) {
            break;
        }
        std::thread::sleep(policy.backoff(retry));
        reply = conn.round(payload)?;
    }
    Ok(reply)
}

fn writer_loop(
    conn: &mut Conn<'_>,
    plan: &WorkerPlan<'_>,
    updates: usize,
    batch: usize,
    mirror: &mut DynGraph,
    ops_log: &mut Vec<EdgeOp>,
) -> Result<ThreadLog, String> {
    let (name, n) = (plan.name, plan.n);
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0xE12A_11E5);
    let policy = RetryPolicy {
        seed: plan.seed,
        ..RetryPolicy::default()
    };
    let mut log = ThreadLog::default();
    // The seq idempotency token is the epoch each batch expects to
    // advance from; anchor it on the dataset's current epoch (recovery
    // scenarios start past zero).
    let stats = conn.round(&format!("STATS {name}"))?;
    let mut expected: u64 = field(expect_ok(&stats)?, "epoch")?
        .parse()
        .map_err(|_| format!("bad epoch in {stats:?}"))?;
    let mut sent = 0usize;
    while sent < updates {
        let take = batch.min(updates - sent);
        let mut payload = format!("UPDATE {name} seq={expected}");
        for _ in 0..take {
            // Pick a state-changing op against the writer's mirror.
            let (u, v) = loop {
                let u = rng.random_range(0..n as u32);
                let v = rng.random_range(0..n as u32);
                if u != v {
                    break (u, v);
                }
            };
            let op = if mirror.has_edge(u, v) {
                payload.push_str(&format!(" -{u},{v}"));
                EdgeOp::Delete(u, v)
            } else {
                payload.push_str(&format!(" +{u},{v}"));
                EdgeOp::Insert(u, v)
            };
            match op {
                EdgeOp::Insert(a, b) => mirror.insert_edge(a, b),
                EdgeOp::Delete(a, b) => mirror.remove_edge(a, b),
            };
            ops_log.push(op);
        }
        sent += take;
        let t0 = Instant::now();
        let reply = round_backoff(conn, &payload, &policy)?;
        log.update_ns.push(t0.elapsed().as_nanos() as u64);
        let reply = expect_ok(&reply)?;
        let epoch: u64 = field(reply, "epoch")?
            .parse()
            .map_err(|_| format!("bad epoch in {reply:?}"))?;
        log.epochs.push((epoch, ops_log.len()));
        expected = epoch;
    }
    Ok(log)
}

fn reader_loop(
    conn: &mut Conn<'_>,
    plan: &WorkerPlan<'_>,
    reads: usize,
) -> Result<ThreadLog, String> {
    let (name, n, k) = (plan.name, plan.n, plan.k);
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let policy = RetryPolicy {
        seed: plan.seed ^ 0x00C0_FFEE,
        ..RetryPolicy::default()
    };
    let mut log = ThreadLog::default();
    for i in 0..reads {
        let roll: f64 = rng.random_range(0.0..1.0);
        let payload = if roll < 0.8 {
            format!("TOPK {name} {k}")
        } else if roll < 0.9 {
            format!("SCORE {name} {}", rng.random_range(0..n as u32))
        } else {
            let u = rng.random_range(0..n as u32);
            let v = rng.random_range(0..n as u32);
            format!("COMMON {name} {u} {v}")
        };
        let t0 = Instant::now();
        let reply = round_backoff(conn, &payload, &policy)?;
        log.read_ns.push(t0.elapsed().as_nanos() as u64);
        let reply = expect_ok(&reply)?;
        if plan.check && payload.starts_with("TOPK") && i % plan.sample_every == 0 {
            log.samples.push(TopkSample {
                epoch: field(reply, "epoch")?
                    .parse()
                    .map_err(|_| format!("bad epoch in {reply:?}"))?,
                k,
                entries: parse_entries(field(reply, "entries")?)?,
            });
        }
    }
    Ok(log)
}

/// Interpolated percentile in microseconds over ascending-sorted
/// nanosecond samples, with the sample count the estimate rests on.
/// Delegates to [`egobtw_telemetry::percentile_sorted`] — the old
/// nearest-rank rounding clamped small-sample tail quantiles (p99 of 50
/// samples *was* the max) without telling anyone.
pub fn percentile_us(sorted_ns: &[u64], q: f64) -> (f64, usize) {
    let us = egobtw_telemetry::percentile_sorted(sorted_ns, q).map_or(0.0, |ns| ns / 1000.0);
    (us, sorted_ns.len())
}

fn latency_json(mut ns: Vec<u64>) -> Json {
    ns.sort_unstable();
    Json::Obj(vec![
        ("count".into(), Json::Num(ns.len() as f64)),
        ("p50_us".into(), Json::Num(percentile_us(&ns, 0.50).0)),
        ("p90_us".into(), Json::Num(percentile_us(&ns, 0.90).0)),
        ("p99_us".into(), Json::Num(percentile_us(&ns, 0.99).0)),
        (
            "max_us".into(),
            Json::Num(ns.last().map_or(0.0, |&x| x as f64 / 1000.0)),
        ),
    ])
}

/// Metrics crosscheck: drives an in-process service with
/// compute-dominated `TOPK`s (distinct `k` per request so the per-epoch
/// cache never absorbs them), then scrapes `METRICS` and checks the
/// server-side `TOPK` latency histogram against the client-side timings
/// — the two views of every request must put each quantile within one
/// log2 bucket of each other. Returns a JSON report; `Err` when the
/// exposition fails to parse/validate or a quantile drifts further.
pub fn metrics_crosscheck(requests: usize, seed: u64) -> Result<Json, String> {
    use egobtw_telemetry::{bucket_index, percentile_sorted, prometheus};

    // Every request gets a distinct k so none hits the per-epoch cache —
    // a fast-hit/slow-miss bimodal distribution would let an interpolated
    // client percentile land between the two modes while the server's
    // closest-rank bucket sticks to one of them. The cap keeps k < n.
    let requests = requests.clamp(8, 128);
    let service = Service::new();
    let g = egobtw_gen::gnp(160, 0.08, seed);
    service.load_graph("xcheck", g, Mode::default())?;

    let mut client_ns = Vec::with_capacity(requests);
    for i in 0..requests {
        let k = 1 + i;
        let t0 = Instant::now();
        let reply = service.handle_line(&format!("TOPK xcheck {k} core::compute_all"));
        client_ns.push(t0.elapsed().as_nanos() as u64);
        expect_ok(&reply)?;
    }
    client_ns.sort_unstable();

    let text = service.handle_line("METRICS");
    let expo = prometheus::parse(&text)?;
    let violations = expo.validate(&[
        "egobtw_request_latency_ns",
        "egobtw_requests_admitted_total",
    ]);
    if !violations.is_empty() {
        return Err(format!("exposition invalid: {violations:?}"));
    }
    let server = expo
        .histogram("egobtw_request_latency_ns", &[("verb", "TOPK")])
        .ok_or("no server-side TOPK latency series")?;
    if server.count != requests as u64 {
        return Err(format!(
            "server saw {} TOPKs, client sent {requests}",
            server.count
        ));
    }

    let mut fields = vec![
        ("requests".into(), Json::Num(requests as f64)),
        ("client".into(), latency_json(client_ns.clone())),
    ];
    for (label, q) in [("p50", 0.50), ("p99", 0.99)] {
        let client = percentile_sorted(&client_ns, q).unwrap_or(0.0) as u64;
        let server_le = server
            .quantile(q)
            .ok_or_else(|| format!("server histogram empty at {label}"))?;
        let (cb, sb) = (bucket_index(client), bucket_index(server_le));
        fields.push((format!("{label}_bucket_client"), Json::Num(cb as f64)));
        fields.push((format!("{label}_bucket_server"), Json::Num(sb as f64)));
        if cb.abs_diff(sb) > 1 {
            return Err(format!(
                "{label}: client {client}ns (bucket {cb}) vs server ≤{server_le}ns \
                 (bucket {sb}) — more than one log2 bucket apart"
            ));
        }
    }
    Ok(Json::Obj(fields))
}

/// Metric names every healthy daemon must expose (the live-scrape gate).
pub const REQUIRED_METRICS: [&str; 8] = [
    "egobtw_requests_admitted_total",
    "egobtw_requests_completed_total",
    "egobtw_requests_cancelled_total",
    "egobtw_requests_failed_total",
    "egobtw_request_latency_ns",
    "egobtw_shed_total",
    "egobtw_timeouts_total",
    "egobtw_compute_inflight",
];

/// Live-daemon scrape gate: two `METRICS` scrapes over TCP, each parsed
/// and schema-validated (required families present, histogram buckets
/// cumulative, `+Inf` == `_count`), plus counter monotonicity between
/// them — every `_total` series in the first scrape must be ≤ its value
/// in the second. Returns a human-readable summary line.
pub fn metrics_check_live(addr: &str) -> Result<String, String> {
    use egobtw_telemetry::prometheus::{self, Exposition};

    let scrape = || -> Result<Exposition, String> {
        let (mut reader, mut writer) = connect_with_retry(addr, Duration::from_secs(10))
            .map_err(|e| format!("connect {addr}: {e}"))?;
        let text =
            roundtrip(&mut reader, &mut writer, "METRICS").map_err(|e| format!("i/o: {e}"))?;
        let expo = prometheus::parse(&text)?;
        let violations = expo.validate(&REQUIRED_METRICS);
        if violations.is_empty() {
            Ok(expo)
        } else {
            Err(format!("exposition invalid: {violations:?}"))
        }
    };
    let first = scrape()?;
    let second = scrape()?;
    let mut series = 0usize;
    for (name, fam) in &first.families {
        if fam.kind != "counter" {
            continue;
        }
        for s in &fam.samples {
            let labels: Vec<(&str, &str)> = s
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            // A counter can't vanish between scrapes — a missing series
            // in the second scrape must fail the monotonicity check.
            let later = second.value(name, &labels)?.unwrap_or(f64::NEG_INFINITY);
            if later < s.value {
                return Err(format!(
                    "{name}{labels:?} went backwards: {} → {later}",
                    s.value
                ));
            }
            series += 1;
        }
    }
    let admitted = second
        .value("egobtw_requests_admitted_total", &[])?
        .unwrap_or(0.0);
    Ok(format!(
        "metrics-check OK: {} families, {series} counter series monotone, admitted={admitted}",
        second.families.len()
    ))
}

/// Oracle check: verify every sampled top-k answer against a replay of
/// the writer's op stream at the answer's epoch. Returns violation
/// messages (empty = clean).
fn check_samples(
    g0: &CsrGraph,
    ops: &[EdgeOp],
    epoch_prefix: &HashMap<u64, usize>,
    samples: &[TopkSample],
) -> Vec<String> {
    let mut truth_by_epoch: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut violations = Vec::new();
    for s in samples {
        let Some(&prefix) = epoch_prefix.get(&s.epoch) else {
            violations.push(format!("answer cites unknown epoch {}", s.epoch));
            continue;
        };
        let truth = truth_by_epoch.entry(s.epoch).or_insert_with(|| {
            let g = replay_graph(g0, &ops[..prefix]).to_csr();
            (0..g.n() as VertexId)
                .map(|v| ego_betweenness_reference(&g, v))
                .collect()
        });
        if let Err(e) = check_topk(truth, &s.entries, s.k, REL_TOL) {
            violations.push(format!("epoch {}: {e}", s.epoch));
        }
    }
    violations
}

/// Runs one scenario's workload against one dataset and returns its JSON
/// record. The catalog name is mangled with the scenario name so the same
/// dataset can be driven once per scenario against a shared target.
fn run_dataset(
    target: &Target<'_>,
    cfg: &LoadgenConfig,
    spec: &DatasetSpec,
    mix: &MixSpec,
) -> Result<Json, String> {
    let catalog_name = format!("{}--{}", spec.name, mix.name);
    // Load the dataset into the target.
    match target {
        Target::InProc(service) => {
            service
                .load_graph(&catalog_name, spec.g0.clone(), spec.mode)
                .map(|_| ())?;
        }
        Target::Tcp(_) => {
            let path = spec
                .path
                .as_ref()
                .ok_or("TCP loadgen needs a dataset file path")?;
            let mut conn = open_conn(target)?;
            let reply = conn.round(&format!(
                "LOAD {} {} {}",
                catalog_name,
                path,
                spec.mode.render()
            ))?;
            expect_ok(&reply)?;
        }
    }

    let n = spec.g0.n();
    if n < 2 {
        return Err(format!("dataset {} too small to drive", spec.name));
    }
    // The reference oracle is cubic per vertex — only check small graphs.
    let check = cfg.check && n <= cfg.check_max_n;
    let updates = ((cfg.ops as f64 * mix.write_frac).round() as usize).min(cfg.ops);
    let reads = cfg.ops - updates;
    let reader_threads = cfg.threads.saturating_sub(1).max(1);
    let sample_every = (reads / (64 * reader_threads)).max(1);

    let mut ops_log: Vec<EdgeOp> = Vec::with_capacity(updates);
    let mut mirror = DynGraph::from_csr(&spec.g0);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let reader_logs: Mutex<Vec<ThreadLog>> = Mutex::new(Vec::new());
    let mut writer_log = ThreadLog::default();

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // Readers.
        for t in 0..reader_threads {
            let share = reads / reader_threads + usize::from(t < reads % reader_threads);
            let (errors, reader_logs) = (&errors, &reader_logs);
            let name = catalog_name.clone();
            let (seed, k) = (cfg.seed, cfg.k);
            scope.spawn(move || {
                let plan = WorkerPlan {
                    name: &name,
                    n,
                    k,
                    seed: seed ^ ((t as u64 + 1) * 0x9E37_79B9),
                    check,
                    sample_every,
                };
                let run =
                    open_conn(target).and_then(|mut conn| reader_loop(&mut conn, &plan, share));
                match run {
                    Ok(log) => reader_logs.lock().unwrap().push(log),
                    Err(e) => errors.lock().unwrap().push(format!("reader {t}: {e}")),
                }
            });
        }
        // Writer (runs on this thread so it can borrow the mirror/log).
        if updates > 0 {
            let plan = WorkerPlan {
                name: &catalog_name,
                n,
                k: cfg.k,
                seed: cfg.seed,
                check,
                sample_every,
            };
            let run = open_conn(target).and_then(|mut conn| {
                writer_loop(
                    &mut conn,
                    &plan,
                    updates,
                    cfg.batch.max(1),
                    &mut mirror,
                    &mut ops_log,
                )
            });
            match run {
                Ok(log) => writer_log = log,
                Err(e) => errors.lock().unwrap().push(format!("writer: {e}")),
            }
        }
    });
    let wall = t0.elapsed();

    let errors = errors.into_inner().unwrap();
    if let Some(first) = errors.first() {
        return Err(format!("{} worker error(s), first: {first}", errors.len()));
    }

    let mut read_ns = Vec::new();
    let mut samples = Vec::new();
    for log in reader_logs.into_inner().unwrap() {
        read_ns.extend(log.read_ns);
        samples.extend(log.samples);
    }

    let (checked, violations) = if check {
        let mut epoch_prefix: HashMap<u64, usize> = writer_log.epochs.iter().copied().collect();
        epoch_prefix.insert(0, 0); // the pre-update epoch
        let violations = check_samples(&spec.g0, &ops_log, &epoch_prefix, &samples);
        for v in &violations {
            eprintln!("loadgen[{catalog_name}]: COMPARATOR VIOLATION: {v}");
        }
        (samples.len(), violations.len())
    } else {
        (0, 0)
    };

    Ok(record_json(RecordCore {
        name: spec.name.clone(),
        scenario: mix.name.clone(),
        n,
        m: spec.g0.m(),
        mode: spec.mode,
        threads: cfg.threads,
        read_ns,
        update_ns: writer_log.update_ns,
        epochs_published: writer_log.epochs.len(),
        wall,
        check,
        checked,
        violations,
        extra: Vec::new(),
    }))
}

/// The shared shape of a per-dataset record; scenario-specific fields
/// ride in `extra` so every kind validates against the same core.
struct RecordCore {
    name: String,
    scenario: String,
    n: usize,
    m: usize,
    mode: Mode,
    threads: usize,
    read_ns: Vec<u64>,
    update_ns: Vec<u64>,
    epochs_published: usize,
    wall: std::time::Duration,
    check: bool,
    checked: usize,
    violations: usize,
    extra: Vec<(String, Json)>,
}

fn record_json(core: RecordCore) -> Json {
    let total_ops = core.read_ns.len() + core.update_ns.len();
    let throughput = total_ops as f64 / core.wall.as_secs_f64().max(1e-9);
    let mut fields = vec![
        ("name".into(), Json::Str(core.name)),
        ("scenario".into(), Json::Str(core.scenario)),
        ("n".into(), Json::Num(core.n as f64)),
        ("m".into(), Json::Num(core.m as f64)),
        ("mode".into(), Json::Str(core.mode.render())),
        ("threads".into(), Json::Num(core.threads as f64)),
        ("reads".into(), Json::Num(core.read_ns.len() as f64)),
        ("updates".into(), Json::Num(core.update_ns.len() as f64)),
        (
            "epochs_published".into(),
            Json::Num(core.epochs_published as f64),
        ),
        (
            "wall_ms".into(),
            Json::Num(core.wall.as_secs_f64() * 1000.0),
        ),
        ("throughput_ops_per_sec".into(), Json::Num(throughput)),
        ("read_latency".into(), latency_json(core.read_ns)),
        ("update_latency".into(), latency_json(core.update_ns)),
        (
            "comparator".into(),
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(core.check)),
                ("checked".into(), Json::Num(core.checked as f64)),
                ("violations".into(), Json::Num(core.violations as f64)),
            ]),
        ),
    ];
    fields.extend(core.extra);
    Json::Obj(fields)
}

/// `restart-recovery`, one dataset: write burst into a WAL-backed
/// in-process service → full teardown → **timed** restart recovery →
/// read phase whose sampled answers are oracle-checked against the
/// writer's durable op prefix at the recovered epoch.
fn run_recovery_dataset(
    cfg: &LoadgenConfig,
    spec: &DatasetSpec,
    scenario: &str,
) -> Result<Json, String> {
    let catalog_name = format!("{}--{}", spec.name, scenario);
    let n = spec.g0.n();
    if n < 2 {
        return Err(format!("dataset {} too small to drive", spec.name));
    }
    let dir = std::env::temp_dir().join(format!(
        "egobtw-loadgen-recovery-{}-{}",
        std::process::id(),
        catalog_name
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mk_service = || {
        Service::with_config(CatalogConfig {
            shards: 4,
            writers_per_shard: 2,
            persist: Some(PersistConfig {
                dir: dir.clone(),
                fsync: FsyncPolicy::Always,
                compact_every: 64,
            }),
            ..CatalogConfig::default()
        })
    };
    let check = cfg.check && n <= cfg.check_max_n;
    let updates = (cfg.ops / 2).max(cfg.batch.max(1));
    let reads = cfg.ops.saturating_sub(updates).max(32);
    let plan = WorkerPlan {
        name: &catalog_name,
        n,
        k: cfg.k,
        seed: cfg.seed,
        check,
        sample_every: (reads / 64).max(1),
    };

    let t0 = Instant::now();
    let service = mk_service();
    service.load_graph(&catalog_name, spec.g0.clone(), spec.mode)?;
    let mut mirror = DynGraph::from_csr(&spec.g0);
    let mut ops_log: Vec<EdgeOp> = Vec::with_capacity(updates);
    let mut conn = Conn::InProc(&service);
    let writer_log = writer_loop(
        &mut conn,
        &plan,
        updates,
        cfg.batch.max(1),
        &mut mirror,
        &mut ops_log,
    )?;
    drop(conn);
    drop(service); // teardown: pools joined, WAL handle closed

    let service = mk_service();
    let t_rec = Instant::now();
    let reports = service.recover()?;
    let recovery_ms = t_rec.elapsed().as_secs_f64() * 1000.0;
    let report = reports
        .iter()
        .find(|(name, _)| name == &catalog_name)
        .map(|&(_, r)| r)
        .ok_or_else(|| format!("recovery rebuilt no dataset {catalog_name:?}"))?;
    let published = writer_log.epochs.last().map_or(0, |&(e, _)| e);
    if report.epoch != published {
        return Err(format!(
            "{catalog_name}: recovered epoch {} but the burst published {published}",
            report.epoch
        ));
    }

    let mut conn = Conn::InProc(&service);
    let reader_log = reader_loop(&mut conn, &plan, reads)?;
    let wall = t0.elapsed();

    let (checked, violations) = if check {
        let mut epoch_prefix: HashMap<u64, usize> = writer_log.epochs.iter().copied().collect();
        epoch_prefix.insert(0, 0);
        let violations = check_samples(&spec.g0, &ops_log, &epoch_prefix, &reader_log.samples);
        for v in &violations {
            eprintln!("loadgen[{catalog_name}]: COMPARATOR VIOLATION (post-recovery): {v}");
        }
        (reader_log.samples.len(), violations.len())
    } else {
        (0, 0)
    };
    drop(conn);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);

    Ok(record_json(RecordCore {
        name: spec.name.clone(),
        scenario: scenario.to_string(),
        n,
        m: spec.g0.m(),
        mode: spec.mode,
        threads: 1,
        read_ns: reader_log.read_ns,
        update_ns: writer_log.update_ns,
        epochs_published: writer_log.epochs.len(),
        wall,
        check,
        checked,
        violations,
        extra: vec![
            ("recovery_ms".into(), Json::Num(recovery_ms)),
            ("recovered_epoch".into(), Json::Num(report.epoch as f64)),
            (
                "snapshot_epoch".into(),
                Json::Num(report.snapshot_epoch as f64),
            ),
            ("wal_replayed".into(), Json::Num(report.replayed as f64)),
        ],
    }))
}

/// `shard-skew`: every dataset drives **concurrently** against the same
/// target, all writes aimed at the first (hot) one — cold readers ride
/// other shards and must not stall behind the hot shard's writer storm.
fn run_skew_scenario(
    target: &Target<'_>,
    cfg: &LoadgenConfig,
    specs: &[DatasetSpec],
) -> Result<Json, String> {
    const NAME: &str = "shard-skew";
    if specs.len() < 2 {
        return Err("shard-skew scenario needs at least 2 datasets".into());
    }
    let results: Vec<Result<Json, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                scope.spawn(move || {
                    let role = if i == 0 { "hot" } else { "cold" };
                    let mix = MixSpec {
                        name: NAME.into(),
                        write_frac: if i == 0 { 0.5 } else { 0.0 },
                    };
                    run_dataset(target, cfg, spec, &mix).map(|record| match record {
                        Json::Obj(mut fields) => {
                            fields.push(("role".into(), Json::Str(role.into())));
                            Json::Obj(fields)
                        }
                        other => other,
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let datasets = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(Json::Obj(vec![
        ("name".into(), Json::Str(NAME.into())),
        ("kind".into(), Json::Str("skew".into())),
        ("write_frac".into(), Json::Num(0.5)),
        ("datasets".into(), Json::Arr(datasets)),
    ]))
}

/// `multi-tenant`: `tenants` tiny synthesized datasets in one sharded
/// in-process catalog, light concurrent traffic on each, every sampled
/// answer oracle-checked (the graphs are small enough to check all of
/// them), one aggregate record.
fn run_multi_tenant_scenario(cfg: &LoadgenConfig, tenants: usize) -> Result<Json, String> {
    const NAME: &str = "multi-tenant";
    if tenants < 2 {
        return Err("multi-tenant scenario needs at least 2 tenants".into());
    }
    let service = Service::with_config(CatalogConfig {
        shards: 8,
        writers_per_shard: 2,
        persist: None,
        ..CatalogConfig::default()
    });
    let t0 = Instant::now();
    let graphs: Vec<CsrGraph> = (0..tenants)
        .map(|i| egobtw_gen::gnp(20, 0.18, cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9)))
        .collect();
    for (i, g) in graphs.iter().enumerate() {
        service.load_graph(&format!("ten{i:04}"), g.clone(), Mode::default())?;
    }

    struct TenantLog {
        log: ThreadLog,
        ops: Vec<EdgeOp>,
        tenant: usize,
    }
    let worker_threads = cfg.threads.max(1);
    let outcomes: Vec<Result<Vec<TenantLog>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..worker_threads)
            .map(|t| {
                let (service, graphs) = (&service, &graphs);
                scope.spawn(move || {
                    let mut logs = Vec::new();
                    for tenant in (t..tenants).step_by(worker_threads) {
                        let name = format!("ten{tenant:04}");
                        let g0 = &graphs[tenant];
                        let plan = WorkerPlan {
                            name: &name,
                            n: g0.n(),
                            k: cfg.k,
                            seed: cfg.seed ^ (tenant as u64 + 1),
                            check: cfg.check,
                            sample_every: 3,
                        };
                        let mut mirror = DynGraph::from_csr(g0);
                        let mut ops = Vec::new();
                        let mut conn = Conn::InProc(service);
                        let mut log = writer_loop(
                            &mut conn,
                            &plan,
                            cfg.batch.max(1) * 3,
                            cfg.batch.max(1),
                            &mut mirror,
                            &mut ops,
                        )?;
                        let reads = reader_loop(&mut conn, &plan, 8)?;
                        log.read_ns = reads.read_ns;
                        log.samples = reads.samples;
                        logs.push(TenantLog { log, ops, tenant });
                    }
                    Ok(logs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();

    let mut read_ns = Vec::new();
    let mut update_ns = Vec::new();
    let mut epochs_published = 0usize;
    let mut checked = 0usize;
    let mut violations = 0usize;
    for outcome in outcomes {
        for tl in outcome? {
            if cfg.check {
                let mut epoch_prefix: HashMap<u64, usize> = tl.log.epochs.iter().copied().collect();
                epoch_prefix.insert(0, 0);
                let bad =
                    check_samples(&graphs[tl.tenant], &tl.ops, &epoch_prefix, &tl.log.samples);
                for v in &bad {
                    eprintln!("loadgen[ten{:04}]: COMPARATOR VIOLATION: {v}", tl.tenant);
                }
                checked += tl.log.samples.len();
                violations += bad.len();
            }
            read_ns.extend(tl.log.read_ns);
            update_ns.extend(tl.log.update_ns);
            epochs_published += tl.log.epochs.len();
        }
    }
    let (total_n, total_m) = graphs
        .iter()
        .fold((0, 0), |(n, m), g| (n + g.n(), m + g.m()));
    let record = record_json(RecordCore {
        name: "tenants".into(),
        scenario: NAME.into(),
        n: total_n,
        m: total_m,
        mode: Mode::default(),
        threads: worker_threads,
        read_ns,
        update_ns,
        epochs_published,
        wall,
        check: cfg.check,
        checked,
        violations,
        extra: vec![("tenants".into(), Json::Num(tenants as f64))],
    });
    Ok(Json::Obj(vec![
        ("name".into(), Json::Str(NAME.into())),
        ("kind".into(), Json::Str("multi-tenant".into())),
        (
            "write_frac".into(),
            Json::Num({
                let w = (cfg.batch.max(1) * 3) as f64;
                w / (w + 8.0)
            }),
        ),
        ("datasets".into(), Json::Arr(vec![record])),
    ]))
}

/// `overload`: a deliberately tiny TCP server — 2 workers, a 2-slot
/// pending queue, connection cap 8, compute watermark 1 — hammered by
/// closer threads issuing cache-missing `TOPK` requests (an epoch-bumping
/// writer keeps the per-epoch cache cold) over fresh connections. Records
/// saturation QPS (admitted requests only), the shed rate, and p99 of
/// admitted reads; fails if any request ends without an explicit outcome
/// (`OK`, `ERR busy`, `ERR draining`, `ERR deadline`, or a transport
/// error from a refused connection — never a hang).
fn run_overload_scenario(cfg: &LoadgenConfig) -> Result<Json, String> {
    const NAME: &str = "overload";
    let g0 = egobtw_gen::gnp(150, 0.08, cfg.seed ^ 0x00EE_10AD);
    let mut service = Service::new();
    service.set_compute_watermark(1);
    service.set_default_deadline(Some(Duration::from_millis(2_000)));
    let service = Arc::new(service);
    service.load_graph("ov", g0.clone(), Mode::default())?;
    let server = Server::spawn_with(
        service.clone(),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            queue_cap: 2,
            max_conns: 8,
            io_timeout: Some(Duration::from_secs(5)),
            drain_grace: Duration::from_millis(500),
        },
    )
    .map_err(|e| format!("overload server: {e}"))?;
    let addr = server.local_addr().to_string();

    #[derive(Default)]
    struct CloserLog {
        admitted_ns: Vec<u64>,
        shed: usize,
        deadline: usize,
        transport: usize,
        unexpected: Option<String>,
    }
    let closers = cfg.threads.max(4);
    let per_closer = (cfg.ops / closers).clamp(16, 120);
    let stop_writer = AtomicBool::new(false);
    let t_run = Instant::now();
    let (logs, writer_epochs) = std::thread::scope(|scope| {
        // Epoch-bumping writer: keeps the per-epoch result cache cold so
        // reads actually reach the (watermarked) compute path.
        let writer = {
            let (addr, stop) = (addr.clone(), &stop_writer);
            let seed = cfg.seed;
            scope.spawn(move || {
                let mut epochs = 0usize;
                let mut rng = StdRng::seed_from_u64(seed ^ 0xAB5E);
                let Ok((mut reader, mut stream)) =
                    connect_with_retry(&addr, Duration::from_secs(5))
                else {
                    return epochs;
                };
                let mut expected = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let u = rng.random_range(0..150u32);
                    let v = (u + 1 + rng.random_range(0..148u32)) % 150;
                    let payload = format!("UPDATE ov seq={expected} +{u},{v} -{u},{v}");
                    match roundtrip(&mut reader, &mut stream, &payload) {
                        Ok(reply) if reply.starts_with("OK ") => {
                            epochs += 1;
                            expected += 1;
                        }
                        Ok(_) => std::thread::sleep(Duration::from_millis(5)),
                        Err(_) => break,
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                epochs
            })
        };
        let handles: Vec<_> = (0..closers)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut log = CloserLog::default();
                    for i in 0..per_closer {
                        // Distinct k per request defeats same-epoch cache
                        // coalescing; the explicit engine skips the free
                        // maintained path.
                        let k = 1 + (c * per_closer + i) % 32;
                        let payload = format!("TOPK ov {k} core::compute_all");
                        let t0 = Instant::now();
                        match connect_with_retry(&addr, Duration::from_secs(2)).and_then(
                            |(mut reader, mut stream)| {
                                roundtrip(&mut reader, &mut stream, &payload)
                            },
                        ) {
                            Ok(reply) if reply.starts_with("OK ") => {
                                log.admitted_ns.push(t0.elapsed().as_nanos() as u64)
                            }
                            Ok(reply) if is_retryable_response(&reply) => log.shed += 1,
                            Ok(reply) if reply.starts_with("ERR deadline") => log.deadline += 1,
                            Ok(reply) => {
                                // Any other reply is a real failure, not
                                // an overload outcome.
                                log.unexpected = Some(reply);
                                break;
                            }
                            // A connection the acceptor refused and
                            // closed mid-handshake surfaces as an I/O
                            // error — an explicit outcome, not a hang.
                            Err(_) => log.transport += 1,
                        }
                    }
                    log
                })
            })
            .collect();
        let logs: Vec<CloserLog> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        stop_writer.store(true, Ordering::Relaxed);
        (logs, writer.join().unwrap())
    });
    let run_wall = t_run.elapsed();
    let t0 = Instant::now();
    server.drain(Duration::from_millis(500));
    let drain_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let mut admitted_ns = Vec::new();
    let (mut shed, mut deadline, mut transport) = (0usize, 0usize, 0usize);
    for log in logs {
        if let Some(reply) = log.unexpected {
            return Err(format!("overload closer: unexpected reply {reply:?}"));
        }
        admitted_ns.extend(log.admitted_ns);
        shed += log.shed;
        deadline += log.deadline;
        transport += log.transport;
    }
    let total = admitted_ns.len() + shed + deadline + transport;
    if total != closers * per_closer {
        return Err(format!(
            "overload scenario lost requests: {total} outcomes for {} sends",
            closers * per_closer
        ));
    }
    let admitted = admitted_ns.len();
    if admitted == 0 {
        return Err("overload scenario admitted no requests at all".into());
    }
    let saturation_qps = admitted as f64 / run_wall.as_secs_f64().max(1e-9);
    let shed_rate = (shed + transport) as f64 / total as f64;
    let record = record_json(RecordCore {
        name: "ov".into(),
        scenario: NAME.into(),
        n: g0.n(),
        m: g0.m(),
        mode: Mode::default(),
        threads: closers,
        read_ns: admitted_ns,
        update_ns: Vec::new(),
        epochs_published: writer_epochs,
        wall: run_wall,
        check: false,
        checked: 0,
        violations: 0,
        extra: vec![
            ("admitted".into(), Json::Num(admitted as f64)),
            ("shed".into(), Json::Num(shed as f64)),
            ("deadline_expired".into(), Json::Num(deadline as f64)),
            ("conn_refused".into(), Json::Num(transport as f64)),
            ("shed_rate".into(), Json::Num(shed_rate)),
            ("saturation_qps".into(), Json::Num(saturation_qps)),
            ("drain_ms".into(), Json::Num(drain_ms)),
        ],
    });
    Ok(Json::Obj(vec![
        ("name".into(), Json::Str(NAME.into())),
        ("kind".into(), Json::Str("overload".into())),
        ("write_frac".into(), Json::Num(0.0)),
        ("datasets".into(), Json::Arr(vec![record])),
    ]))
}

/// Runs the full workload: every scenario in `mixes` drives every dataset
/// in `specs`, one (scenario, dataset) pair after another (each gets the
/// configured thread count to itself), then any [`ExtraScenarios`] —
/// restart-recovery, shard-skew, multi-tenant — and returns the
/// `BENCH_service.json` document. With `mixes` empty and no extras, a
/// single `default` mix at `cfg.write_frac` runs. Fails on any worker
/// error; comparator violations are *reported in the document*, not
/// fatal, so the caller (CI) can assert on them explicitly.
pub fn run(
    target: &Target<'_>,
    cfg: &LoadgenConfig,
    specs: &[DatasetSpec],
    mixes: &[MixSpec],
    extras: &ExtraScenarios,
) -> Result<Json, String> {
    if specs.is_empty() {
        return Err("loadgen needs at least one dataset".into());
    }
    let default_mix = [MixSpec {
        name: "default".into(),
        write_frac: cfg.write_frac,
    }];
    let any_extra = extras.recovery || extras.skew || extras.tenants > 0 || extras.overload;
    let mixes = if mixes.is_empty() && !any_extra {
        &default_mix
    } else {
        mixes
    };
    for mix in mixes {
        if !(0.0..=1.0).contains(&mix.write_frac) {
            return Err(format!("mix {:?}: write_frac out of [0,1]", mix.name));
        }
        if mix.name.is_empty() || !mix.name.chars().all(|c| c.is_ascii_graphic()) {
            return Err(format!("bad mix name {:?}", mix.name));
        }
    }
    let mut scenarios = Vec::new();
    for mix in mixes {
        let mut datasets = Vec::new();
        for spec in specs {
            datasets.push(run_dataset(target, cfg, spec, mix)?);
        }
        scenarios.push(Json::Obj(vec![
            ("name".into(), Json::Str(mix.name.clone())),
            ("kind".into(), Json::Str("mixed".into())),
            ("write_frac".into(), Json::Num(mix.write_frac)),
            ("datasets".into(), Json::Arr(datasets)),
        ]));
    }
    if extras.recovery {
        let mut datasets = Vec::new();
        for spec in specs {
            datasets.push(run_recovery_dataset(cfg, spec, "restart-recovery")?);
        }
        scenarios.push(Json::Obj(vec![
            ("name".into(), Json::Str("restart-recovery".into())),
            ("kind".into(), Json::Str("recovery".into())),
            ("write_frac".into(), Json::Num(0.5)),
            ("datasets".into(), Json::Arr(datasets)),
        ]));
    }
    if extras.skew {
        scenarios.push(run_skew_scenario(target, cfg, specs)?);
    }
    if extras.tenants > 0 {
        scenarios.push(run_multi_tenant_scenario(cfg, extras.tenants)?);
    }
    if extras.overload {
        scenarios.push(run_overload_scenario(cfg)?);
    }
    Ok(Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        (
            "config".into(),
            Json::Obj(vec![
                ("threads".into(), Json::Num(cfg.threads as f64)),
                ("ops".into(), Json::Num(cfg.ops as f64)),
                ("k".into(), Json::Num(cfg.k as f64)),
                ("batch".into(), Json::Num(cfg.batch as f64)),
                ("seed".into(), Json::Num(cfg.seed as f64)),
                ("check".into(), Json::Bool(cfg.check)),
                ("check_max_n".into(), Json::Num(cfg.check_max_n as f64)),
                (
                    "target".into(),
                    Json::Str(match target {
                        Target::InProc(_) => "inproc".into(),
                        Target::Tcp(addr) => format!("tcp:{addr}"),
                    }),
                ),
            ]),
        ),
        ("scenarios".into(), Json::Arr(scenarios)),
    ]))
}

/// Schema check for a `BENCH_service.json` document: the right schema
/// tag, at least `min_scenarios` scenario records with known kinds,
/// every **mixed** scenario holding at least `min_datasets` dataset
/// records, every record carrying finite, sane core metrics, and the
/// kind-specific fields present (`recovery_ms`/`recovered_epoch` on
/// recovery records, `role` on skew records, `tenants` on multi-tenant).
/// Returns the first problem found.
pub fn validate(doc: &Json, min_datasets: usize, min_scenarios: usize) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag is not {SCHEMA:?}"));
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("no scenarios array")?;
    if scenarios.len() < min_scenarios {
        return Err(format!(
            "{} scenario record(s), expected at least {min_scenarios}",
            scenarios.len()
        ));
    }
    for (si, sc) in scenarios.iter().enumerate() {
        let sc_name = sc
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("scenario {si}: no name"))?;
        let kind = sc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(format!("scenario {sc_name:?}: no kind"))?;
        if !["mixed", "recovery", "skew", "multi-tenant", "overload"].contains(&kind) {
            return Err(format!("scenario {sc_name:?}: unknown kind {kind:?}"));
        }
        sc.get("write_frac")
            .and_then(Json::as_num)
            .filter(|x| (0.0..=1.0).contains(x))
            .ok_or(format!("scenario {sc_name:?}: bad write_frac"))?;
        let datasets = sc
            .get("datasets")
            .and_then(Json::as_arr)
            .ok_or(format!("scenario {sc_name:?}: no datasets array"))?;
        let floor = match kind {
            "mixed" => min_datasets.max(1),
            "skew" => 2,
            _ => 1,
        };
        if datasets.len() < floor {
            return Err(format!(
                "scenario {sc_name:?}: {} dataset record(s), expected at least {floor}",
                datasets.len()
            ));
        }
        for (i, ds) in datasets.iter().enumerate() {
            let name = ds
                .get("name")
                .and_then(Json::as_str)
                .ok_or(format!("scenario {sc_name:?} dataset {i}: no name"))?;
            ds.get("scenario")
                .and_then(Json::as_str)
                .filter(|s| *s == sc_name)
                .ok_or(format!(
                    "dataset {name:?}: scenario tag does not match {sc_name:?}"
                ))?;
            let num = |key: &str| -> Result<f64, String> {
                ds.get(key)
                    .and_then(Json::as_num)
                    .filter(|x| x.is_finite())
                    .ok_or(format!("dataset {name:?}: missing/non-finite {key}"))
            };
            if num("throughput_ops_per_sec")? <= 0.0 {
                return Err(format!("dataset {name:?}: non-positive throughput"));
            }
            num("wall_ms")?;
            num("reads")?;
            num("updates")?;
            for class in ["read_latency", "update_latency"] {
                let lat = ds
                    .get(class)
                    .ok_or(format!("dataset {name:?}: missing {class}"))?;
                for key in ["count", "p50_us", "p90_us", "p99_us", "max_us"] {
                    lat.get(key)
                        .and_then(Json::as_num)
                        .filter(|x| x.is_finite() && *x >= 0.0)
                        .ok_or(format!("dataset {name:?}: bad {class}.{key}"))?;
                }
            }
            let comp = ds
                .get("comparator")
                .ok_or(format!("dataset {name:?}: missing comparator"))?;
            let violations = comp
                .get("violations")
                .and_then(Json::as_num)
                .ok_or(format!("dataset {name:?}: missing comparator.violations"))?;
            if violations != 0.0 {
                return Err(format!(
                    "dataset {name:?}: {violations} comparator violation(s)"
                ));
            }
            match kind {
                "recovery" => {
                    num("recovery_ms")?;
                    if num("recovered_epoch")? < 1.0 {
                        return Err(format!(
                            "dataset {name:?}: recovery scenario recovered no epochs"
                        ));
                    }
                    num("wal_replayed")?;
                }
                "skew" => {
                    ds.get("role")
                        .and_then(Json::as_str)
                        .filter(|r| ["hot", "cold"].contains(r))
                        .ok_or(format!("dataset {name:?}: skew record needs a role"))?;
                }
                "multi-tenant" => {
                    let tenants = num("tenants")?;
                    if tenants < 2.0 {
                        return Err(format!("dataset {name:?}: fewer than 2 tenants"));
                    }
                }
                "overload" => {
                    if num("admitted")? <= 0.0 {
                        return Err(format!("dataset {name:?}: overload admitted nothing"));
                    }
                    let rate = num("shed_rate")?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("dataset {name:?}: shed_rate {rate} out of [0,1]"));
                    }
                    num("saturation_qps")?;
                    num("drain_ms")?;
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates_the_tail_instead_of_clamping() {
        // 50 samples: nearest-rank rounding used to clamp p99 to the max.
        let ns: Vec<u64> = (1..=50).map(|i| i * 1_000).collect();
        let (p99, count) = percentile_us(&ns, 0.99);
        assert_eq!(count, 50);
        assert!(
            p99 > 49.0 && p99 < 50.0,
            "p99 of 50 samples must interpolate below the max, got {p99}"
        );
        let (max, _) = percentile_us(&ns, 1.0);
        assert_eq!(max, 50.0);
        let (p50, _) = percentile_us(&ns, 0.50);
        assert_eq!(p50, 25.5);
        assert_eq!(percentile_us(&[], 0.5), (0.0, 0));
    }

    #[test]
    fn metrics_crosscheck_agrees_within_one_bucket() {
        let report = metrics_crosscheck(8, 7).expect("crosscheck must pass");
        assert_eq!(
            report.get("requests").and_then(|r| r.as_num()),
            Some(8.0),
            "{report:?}"
        );
    }
}
