//! Load-generating client: mixed read/update workloads, latency
//! percentiles, and an oracle-checked mode.
//!
//! One run drives each dataset with `threads` client threads: thread 0 is
//! the single **writer** (it owns the dataset's whole update stream, so
//! the mapping *epoch → op prefix* is well defined), the rest are
//! **readers** issuing a TOPK-heavy query mix. With `check` on, readers
//! sample their top-k responses and, after the run, every sampled answer
//! is verified against a from-scratch replay of the writer's stream at
//! that epoch — truth from [`ego_betweenness_reference`] (zero machinery
//! shared with any engine), compared with the `conformance` crate's
//! tie-aware comparator. A served answer that was stale, torn, or
//! cache-leaked across epochs cannot pass.
//!
//! A run covers one or more **scenarios** (named read/write mixes, e.g.
//! `read-heavy` at 10% writes and `update-heavy` at 50%): every dataset
//! is driven once per scenario, under a catalog name mangled with the
//! scenario name so epochs never bleed across scenarios. Results go to
//! `BENCH_service.json` (schema `egobtw/bench-service/v2`), one record
//! per (scenario, dataset) with throughput and read/update latency
//! percentiles; [`validate`] is the CI schema check.
//!
//! The oracle check replays the writer's stream from scratch per sampled
//! epoch with a cubic-per-vertex reference, so it is automatically
//! skipped (and recorded as skipped) for datasets larger than
//! [`LoadgenConfig::check_max_n`] — large graphs get throughput numbers,
//! small ones get proofs.

use crate::catalog::Mode;
use crate::proto::parse_entries;
use crate::server::{connect_with_retry, roundtrip};
use crate::service::Service;
use conformance::{check_topk, REL_TOL};
use egobtw_bench::json::Json;
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_dynamic::{replay_graph, EdgeOp};
use egobtw_graph::{CsrGraph, DynGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag written into `BENCH_service.json`.
pub const SCHEMA: &str = "egobtw/bench-service/v2";

/// One named read/write mix of a run.
#[derive(Clone, Debug)]
pub struct MixSpec {
    /// Scenario name (goes into the document and the mangled catalog
    /// names, so it must be catalog-name-safe).
    pub name: String,
    /// Fraction of ops that are edge updates (e.g. `0.5` for 50/50).
    pub write_frac: f64,
}

/// Workload shape shared by every dataset in a run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Client threads per dataset (thread 0 writes, the rest read).
    pub threads: usize,
    /// Total operations per dataset (reads + updates).
    pub ops: usize,
    /// Default update fraction, used when a run names no explicit mixes.
    pub write_frac: f64,
    /// `k` for the top-k reads.
    pub k: usize,
    /// Update ops per UPDATE command (one epoch per command).
    pub batch: usize,
    /// Workload seed.
    pub seed: u64,
    /// Verify sampled top-k answers against the replay oracle.
    pub check: bool,
    /// Largest `n` the oracle check runs on (the reference truth is cubic
    /// per vertex); bigger datasets record the check as skipped.
    pub check_max_n: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            threads: 4,
            ops: 2000,
            write_frac: 0.1,
            k: 8,
            batch: 2,
            seed: 42,
            check: false,
            check_max_n: 512,
        }
    }
}

/// One dataset of a run.
pub struct DatasetSpec {
    /// Catalog name to load under (must be fresh for the run).
    pub name: String,
    /// The initial graph (also the replay base in check mode).
    pub g0: CsrGraph,
    /// File path to `g0`, required for TCP targets (the daemon loads the
    /// file itself).
    pub path: Option<String>,
    /// Maintainer mode.
    pub mode: Mode,
}

/// Where the load goes.
pub enum Target<'a> {
    /// Straight into an in-process [`Service`] (no sockets).
    InProc(&'a Service),
    /// A running daemon at this address.
    Tcp(String),
}

enum Conn<'a> {
    InProc(&'a Service),
    Tcp(Box<(BufReader<TcpStream>, TcpStream)>),
}

impl Conn<'_> {
    fn round(&mut self, payload: &str) -> Result<String, String> {
        match self {
            Conn::InProc(service) => Ok(service.handle_payload(payload)),
            Conn::Tcp(pair) => {
                let (reader, writer) = &mut **pair;
                roundtrip(reader, writer, payload).map_err(|e| format!("i/o: {e}"))
            }
        }
    }
}

fn open_conn<'a>(target: &'a Target<'a>) -> Result<Conn<'a>, String> {
    match target {
        Target::InProc(service) => Ok(Conn::InProc(service)),
        Target::Tcp(addr) => connect_with_retry(addr, std::time::Duration::from_secs(10))
            .map(|pair| Conn::Tcp(Box::new(pair)))
            .map_err(|e| format!("connect {addr}: {e}")),
    }
}

/// Pulls `key=value` out of a response line.
fn field<'r>(reply: &'r str, key: &str) -> Result<&'r str, String> {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| format!("no {key}= in reply {reply:?}"))
}

fn expect_ok(reply: &str) -> Result<&str, String> {
    if reply.starts_with("OK ") {
        Ok(reply)
    } else {
        Err(format!("server said: {reply}"))
    }
}

/// One sampled top-k answer, to be oracle-checked after the run.
struct TopkSample {
    epoch: u64,
    k: usize,
    entries: Vec<(VertexId, f64)>,
}

#[derive(Default)]
struct ThreadLog {
    read_ns: Vec<u64>,
    update_ns: Vec<u64>,
    samples: Vec<TopkSample>,
    /// Writer only: `(epoch, ops-prefix length)` after each batch.
    epochs: Vec<(u64, usize)>,
}

/// Per-thread workload parameters (shared fields of the two loops).
struct WorkerPlan<'a> {
    name: &'a str,
    n: usize,
    k: usize,
    seed: u64,
    check: bool,
    sample_every: usize,
}

fn writer_loop(
    conn: &mut Conn<'_>,
    plan: &WorkerPlan<'_>,
    updates: usize,
    batch: usize,
    mirror: &mut DynGraph,
    ops_log: &mut Vec<EdgeOp>,
) -> Result<ThreadLog, String> {
    let (name, n) = (plan.name, plan.n);
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0xE12A_11E5);
    let mut log = ThreadLog::default();
    let mut sent = 0usize;
    while sent < updates {
        let take = batch.min(updates - sent);
        let mut payload = format!("UPDATE {name}");
        for _ in 0..take {
            // Pick a state-changing op against the writer's mirror.
            let (u, v) = loop {
                let u = rng.random_range(0..n as u32);
                let v = rng.random_range(0..n as u32);
                if u != v {
                    break (u, v);
                }
            };
            let op = if mirror.has_edge(u, v) {
                payload.push_str(&format!(" -{u},{v}"));
                EdgeOp::Delete(u, v)
            } else {
                payload.push_str(&format!(" +{u},{v}"));
                EdgeOp::Insert(u, v)
            };
            match op {
                EdgeOp::Insert(a, b) => mirror.insert_edge(a, b),
                EdgeOp::Delete(a, b) => mirror.remove_edge(a, b),
            };
            ops_log.push(op);
        }
        sent += take;
        let t0 = Instant::now();
        let reply = conn.round(&payload)?;
        log.update_ns.push(t0.elapsed().as_nanos() as u64);
        let reply = expect_ok(&reply)?;
        let epoch: u64 = field(reply, "epoch")?
            .parse()
            .map_err(|_| format!("bad epoch in {reply:?}"))?;
        log.epochs.push((epoch, ops_log.len()));
    }
    Ok(log)
}

fn reader_loop(
    conn: &mut Conn<'_>,
    plan: &WorkerPlan<'_>,
    reads: usize,
) -> Result<ThreadLog, String> {
    let (name, n, k) = (plan.name, plan.n, plan.k);
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut log = ThreadLog::default();
    for i in 0..reads {
        let roll: f64 = rng.random_range(0.0..1.0);
        let payload = if roll < 0.8 {
            format!("TOPK {name} {k}")
        } else if roll < 0.9 {
            format!("SCORE {name} {}", rng.random_range(0..n as u32))
        } else {
            let u = rng.random_range(0..n as u32);
            let v = rng.random_range(0..n as u32);
            format!("COMMON {name} {u} {v}")
        };
        let t0 = Instant::now();
        let reply = conn.round(&payload)?;
        log.read_ns.push(t0.elapsed().as_nanos() as u64);
        let reply = expect_ok(&reply)?;
        if plan.check && payload.starts_with("TOPK") && i % plan.sample_every == 0 {
            log.samples.push(TopkSample {
                epoch: field(reply, "epoch")?
                    .parse()
                    .map_err(|_| format!("bad epoch in {reply:?}"))?,
                k,
                entries: parse_entries(field(reply, "entries")?)?,
            });
        }
    }
    Ok(log)
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

fn latency_json(mut ns: Vec<u64>) -> Json {
    ns.sort_unstable();
    Json::Obj(vec![
        ("count".into(), Json::Num(ns.len() as f64)),
        ("p50_us".into(), Json::Num(percentile_us(&ns, 0.50))),
        ("p90_us".into(), Json::Num(percentile_us(&ns, 0.90))),
        ("p99_us".into(), Json::Num(percentile_us(&ns, 0.99))),
        (
            "max_us".into(),
            Json::Num(ns.last().map_or(0.0, |&x| x as f64 / 1000.0)),
        ),
    ])
}

/// Oracle check: verify every sampled top-k answer against a replay of
/// the writer's op stream at the answer's epoch. Returns violation
/// messages (empty = clean).
fn check_samples(
    g0: &CsrGraph,
    ops: &[EdgeOp],
    epoch_prefix: &HashMap<u64, usize>,
    samples: &[TopkSample],
) -> Vec<String> {
    let mut truth_by_epoch: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut violations = Vec::new();
    for s in samples {
        let Some(&prefix) = epoch_prefix.get(&s.epoch) else {
            violations.push(format!("answer cites unknown epoch {}", s.epoch));
            continue;
        };
        let truth = truth_by_epoch.entry(s.epoch).or_insert_with(|| {
            let g = replay_graph(g0, &ops[..prefix]).to_csr();
            (0..g.n() as VertexId)
                .map(|v| ego_betweenness_reference(&g, v))
                .collect()
        });
        if let Err(e) = check_topk(truth, &s.entries, s.k, REL_TOL) {
            violations.push(format!("epoch {}: {e}", s.epoch));
        }
    }
    violations
}

/// Runs one scenario's workload against one dataset and returns its JSON
/// record. The catalog name is mangled with the scenario name so the same
/// dataset can be driven once per scenario against a shared target.
fn run_dataset(
    target: &Target<'_>,
    cfg: &LoadgenConfig,
    spec: &DatasetSpec,
    mix: &MixSpec,
) -> Result<Json, String> {
    let catalog_name = format!("{}--{}", spec.name, mix.name);
    // Load the dataset into the target.
    match target {
        Target::InProc(service) => {
            service
                .load_graph(&catalog_name, spec.g0.clone(), spec.mode)
                .map(|_| ())?;
        }
        Target::Tcp(_) => {
            let path = spec
                .path
                .as_ref()
                .ok_or("TCP loadgen needs a dataset file path")?;
            let mut conn = open_conn(target)?;
            let reply = conn.round(&format!(
                "LOAD {} {} {}",
                catalog_name,
                path,
                spec.mode.render()
            ))?;
            expect_ok(&reply)?;
        }
    }

    let n = spec.g0.n();
    if n < 2 {
        return Err(format!("dataset {} too small to drive", spec.name));
    }
    // The reference oracle is cubic per vertex — only check small graphs.
    let check = cfg.check && n <= cfg.check_max_n;
    let updates = ((cfg.ops as f64 * mix.write_frac).round() as usize).min(cfg.ops);
    let reads = cfg.ops - updates;
    let reader_threads = cfg.threads.saturating_sub(1).max(1);
    let sample_every = (reads / (64 * reader_threads)).max(1);

    let mut ops_log: Vec<EdgeOp> = Vec::with_capacity(updates);
    let mut mirror = DynGraph::from_csr(&spec.g0);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let reader_logs: Mutex<Vec<ThreadLog>> = Mutex::new(Vec::new());
    let mut writer_log = ThreadLog::default();

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // Readers.
        for t in 0..reader_threads {
            let share = reads / reader_threads + usize::from(t < reads % reader_threads);
            let (errors, reader_logs) = (&errors, &reader_logs);
            let name = catalog_name.clone();
            let (seed, k) = (cfg.seed, cfg.k);
            scope.spawn(move || {
                let plan = WorkerPlan {
                    name: &name,
                    n,
                    k,
                    seed: seed ^ ((t as u64 + 1) * 0x9E37_79B9),
                    check,
                    sample_every,
                };
                let run =
                    open_conn(target).and_then(|mut conn| reader_loop(&mut conn, &plan, share));
                match run {
                    Ok(log) => reader_logs.lock().unwrap().push(log),
                    Err(e) => errors.lock().unwrap().push(format!("reader {t}: {e}")),
                }
            });
        }
        // Writer (runs on this thread so it can borrow the mirror/log).
        if updates > 0 {
            let plan = WorkerPlan {
                name: &catalog_name,
                n,
                k: cfg.k,
                seed: cfg.seed,
                check,
                sample_every,
            };
            let run = open_conn(target).and_then(|mut conn| {
                writer_loop(
                    &mut conn,
                    &plan,
                    updates,
                    cfg.batch.max(1),
                    &mut mirror,
                    &mut ops_log,
                )
            });
            match run {
                Ok(log) => writer_log = log,
                Err(e) => errors.lock().unwrap().push(format!("writer: {e}")),
            }
        }
    });
    let wall = t0.elapsed();

    let errors = errors.into_inner().unwrap();
    if let Some(first) = errors.first() {
        return Err(format!("{} worker error(s), first: {first}", errors.len()));
    }

    let mut read_ns = Vec::new();
    let mut samples = Vec::new();
    for log in reader_logs.into_inner().unwrap() {
        read_ns.extend(log.read_ns);
        samples.extend(log.samples);
    }

    let (checked, violations) = if check {
        let mut epoch_prefix: HashMap<u64, usize> = writer_log.epochs.iter().copied().collect();
        epoch_prefix.insert(0, 0); // the pre-update epoch
        let violations = check_samples(&spec.g0, &ops_log, &epoch_prefix, &samples);
        for v in &violations {
            eprintln!("loadgen[{catalog_name}]: COMPARATOR VIOLATION: {v}");
        }
        (samples.len(), violations.len())
    } else {
        (0, 0)
    };

    let total_ops = read_ns.len() + writer_log.update_ns.len();
    let throughput = total_ops as f64 / wall.as_secs_f64().max(1e-9);
    Ok(Json::Obj(vec![
        ("name".into(), Json::Str(spec.name.clone())),
        ("scenario".into(), Json::Str(mix.name.clone())),
        ("n".into(), Json::Num(n as f64)),
        ("m".into(), Json::Num(spec.g0.m() as f64)),
        ("mode".into(), Json::Str(spec.mode.render())),
        ("threads".into(), Json::Num(cfg.threads as f64)),
        ("reads".into(), Json::Num(read_ns.len() as f64)),
        (
            "updates".into(),
            Json::Num(writer_log.update_ns.len() as f64),
        ),
        (
            "epochs_published".into(),
            Json::Num(writer_log.epochs.len() as f64),
        ),
        ("wall_ms".into(), Json::Num(wall.as_secs_f64() * 1000.0)),
        ("throughput_ops_per_sec".into(), Json::Num(throughput)),
        ("read_latency".into(), latency_json(read_ns)),
        ("update_latency".into(), latency_json(writer_log.update_ns)),
        (
            "comparator".into(),
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(check)),
                ("checked".into(), Json::Num(checked as f64)),
                ("violations".into(), Json::Num(violations as f64)),
            ]),
        ),
    ]))
}

/// Runs the full workload: every scenario in `mixes` drives every dataset
/// in `specs`, one (scenario, dataset) pair after another (each gets the
/// configured thread count to itself), returning the
/// `BENCH_service.json` document. With `mixes` empty, a single `default`
/// scenario at `cfg.write_frac` runs. Fails on any worker error;
/// comparator violations are *reported in the document*, not fatal, so
/// the caller (CI) can assert on them explicitly.
pub fn run(
    target: &Target<'_>,
    cfg: &LoadgenConfig,
    specs: &[DatasetSpec],
    mixes: &[MixSpec],
) -> Result<Json, String> {
    if specs.is_empty() {
        return Err("loadgen needs at least one dataset".into());
    }
    let default_mix = [MixSpec {
        name: "default".into(),
        write_frac: cfg.write_frac,
    }];
    let mixes = if mixes.is_empty() {
        &default_mix
    } else {
        mixes
    };
    for mix in mixes {
        if !(0.0..=1.0).contains(&mix.write_frac) {
            return Err(format!("mix {:?}: write_frac out of [0,1]", mix.name));
        }
        if mix.name.is_empty() || !mix.name.chars().all(|c| c.is_ascii_graphic()) {
            return Err(format!("bad mix name {:?}", mix.name));
        }
    }
    let mut scenarios = Vec::new();
    for mix in mixes {
        let mut datasets = Vec::new();
        for spec in specs {
            datasets.push(run_dataset(target, cfg, spec, mix)?);
        }
        scenarios.push(Json::Obj(vec![
            ("name".into(), Json::Str(mix.name.clone())),
            ("write_frac".into(), Json::Num(mix.write_frac)),
            ("datasets".into(), Json::Arr(datasets)),
        ]));
    }
    Ok(Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        (
            "config".into(),
            Json::Obj(vec![
                ("threads".into(), Json::Num(cfg.threads as f64)),
                ("ops".into(), Json::Num(cfg.ops as f64)),
                ("k".into(), Json::Num(cfg.k as f64)),
                ("batch".into(), Json::Num(cfg.batch as f64)),
                ("seed".into(), Json::Num(cfg.seed as f64)),
                ("check".into(), Json::Bool(cfg.check)),
                ("check_max_n".into(), Json::Num(cfg.check_max_n as f64)),
                (
                    "target".into(),
                    Json::Str(match target {
                        Target::InProc(_) => "inproc".into(),
                        Target::Tcp(addr) => format!("tcp:{addr}"),
                    }),
                ),
            ]),
        ),
        ("scenarios".into(), Json::Arr(scenarios)),
    ]))
}

/// Schema check for a `BENCH_service.json` document: the right schema
/// tag, at least `min_scenarios` scenario records each holding at least
/// `min_datasets` dataset records, and every record carrying finite, sane
/// core metrics. Returns the first problem found.
pub fn validate(doc: &Json, min_datasets: usize, min_scenarios: usize) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag is not {SCHEMA:?}"));
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("no scenarios array")?;
    if scenarios.len() < min_scenarios {
        return Err(format!(
            "{} scenario record(s), expected at least {min_scenarios}",
            scenarios.len()
        ));
    }
    for (si, sc) in scenarios.iter().enumerate() {
        let sc_name = sc
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("scenario {si}: no name"))?;
        sc.get("write_frac")
            .and_then(Json::as_num)
            .filter(|x| (0.0..=1.0).contains(x))
            .ok_or(format!("scenario {sc_name:?}: bad write_frac"))?;
        let datasets = sc
            .get("datasets")
            .and_then(Json::as_arr)
            .ok_or(format!("scenario {sc_name:?}: no datasets array"))?;
        if datasets.len() < min_datasets {
            return Err(format!(
                "scenario {sc_name:?}: {} dataset record(s), expected at least {min_datasets}",
                datasets.len()
            ));
        }
        for (i, ds) in datasets.iter().enumerate() {
            let name = ds
                .get("name")
                .and_then(Json::as_str)
                .ok_or(format!("scenario {sc_name:?} dataset {i}: no name"))?;
            ds.get("scenario")
                .and_then(Json::as_str)
                .filter(|s| *s == sc_name)
                .ok_or(format!(
                    "dataset {name:?}: scenario tag does not match {sc_name:?}"
                ))?;
            let num = |key: &str| -> Result<f64, String> {
                ds.get(key)
                    .and_then(Json::as_num)
                    .filter(|x| x.is_finite())
                    .ok_or(format!("dataset {name:?}: missing/non-finite {key}"))
            };
            if num("throughput_ops_per_sec")? <= 0.0 {
                return Err(format!("dataset {name:?}: non-positive throughput"));
            }
            num("wall_ms")?;
            num("reads")?;
            num("updates")?;
            for class in ["read_latency", "update_latency"] {
                let lat = ds
                    .get(class)
                    .ok_or(format!("dataset {name:?}: missing {class}"))?;
                for key in ["count", "p50_us", "p90_us", "p99_us", "max_us"] {
                    lat.get(key)
                        .and_then(Json::as_num)
                        .filter(|x| x.is_finite() && *x >= 0.0)
                        .ok_or(format!("dataset {name:?}: bad {class}.{key}"))?;
                }
            }
            let comp = ds
                .get("comparator")
                .ok_or(format!("dataset {name:?}: missing comparator"))?;
            let violations = comp
                .get("violations")
                .and_then(Json::as_num)
                .ok_or(format!("dataset {name:?}: missing comparator.violations"))?;
            if violations != 0.0 {
                return Err(format!(
                    "dataset {name:?}: {violations} comparator violation(s)"
                ));
            }
        }
    }
    Ok(())
}
