//! `egobtw-cli` — scriptable client for `egobtw-serve`, plus the loadgen.
//!
//! ```text
//! egobtw-cli script  --connect ADDR [--expect-ok] [FILE]
//!     Send each non-blank, non-# line of FILE (or stdin) as one frame;
//!     print `> command` and the response line(s). With --expect-ok, exit 1
//!     if any response line is an ERR.
//!
//! egobtw-cli loadgen [--connect ADDR] [flags]
//!     Drive a mixed read/update workload and write BENCH_service.json.
//!     Without --connect the workload runs against an in-process Service
//!     (no sockets) — deterministic and CI-friendly.
//!
//!     --dataset NAME=PATH[:MODE]  dataset file (repeatable)
//!     --gen NAME=FAMILY:SCALE:SEED[:MODE]  synthesize instead (repeatable,
//!                                 in-process target only)
//!     --mix NAME:FRAC  named read/write scenario, e.g. read-heavy:0.1
//!                   (repeatable; every dataset runs once per mix; without
//!                   any --mix or extra scenario a single `default` mix at
//!                   --write-frac runs)
//!     --recovery    add the restart-recovery scenario: per dataset, a WAL
//!                   write burst, a teardown, a timed recovery, then
//!                   oracle-checked reads (always in-process)
//!     --skew        add the shard-skew scenario: all datasets concurrent,
//!                   writes concentrated on the first (needs ≥2 datasets)
//!     --overload    add the overload scenario: a tiny saturated TCP server,
//!                   recording shed rate, saturation QPS, and admitted-read
//!                   percentiles (always spawns its own server)
//!     --tenants N   add the multi-tenant scenario with N ≥ 2 synthesized
//!                   tiny datasets in one catalog (always in-process)
//!     --threads N   client threads per dataset (default 4)
//!     --ops N       total ops per dataset (default 2000)
//!     --write-frac F  update fraction of the default mix (default 0.1)
//!     --k K         top-k size for reads (default 8)
//!     --batch B     update ops per epoch (default 2)
//!     --seed S      workload seed (default 42)
//!     --check       oracle-check sampled top-k answers (skipped per
//!                   dataset above --check-max-n vertices)
//!     --check-max-n N  largest n the oracle check runs on (default 512)
//!     --out PATH    output file (default BENCH_service.json)
//!
//! egobtw-cli loadgen --validate PATH [--expect-datasets N] [--expect-scenarios N]
//!     Schema-check an existing BENCH_service.json (CI smoke); also fails
//!     on any recorded comparator violation.
//!
//! egobtw-cli metrics-check [--connect ADDR] [--requests N] [--seed S]
//!     With --connect: scrape METRICS twice from a live daemon, schema-
//!     validate both expositions, and verify every counter series is
//!     monotone between the scrapes. Without: drive an in-process service
//!     with N compute-dominated TOPKs (default 64) and verify the
//!     server-side latency histogram puts p50/p99 within one log2 bucket
//!     of the client-side timings.
//! ```

use egobtw_service::catalog::Mode;
use egobtw_service::loadgen::{self, DatasetSpec, ExtraScenarios, LoadgenConfig, MixSpec, Target};
use egobtw_service::server::{connect_with_retry, roundtrip};
use egobtw_service::Service;
use std::io::Read;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("egobtw-cli: {msg}");
    std::process::exit(2);
}

fn run_script(argv: &[String]) -> i32 {
    let mut connect = None;
    let mut expect_ok = false;
    let mut file = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--connect" => {
                connect = argv.get(i + 1).cloned();
                i += 2;
            }
            "--expect-ok" => {
                expect_ok = true;
                i += 1;
            }
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(other.to_string());
                i += 1;
            }
            other => fail(&format!("script: unknown flag {other:?}")),
        }
    }
    let Some(addr) = connect else {
        fail("script needs --connect ADDR");
    };
    let text = match file {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path:?}: {e}")))
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(&format!("read stdin: {e}")));
            buf
        }
    };
    let (mut reader, mut writer) = connect_with_retry(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    let mut saw_err = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        println!("> {line}");
        match roundtrip(&mut reader, &mut writer, line) {
            Ok(response) => {
                for rline in response.lines() {
                    println!("{rline}");
                    if rline.starts_with("ERR") {
                        saw_err = true;
                    }
                }
            }
            Err(e) => fail(&format!("i/o on {addr}: {e}")),
        }
    }
    i32::from(expect_ok && saw_err)
}

fn run_loadgen(argv: &[String]) -> i32 {
    let mut cfg = LoadgenConfig::default();
    let mut connect: Option<String> = None;
    let mut out = "BENCH_service.json".to_string();
    let mut validate_path: Option<String> = None;
    let mut expect_datasets = 1usize;
    let mut expect_scenarios = 1usize;
    let mut specs: Vec<DatasetSpec> = Vec::new();
    let mut mixes: Vec<MixSpec> = Vec::new();
    let mut extras = ExtraScenarios::default();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> &String {
            argv.get(i + 1)
                .unwrap_or_else(|| fail(&format!("{} needs a value", argv[i])))
        };
        let parse_or_die = |flag: &str, s: &str| -> f64 {
            s.parse()
                .unwrap_or_else(|_| fail(&format!("{flag}: bad number {s:?}")))
        };
        match argv[i].as_str() {
            "--connect" => connect = Some(value(i).clone()),
            "--threads" => cfg.threads = parse_or_die("--threads", value(i)) as usize,
            "--ops" => cfg.ops = parse_or_die("--ops", value(i)) as usize,
            "--write-frac" => cfg.write_frac = parse_or_die("--write-frac", value(i)),
            "--k" => cfg.k = parse_or_die("--k", value(i)) as usize,
            "--batch" => cfg.batch = parse_or_die("--batch", value(i)) as usize,
            "--seed" => cfg.seed = parse_or_die("--seed", value(i)) as u64,
            "--check" => {
                cfg.check = true;
                i += 1;
                continue;
            }
            "--recovery" => {
                extras.recovery = true;
                i += 1;
                continue;
            }
            "--skew" => {
                extras.skew = true;
                i += 1;
                continue;
            }
            "--overload" => {
                extras.overload = true;
                i += 1;
                continue;
            }
            "--tenants" => extras.tenants = parse_or_die("--tenants", value(i)) as usize,
            "--check-max-n" => cfg.check_max_n = parse_or_die("--check-max-n", value(i)) as usize,
            "--out" => out = value(i).clone(),
            "--validate" => validate_path = Some(value(i).clone()),
            "--expect-datasets" => {
                expect_datasets = parse_or_die("--expect-datasets", value(i)) as usize
            }
            "--expect-scenarios" => {
                expect_scenarios = parse_or_die("--expect-scenarios", value(i)) as usize
            }
            "--mix" => {
                let spec = value(i);
                let (name, frac) = spec
                    .rsplit_once(':')
                    .unwrap_or_else(|| fail(&format!("--mix {spec:?}: NAME:FRAC")));
                mixes.push(MixSpec {
                    name: name.to_string(),
                    write_frac: parse_or_die("--mix frac", frac),
                });
            }
            "--dataset" => {
                let spec = value(i);
                let (name, rest) = spec
                    .split_once('=')
                    .unwrap_or_else(|| fail(&format!("--dataset {spec:?}: NAME=PATH[:MODE]")));
                let (path, mode) = Mode::split_path_mode(rest);
                let g0 = match egobtw_service::service::read_graph_file(&path) {
                    Ok(g) => g,
                    Err(e) => fail(&format!("--dataset {name}: {e}")),
                };
                specs.push(DatasetSpec {
                    name: name.to_string(),
                    g0,
                    path: Some(path),
                    mode,
                });
            }
            "--gen" => {
                let spec = value(i);
                let (name, rest) = spec.split_once('=').unwrap_or_else(|| {
                    fail(&format!("--gen {spec:?}: NAME=FAMILY:SCALE:SEED[:MODE]"))
                });
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() < 3 {
                    fail(&format!("--gen {spec:?}: NAME=FAMILY:SCALE:SEED[:MODE]"));
                }
                let family = parts[0];
                let scale: f64 = parse_or_die("--gen scale", parts[1]);
                let seed = parse_or_die("--gen seed", parts[2]) as u64;
                let mode = if parts.len() > 3 {
                    Mode::parse(&parts[3..].join(":"))
                        .unwrap_or_else(|e| fail(&format!("--gen {spec:?}: {e}")))
                } else {
                    Mode::default()
                };
                let g0 = egobtw_gen::synth_family(family, scale, seed)
                    .unwrap_or_else(|e| fail(&format!("--gen {name}: {e}")));
                specs.push(DatasetSpec {
                    name: name.to_string(),
                    g0,
                    path: None,
                    mode,
                });
            }
            other => fail(&format!("loadgen: unknown flag {other:?}")),
        }
        i += 2;
    }

    if let Some(path) = validate_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path:?}: {e}")));
        let doc = egobtw_bench::json::Json::parse(&text)
            .unwrap_or_else(|e| fail(&format!("{path:?}: not JSON: {e}")));
        return match loadgen::validate(&doc, expect_datasets, expect_scenarios) {
            Ok(()) => {
                println!(
                    "{path}: schema OK ({expect_scenarios}+ scenario(s) × {expect_datasets}+ dataset records)"
                );
                0
            }
            Err(e) => {
                eprintln!("egobtw-cli: {path}: {e}");
                1
            }
        };
    }

    if specs.is_empty() {
        fail("loadgen needs --dataset or --gen (or --validate)");
    }
    let service_holder;
    let target = match &connect {
        Some(addr) => Target::Tcp(addr.clone()),
        None => {
            service_holder = Service::new();
            Target::InProc(&service_holder)
        }
    };
    match loadgen::run(&target, &cfg, &specs, &mixes, &extras) {
        Ok(doc) => {
            let mut text = doc.pretty();
            text.push('\n');
            std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("write {out:?}: {e}")));
            let mut violations = 0.0;
            let mut scenario_count = 0;
            if let Some(scenarios) = doc.get("scenarios").and_then(|s| s.as_arr()) {
                scenario_count = scenarios.len();
                for sc in scenarios {
                    let Some(datasets) = sc.get("datasets").and_then(|d| d.as_arr()) else {
                        continue;
                    };
                    for ds in datasets {
                        if let Some(v) = ds
                            .get("comparator")
                            .and_then(|c| c.get("violations"))
                            .and_then(|v| v.as_num())
                        {
                            violations += v;
                        }
                    }
                }
            }
            println!(
                "wrote {out} ({scenario_count} scenario(s) over {} dataset(s), {} comparator violation(s))",
                specs.len(),
                violations
            );
            i32::from(violations > 0.0)
        }
        Err(e) => {
            eprintln!("egobtw-cli: loadgen: {e}");
            1
        }
    }
}

fn run_metrics_check(argv: &[String]) -> i32 {
    let mut connect: Option<String> = None;
    let mut requests = 64usize;
    let mut seed = 42u64;
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> &String {
            argv.get(i + 1)
                .unwrap_or_else(|| fail(&format!("{} needs a value", argv[i])))
        };
        match argv[i].as_str() {
            "--connect" => connect = Some(value(i).clone()),
            "--requests" => {
                requests = value(i)
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--requests: bad number {:?}", value(i))))
            }
            "--seed" => {
                seed = value(i)
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--seed: bad number {:?}", value(i))))
            }
            other => fail(&format!("metrics-check: unknown flag {other:?}")),
        }
        i += 2;
    }
    match connect {
        Some(addr) => match loadgen::metrics_check_live(&addr) {
            Ok(summary) => {
                println!("{summary}");
                0
            }
            Err(e) => {
                eprintln!("egobtw-cli: metrics-check {addr}: {e}");
                1
            }
        },
        None => match loadgen::metrics_crosscheck(requests, seed) {
            Ok(report) => {
                println!("metrics-check OK: {}", report.pretty());
                0
            }
            Err(e) => {
                eprintln!("egobtw-cli: metrics-check: {e}");
                1
            }
        },
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("script") => run_script(&argv[1..]),
        Some("loadgen") => run_loadgen(&argv[1..]),
        Some("metrics-check") => run_metrics_check(&argv[1..]),
        _ => {
            eprintln!(
                "usage: egobtw-cli <script|loadgen|metrics-check> [flags] (see --bin source header)"
            );
            2
        }
    };
    std::process::exit(code);
}
