//! `egobtw-serve` — the top-k ego-betweenness query daemon.
//!
//! ```text
//! cargo run --release -p egobtw-service --bin egobtw-serve -- [flags]
//!
//! flags:
//!   --listen ADDR        bind address (default 127.0.0.1:7878; port 0 = OS pick)
//!   --threads N          worker pool size = max concurrent connections (default 8)
//!   --load NAME=PATH[:MODE]   preload a dataset (repeatable; MODE as in LOAD;
//!                        skipped if recovery already rebuilt that name)
//!   --data-dir PATH      enable durability: per-dataset WAL + snapshots under
//!                        PATH, and recovery of everything found there at boot
//!   --fsync always|never WAL fsync policy (default always; needs --data-dir)
//!   --compact-every N    snapshot + truncate the WAL every N batches (default 64)
//!   --shards N           catalog shards (default 8)
//!   --shard-writers N    writer threads per shard (default 2)
//! ```
//!
//! Prints one `recovered <name> …` line per rebuilt dataset, then one
//! `listening on <addr>` line once the socket is bound (CI and scripts
//! wait for it), then serves until killed.

use egobtw_service::catalog::Mode;
use egobtw_service::{CatalogConfig, FsyncPolicy, PersistConfig, Server, Service};
use std::io::Write;
use std::sync::Arc;

struct Args {
    listen: String,
    threads: usize,
    preload: Vec<(String, String, Mode)>,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
    compact_every: u64,
    shards: usize,
    shard_writers: usize,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        listen: "127.0.0.1:7878".into(),
        threads: 8,
        preload: Vec::new(),
        data_dir: None,
        fsync: FsyncPolicy::Always,
        compact_every: 64,
        shards: 8,
        shard_writers: 2,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--listen" => args.listen = value(i)?.clone(),
            "--threads" => {
                args.threads = value(i)?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--load" => {
                let spec = value(i)?;
                let (name, rest) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--load {spec:?}: expected NAME=PATH[:MODE]"))?;
                let (path, mode) = Mode::split_path_mode(rest);
                args.preload.push((name.to_string(), path, mode));
            }
            "--data-dir" => args.data_dir = Some(value(i)?.clone()),
            "--fsync" => args.fsync = FsyncPolicy::parse(value(i)?)?,
            "--compact-every" => {
                args.compact_every = value(i)?
                    .parse()
                    .map_err(|e| format!("--compact-every: {e}"))?
            }
            "--shards" => args.shards = value(i)?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--shard-writers" => {
                args.shard_writers = value(i)?
                    .parse()
                    .map_err(|e| format!("--shard-writers: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if args.threads == 0 {
        return Err("--threads must be ≥ 1".into());
    }
    if args.shards == 0 || args.shard_writers == 0 || args.compact_every == 0 {
        return Err("--shards, --shard-writers, --compact-every must be ≥ 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("egobtw-serve: {e}");
            eprintln!(
                "usage: egobtw-serve [--listen ADDR] [--threads N] [--load NAME=PATH[:MODE]]... \
                 [--data-dir PATH] [--fsync always|never] [--compact-every N] [--shards N] \
                 [--shard-writers N]"
            );
            std::process::exit(2);
        }
    };
    let persist = args.data_dir.as_ref().map(|dir| PersistConfig {
        dir: dir.into(),
        fsync: args.fsync,
        compact_every: args.compact_every,
    });
    let service = Arc::new(Service::with_config(CatalogConfig {
        shards: args.shards,
        writers_per_shard: args.shard_writers,
        persist,
    }));
    let recovered = match service.recover() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("egobtw-serve: recovery: {e}");
            std::process::exit(1);
        }
    };
    for (name, report) in &recovered {
        println!(
            "recovered {name} epoch={} snapshot_epoch={} replayed={} torn_tail={}",
            report.epoch, report.snapshot_epoch, report.replayed, report.torn_tail
        );
    }
    for (name, path, mode) in &args.preload {
        if recovered.iter().any(|(n, _)| n == name) {
            println!("preload {name}: recovered from data dir, skipping");
            continue;
        }
        match service.load_path(name, path, *mode) {
            Ok(reply) => println!("{}", reply.render()),
            Err(e) => {
                eprintln!("egobtw-serve: preload {name}: {e}");
                std::process::exit(1);
            }
        }
    }
    let server = match Server::spawn(service, args.listen.as_str(), args.threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("egobtw-serve: bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!(
        "listening on {} (threads={})",
        server.local_addr(),
        args.threads
    );
    // Kill-and-replay tests read this line through a pipe; without the
    // flush it sits in the block buffer until the process dies.
    let _ = std::io::stdout().flush();
    // Serve until killed: park this thread forever.
    loop {
        std::thread::park();
    }
}
