//! `egobtw-serve` — the top-k ego-betweenness query daemon.
//!
//! ```text
//! cargo run --release -p egobtw-service --bin egobtw-serve -- [flags]
//!
//! flags:
//!   --listen ADDR        bind address (default 127.0.0.1:7878; port 0 = OS pick)
//!   --threads N          worker pool size = max concurrent connections (default 8)
//!   --load NAME=PATH[:MODE]   preload a dataset (repeatable; MODE as in LOAD)
//! ```
//!
//! Prints one `listening on <addr>` line once the socket is bound (CI and
//! scripts wait for it), then serves until killed.

use egobtw_service::catalog::Mode;
use egobtw_service::{Server, Service};
use std::sync::Arc;

struct Args {
    listen: String,
    threads: usize,
    preload: Vec<(String, String, Mode)>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        listen: "127.0.0.1:7878".into(),
        threads: 8,
        preload: Vec::new(),
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--listen" => args.listen = value(i)?.clone(),
            "--threads" => {
                args.threads = value(i)?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--load" => {
                let spec = value(i)?;
                let (name, rest) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--load {spec:?}: expected NAME=PATH[:MODE]"))?;
                let (path, mode) = Mode::split_path_mode(rest);
                args.preload.push((name.to_string(), path, mode));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if args.threads == 0 {
        return Err("--threads must be ≥ 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("egobtw-serve: {e}");
            eprintln!(
                "usage: egobtw-serve [--listen ADDR] [--threads N] [--load NAME=PATH[:MODE]]..."
            );
            std::process::exit(2);
        }
    };
    let service = Arc::new(Service::new());
    for (name, path, mode) in &args.preload {
        match service.load_path(name, path, *mode) {
            Ok(reply) => println!("{}", reply.render()),
            Err(e) => {
                eprintln!("egobtw-serve: preload {name}: {e}");
                std::process::exit(1);
            }
        }
    }
    let server = match Server::spawn(service, args.listen.as_str(), args.threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("egobtw-serve: bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!(
        "listening on {} (threads={})",
        server.local_addr(),
        args.threads
    );
    // Serve until killed: park this thread forever.
    loop {
        std::thread::park();
    }
}
