//! `egobtw-serve` — the top-k ego-betweenness query daemon.
//!
//! ```text
//! cargo run --release -p egobtw-service --bin egobtw-serve -- [flags]
//!
//! flags:
//!   --listen ADDR        bind address (default 127.0.0.1:7878; port 0 = OS pick)
//!   --threads N          worker pool size = max concurrent connections (default 8)
//!   --load NAME=PATH[:MODE]   preload a dataset (repeatable; MODE as in LOAD;
//!                        skipped if recovery already rebuilt that name)
//!   --data-dir PATH      enable durability: per-dataset WAL + snapshots under
//!                        PATH, and recovery of everything found there at boot
//!   --fsync always|never WAL fsync policy (default always; needs --data-dir)
//!   --compact-every N    snapshot + truncate the WAL every N batches (default 64)
//!   --shards N           catalog shards (default 8)
//!   --shard-writers N    writer threads per shard (default 2)
//!   --default-deadline MS   deadline for commands without a DEADLINE prefix
//!                        (default 0 = unlimited)
//!   --max-conns N        accepted-and-unfinished connection cap (default 256;
//!                        0 = unlimited); past it, clients get ERR busy
//!   --queue N            connections that may wait for a worker (default 64)
//!   --io-timeout MS      per-socket read/write timeout — slow or silent
//!                        clients lose their session (default 30000; 0 = off)
//!   --watermark N        concurrent engine computations before TOPK requests
//!                        are shed with ERR busy (default 0 = unlimited)
//!   --drain-grace MS     SIGTERM drain budget for in-flight requests
//!                        (default 2000)
//!   --slow-query-ms MS   record requests slower than MS in the SLOWLOG
//!                        ring (default 0 = disabled)
//!   --log-level LEVEL    stderr log verbosity: error|warn|info|debug
//!                        (default info)
//! ```
//!
//! Prints one `recovered <name> …` line per rebuilt dataset, then one
//! `listening on <addr>` line once the socket is bound (CI and scripts
//! wait for it), then serves until killed. On SIGTERM (or SIGINT) it
//! drains: stops accepting, finishes or cancels in-flight work within
//! `--drain-grace`, fsyncs every WAL, and exits 0.

use egobtw_service::catalog::Mode;
use egobtw_service::{CatalogConfig, FsyncPolicy, PersistConfig, Server, ServerConfig, Service};
use egobtw_telemetry::{set_global, Level, Logger, StderrSink};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// Async-signal-safe termination latch: the handler only stores to an
/// atomic; the main thread polls it. Installed via the C `signal`
/// function, which std's libc linkage already provides on Unix.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

struct Args {
    listen: String,
    threads: usize,
    preload: Vec<(String, String, Mode)>,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
    compact_every: u64,
    shards: usize,
    shard_writers: usize,
    default_deadline: u64,
    max_conns: usize,
    queue: usize,
    io_timeout: u64,
    watermark: u64,
    drain_grace: u64,
    slow_query_ms: u64,
    log_level: Level,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        listen: "127.0.0.1:7878".into(),
        threads: 8,
        preload: Vec::new(),
        data_dir: None,
        fsync: FsyncPolicy::Always,
        compact_every: 64,
        shards: 8,
        shard_writers: 2,
        default_deadline: 0,
        max_conns: 256,
        queue: 64,
        io_timeout: 30_000,
        watermark: 0,
        drain_grace: 2_000,
        slow_query_ms: 0,
        log_level: Level::Info,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--listen" => args.listen = value(i)?.clone(),
            "--threads" => {
                args.threads = value(i)?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--load" => {
                let spec = value(i)?;
                let (name, rest) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--load {spec:?}: expected NAME=PATH[:MODE]"))?;
                let (path, mode) = Mode::split_path_mode(rest);
                args.preload.push((name.to_string(), path, mode));
            }
            "--data-dir" => args.data_dir = Some(value(i)?.clone()),
            "--fsync" => args.fsync = FsyncPolicy::parse(value(i)?)?,
            "--compact-every" => {
                args.compact_every = value(i)?
                    .parse()
                    .map_err(|e| format!("--compact-every: {e}"))?
            }
            "--shards" => args.shards = value(i)?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--shard-writers" => {
                args.shard_writers = value(i)?
                    .parse()
                    .map_err(|e| format!("--shard-writers: {e}"))?
            }
            "--default-deadline" => {
                args.default_deadline = value(i)?
                    .parse()
                    .map_err(|e| format!("--default-deadline: {e}"))?
            }
            "--max-conns" => {
                args.max_conns = value(i)?.parse().map_err(|e| format!("--max-conns: {e}"))?
            }
            "--queue" => args.queue = value(i)?.parse().map_err(|e| format!("--queue: {e}"))?,
            "--io-timeout" => {
                args.io_timeout = value(i)?
                    .parse()
                    .map_err(|e| format!("--io-timeout: {e}"))?
            }
            "--watermark" => {
                args.watermark = value(i)?.parse().map_err(|e| format!("--watermark: {e}"))?
            }
            "--drain-grace" => {
                args.drain_grace = value(i)?
                    .parse()
                    .map_err(|e| format!("--drain-grace: {e}"))?
            }
            "--slow-query-ms" => {
                args.slow_query_ms = value(i)?
                    .parse()
                    .map_err(|e| format!("--slow-query-ms: {e}"))?
            }
            "--log-level" => {
                let spec = value(i)?;
                args.log_level = Level::parse(spec).ok_or_else(|| {
                    format!("--log-level {spec:?}: expected error|warn|info|debug")
                })?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if args.threads == 0 {
        return Err("--threads must be ≥ 1".into());
    }
    if args.shards == 0 || args.shard_writers == 0 || args.compact_every == 0 {
        return Err("--shards, --shard-writers, --compact-every must be ≥ 1".into());
    }
    if args.queue == 0 {
        return Err("--queue must be ≥ 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("egobtw-serve: {e}");
            eprintln!(
                "usage: egobtw-serve [--listen ADDR] [--threads N] [--load NAME=PATH[:MODE]]... \
                 [--data-dir PATH] [--fsync always|never] [--compact-every N] [--shards N] \
                 [--shard-writers N] [--default-deadline MS] [--max-conns N] [--queue N] \
                 [--io-timeout MS] [--watermark N] [--drain-grace MS] [--slow-query-ms MS] \
                 [--log-level error|warn|info|debug]"
            );
            std::process::exit(2);
        }
    };
    set_global(Arc::new(Logger::new(args.log_level, Arc::new(StderrSink))));
    let log = egobtw_telemetry::global();
    let persist = args.data_dir.as_ref().map(|dir| PersistConfig {
        dir: dir.into(),
        fsync: args.fsync,
        compact_every: args.compact_every,
    });
    let mut service = Service::with_config(CatalogConfig {
        shards: args.shards,
        writers_per_shard: args.shard_writers,
        persist,
        ..CatalogConfig::default()
    });
    if args.default_deadline > 0 {
        service.set_default_deadline(Some(Duration::from_millis(args.default_deadline)));
    }
    service.set_compute_watermark(args.watermark);
    service
        .metrics()
        .slowlog()
        .set_threshold_ms(args.slow_query_ms);
    let service = Arc::new(service);
    let recovered = match service.recover() {
        Ok(r) => r,
        Err(e) => {
            log.error("recovery-failed", &[("error", &e.to_string())]);
            std::process::exit(1);
        }
    };
    for (name, report) in &recovered {
        println!(
            "recovered {name} epoch={} snapshot_epoch={} replayed={} torn_tail={}",
            report.epoch, report.snapshot_epoch, report.replayed, report.torn_tail
        );
    }
    for (name, path, mode) in &args.preload {
        if recovered.iter().any(|(n, _)| n == name) {
            println!("preload {name}: recovered from data dir, skipping");
            continue;
        }
        match service.load_path(name, path, *mode) {
            Ok(reply) => println!("{}", reply.render()),
            Err(e) => {
                log.error("preload-failed", &[("dataset", name), ("error", &e)]);
                std::process::exit(1);
            }
        }
    }
    let cfg = ServerConfig {
        threads: args.threads,
        queue_cap: args.queue,
        max_conns: args.max_conns,
        io_timeout: (args.io_timeout > 0).then(|| Duration::from_millis(args.io_timeout)),
        drain_grace: Duration::from_millis(args.drain_grace),
    };
    let server = match Server::spawn_with(service.clone(), args.listen.as_str(), cfg) {
        Ok(s) => s,
        Err(e) => {
            log.error(
                "bind-failed",
                &[("addr", args.listen.as_str()), ("error", &e.to_string())],
            );
            std::process::exit(1);
        }
    };
    println!(
        "listening on {} (threads={})",
        server.local_addr(),
        args.threads
    );
    // Kill-and-replay tests read this line through a pipe; without the
    // flush it sits in the block buffer until the process dies.
    let _ = std::io::stdout().flush();
    #[cfg(unix)]
    term_signal::install();
    // Serve until asked to stop (SIGTERM/SIGINT set the latch; a SIGKILL
    // is the crash path the recovery tests cover).
    loop {
        #[cfg(unix)]
        if term_signal::requested() {
            break;
        }
        std::thread::park_timeout(Duration::from_millis(100));
    }
    // Shutdown prints are best-effort: the supervisor that sent the
    // SIGTERM may already have closed our stdout pipe, and a broken pipe
    // must not turn a clean drain into a panic (println! would).
    let _ = writeln!(std::io::stdout(), "draining (grace={}ms)", args.drain_grace);
    let _ = std::io::stdout().flush();
    server.drain(Duration::from_millis(args.drain_grace));
    // Durability barrier: whatever was acked is on disk before exit 0.
    if let Err(e) = service.catalog().sync_all() {
        log.error("wal-sync-failed", &[("error", &e.to_string())]);
        std::process::exit(1);
    }
    let _ = writeln!(std::io::stdout(), "drained; exiting");
    let _ = std::io::stdout().flush();
}
