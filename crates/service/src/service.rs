//! In-process query API: parse → execute → render.
//!
//! [`Service`] is the protocol-agnostic core the TCP server, the CLI's
//! in-process loadgen mode, tests, and examples all share. It is `&self`
//! throughout and internally synchronized, so one `Arc<Service>` serves
//! any number of threads.
//!
//! Per-request **engine selection**: a `TOPK` request either names a
//! registry engine (any [`egobtw_core::builtin_engines`] name, run on the
//! request's snapshot and cached per epoch) or says `auto`, in which case
//! the service picks the cheapest correct source in order:
//!
//! 1. the snapshot's **maintained** entries (published by the dynamic
//!    maintainer — free; `local` and `delta` datasets publish on every
//!    epoch, so requests with `k ≤ maintained` never touch an engine);
//! 2. for a lazy dataset that deferred its refresh: pay the refresh once
//!    via [`Dataset::refresh_maintained`], which republishes the epoch
//!    with exact entries (amortized across all subsequent readers);
//! 3. the per-epoch **cache**;
//! 4. the default search engine (OptBSearch, θ=1.05) on the snapshot,
//!    cached for the epoch.

use crate::catalog::{
    CacheKey, Catalog, CatalogConfig, Claim, EpochSnapshot, Mode, RecoveryReport,
};
use crate::obs::ServiceMetrics;
use crate::proto::{format_entries, parse_command, split_deadline, split_trace, Command};
use egobtw_core::naive::ego_betweenness_of;
use egobtw_core::opt_search::{opt_bsearch_cancellable, OptParams};
use egobtw_core::registry::{builtin_engines, RegisteredEngine};
use egobtw_core::stats::SearchStats;
use egobtw_core::{approx_topk_cancellable, ApproxParams, Cancel, Cancelled};
use egobtw_graph::io::{read_edge_list_file, read_snapshot_file, IoError, SNAPSHOT_MAGIC};
use egobtw_graph::{CsrGraph, VertexId};
use egobtw_telemetry::span::{Phase, PhaseTimer, Trace};
use egobtw_telemetry::{unix_ms, Counter, Gauge, Registry, SlowEntry};
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a `TOPK auto` answer came from (reported on the wire so clients,
/// tests, and the loadgen can assert cache/maintained behavior).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopkSource {
    /// Served from the snapshot's published maintained entries.
    Maintained,
    /// Served by paying the deferred lazy refresh for this epoch.
    Refreshed,
    /// Served from the per-epoch result cache.
    Cache,
    /// Joined another requester's in-flight computation of the same
    /// (engine, k) at the same epoch and waited for its answer.
    Coalesced,
    /// Computed by the named engine on the snapshot (and cached).
    Engine(String),
}

impl TopkSource {
    fn render(&self) -> String {
        match self {
            TopkSource::Maintained => "maintained".into(),
            TopkSource::Refreshed => "refreshed".into(),
            TopkSource::Cache => "cache".into(),
            TopkSource::Coalesced => "coalesced".into(),
            TopkSource::Engine(name) => format!("engine({name})"),
        }
    }
}

/// Structured reply to one command; [`Reply::render`] is the wire form.
#[derive(Clone, Debug)]
pub enum Reply {
    /// LOAD succeeded.
    Load {
        /// Dataset name.
        name: String,
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
        /// Maintainer mode.
        mode: Mode,
        /// Whether the file was a binary snapshot (vs a text edge list).
        snapshot: bool,
    },
    /// TOPK answer.
    Topk {
        /// Dataset name.
        name: String,
        /// Epoch the answer is exact for.
        epoch: u64,
        /// Requested k.
        k: usize,
        /// Where the answer came from.
        source: TopkSource,
        /// `min(k, n)` entries, descending score.
        entries: Arc<Vec<(VertexId, f64)>>,
    },
    /// SCORE answer.
    Score {
        /// Dataset name.
        name: String,
        /// Epoch the answer is exact for.
        epoch: u64,
        /// `(vertex, CB)` in request order.
        entries: Vec<(VertexId, f64)>,
        /// How many came from the per-epoch cache.
        cached: usize,
    },
    /// COMMON answer.
    Common {
        /// Dataset name.
        name: String,
        /// Epoch the answer is exact for.
        epoch: u64,
        /// Sorted common neighbors of the two endpoints.
        witnesses: Vec<VertexId>,
    },
    /// UPDATE outcome.
    Update(
        /// Dataset name.
        String,
        /// Batch outcome.
        crate::catalog::UpdateOutcome,
    ),
    /// STATS counters.
    Stats {
        /// Dataset name.
        name: String,
        /// Current epoch.
        epoch: u64,
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
        /// Maintainer mode.
        mode: Mode,
        /// Published maintained entries in the current snapshot (absent
        /// for a lazy dataset that deferred its refresh).
        maintained: Option<usize>,
        /// Stale members at publish time (lazy only).
        stale_members: usize,
        /// Ops that changed the graph since load.
        ops_applied: u64,
        /// Cumulative cache hits.
        cache_hits: u64,
        /// Cumulative cache misses.
        cache_misses: u64,
        /// Queries that coalesced onto another requester's computation.
        coalesced: u64,
        /// Catalog shard this dataset hashes to.
        shard: usize,
        /// Whether updates are journaled to a WAL.
        persisted: bool,
        /// Records currently in the WAL (0 when not persisted).
        wal_records: u64,
        /// Cumulative pair samples drawn by `approx:` engine runs.
        approx_samples: u64,
        /// Cumulative adaptive rounds before the approx stopping rule
        /// fired, across `approx:` engine runs.
        approx_rounds: u64,
        /// Service-wide: requests shed with `ERR busy`.
        shed: u64,
        /// Service-wide: requests that blew their deadline.
        timeouts: u64,
        /// Service-wide: requests cancelled by client disconnect.
        cancelled: u64,
        /// Service-wide: engine computations in flight right now.
        inflight: i64,
        /// Vertices engines computed exactly on this dataset (Table II's
        /// metric, cumulative).
        exact: u64,
        /// Vertices engines pruned via upper bounds (cumulative).
        pruned: u64,
        /// Triangles engines enumerated (cumulative).
        triangles: u64,
    },
    /// LIST answer.
    List(
        /// Sorted dataset names.
        Vec<String>,
    ),
    /// DROP succeeded.
    Dropped(
        /// Dataset name.
        String,
    ),
    /// COMPACT succeeded.
    Compacted {
        /// Dataset name.
        name: String,
        /// Epoch the fresh snapshot captures.
        epoch: u64,
    },
    /// PING answer.
    Pong,
    /// METRICS answer: the full Prometheus text exposition (multi-line;
    /// the command must therefore be the only line of its frame).
    Metrics(
        /// Rendered exposition.
        String,
    ),
    /// SLOWLOG answer: drained outliers (multi-line when entries exist;
    /// the command must therefore be the only line of its frame).
    Slowlog {
        /// Drained entries, oldest first.
        entries: Vec<SlowEntry>,
        /// Entries evicted before anyone drained them.
        dropped: u64,
    },
}

impl Reply {
    /// The wire form: a single response line for everything except
    /// [`Reply::Metrics`] and a non-empty [`Reply::Slowlog`], which span
    /// multiple lines (and are therefore restricted to single-line
    /// frames by the handler).
    pub fn render(&self) -> String {
        match self {
            Reply::Load {
                name,
                n,
                m,
                mode,
                snapshot,
            } => format!(
                "OK load name={name} n={n} m={m} mode={} format={}",
                mode.render(),
                if *snapshot { "snapshot" } else { "edges" }
            ),
            Reply::Topk {
                name,
                epoch,
                k,
                source,
                entries,
            } => format!(
                "OK top name={name} epoch={epoch} k={k} source={} entries={}",
                source.render(),
                format_entries(entries)
            ),
            Reply::Score {
                name,
                epoch,
                entries,
                cached,
            } => format!(
                "OK score name={name} epoch={epoch} cached={cached} entries={}",
                format_entries(entries)
            ),
            Reply::Common {
                name,
                epoch,
                witnesses,
            } => {
                let list: Vec<String> = witnesses.iter().map(|w| w.to_string()).collect();
                format!(
                    "OK common name={name} epoch={epoch} count={} entries={}",
                    witnesses.len(),
                    list.join(",")
                )
            }
            Reply::Update(name, out) => format!(
                "OK update name={name} epoch={} applied={} skipped={} n={} m={}",
                out.epoch, out.applied, out.skipped, out.n, out.m
            ),
            Reply::Stats {
                name,
                epoch,
                n,
                m,
                mode,
                maintained,
                stale_members,
                ops_applied,
                cache_hits,
                cache_misses,
                coalesced,
                shard,
                persisted,
                wal_records,
                approx_samples,
                approx_rounds,
                shed,
                timeouts,
                cancelled,
                inflight,
                exact,
                pruned,
                triangles,
            } => format!(
                "OK stats name={name} epoch={epoch} n={n} m={m} mode={} maintained={} \
                 stale_members={stale_members} ops_applied={ops_applied} \
                 cache_hits={cache_hits} cache_misses={cache_misses} coalesced={coalesced} \
                 shard={shard} persisted={persisted} wal_records={wal_records} \
                 approx_samples={approx_samples} approx_rounds={approx_rounds} \
                 shed={shed} timeouts={timeouts} cancelled={cancelled} inflight={inflight} \
                 exact={exact} pruned={pruned} triangles={triangles}",
                mode.render(),
                maintained.map_or_else(|| "none".into(), |l| l.to_string()),
            ),
            Reply::List(names) => format!("OK list datasets={}", names.join(",")),
            Reply::Dropped(name) => format!("OK drop name={name}"),
            Reply::Compacted { name, epoch } => format!("OK compact name={name} epoch={epoch}"),
            Reply::Pong => "OK pong".into(),
            Reply::Metrics(text) => text.trim_end_matches('\n').to_string(),
            Reply::Slowlog { entries, dropped } => {
                let mut out = format!("OK slowlog count={} dropped={dropped}", entries.len());
                for e in entries {
                    out.push('\n');
                    out.push_str(&e.render());
                }
                out
            }
        }
    }
}

/// Parses the `approx:EPS,DELTA` engine token into validated sampler
/// parameters. The seed is fixed: one epoch, one token, one answer — the
/// per-epoch cache can serve repeats byte-identically, and replays are
/// reproducible (the sampler itself is bit-deterministic by seed).
fn parse_approx_engine(spec: &str) -> Result<ApproxParams, String> {
    let bad = || {
        format!(
            "bad approx engine {spec:?}: expected approx:EPS,DELTA \
             with 0 < EPS ≤ 1 and 0 < DELTA < 1"
        )
    };
    let (eps_s, delta_s) = spec.split_once(',').ok_or_else(bad)?;
    let eps: f64 = eps_s.trim().parse().map_err(|_| bad())?;
    let delta: f64 = delta_s.trim().parse().map_err(|_| bad())?;
    if !(eps > 0.0 && eps <= 1.0 && delta > 0.0 && delta < 1.0) {
        return Err(bad());
    }
    Ok(ApproxParams::new(eps, delta))
}

/// Reads a graph file, sniffing binary snapshot vs text edge list from
/// the magic bytes; the flag says which it was.
pub fn read_graph_file_sniffed(path: &str) -> Result<(CsrGraph, bool), String> {
    let is_snapshot = {
        let mut f = std::fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
        let mut magic = [0u8; 8];
        match f.read(&mut magic) {
            Ok(got) => got == 8 && magic == SNAPSHOT_MAGIC,
            Err(e) => return Err(format!("read {path:?}: {e}")),
        }
    };
    let bad = |e: IoError| format!("load {path:?}: {e}");
    let g = if is_snapshot {
        read_snapshot_file(path).map_err(bad)?.0
    } else {
        read_edge_list_file(path).map_err(bad)?.0
    };
    Ok((g, is_snapshot))
}

/// [`read_graph_file_sniffed`] without the format flag.
pub fn read_graph_file(path: &str) -> Result<CsrGraph, String> {
    read_graph_file_sniffed(path).map(|(g, _)| g)
}

/// Suggested client back-off carried in a load-shed `ERR busy` reply.
pub const SHED_RETRY_MS: u64 = 50;

/// Overload counters and the compute watermark, shared service-wide.
///
/// The counters appear in every `STATS` reply and in the `METRICS`
/// exposition so operators (and the conformance chaos driver) can see
/// shedding and deadline pressure on either surface. Detached handles by
/// default; [`Service::with_config`] registers them.
#[derive(Default)]
pub struct OverloadState {
    /// Requests refused with `ERR busy` at the compute watermark.
    pub shed: Arc<Counter>,
    /// Requests abandoned because their deadline expired.
    pub timeouts: Arc<Counter>,
    /// Requests abandoned because the client vanished (explicit cancel).
    pub cancelled: Arc<Counter>,
    /// Engine computations running right now.
    pub inflight: Arc<Gauge>,
    /// Max concurrent engine computations before shedding (0 = no limit).
    pub compute_watermark: AtomicU64,
}

impl OverloadState {
    fn registered(registry: &Registry) -> Self {
        OverloadState {
            shed: registry.counter(
                "egobtw_shed_total",
                "Requests refused with ERR busy at the compute watermark.",
                &[],
            ),
            timeouts: registry.counter(
                "egobtw_timeouts_total",
                "Requests abandoned because their deadline expired.",
                &[],
            ),
            cancelled: registry.counter(
                "egobtw_client_cancelled_total",
                "Requests abandoned because the client vanished.",
                &[],
            ),
            inflight: registry.gauge(
                "egobtw_compute_inflight",
                "Engine computations running right now.",
                &[],
            ),
            compute_watermark: AtomicU64::new(0),
        }
    }
}

/// Decrements the in-flight gauge even if the engine panics.
struct InflightGuard<'a>(&'a Gauge);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

/// The shared, internally synchronized query service.
pub struct Service {
    catalog: Catalog,
    engines: Vec<RegisteredEngine>,
    overload: OverloadState,
    default_deadline: Option<Duration>,
    metrics: ServiceMetrics,
}

impl Default for Service {
    fn default() -> Self {
        Service::new()
    }
}

impl Service {
    /// An empty in-memory service with the full builtin engine registry.
    pub fn new() -> Self {
        Service::with_config(CatalogConfig::default())
    }

    /// A service with explicit catalog knobs (shard count, writer pool
    /// width, durability). Recovery of previously persisted datasets is a
    /// separate, explicit step: [`Service::recover`].
    pub fn with_config(cfg: CatalogConfig) -> Self {
        // One registry spans every layer: the catalog's dataset series,
        // the overload counters, and the request-outcome series all land
        // where a single `METRICS` scrape finds them.
        let metrics = ServiceMetrics::new(cfg.registry.clone());
        let overload = OverloadState::registered(&cfg.registry);
        Service {
            catalog: Catalog::with_config(cfg),
            engines: builtin_engines(),
            overload,
            default_deadline: None,
            metrics,
        }
    }

    /// The service's observability bundle (registry, slow-query log,
    /// request-outcome counters).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Sets the deadline applied to every command line that carries no
    /// explicit `DEADLINE` prefix (`None` = unlimited). Call before
    /// sharing the service.
    pub fn set_default_deadline(&mut self, deadline: Option<Duration>) {
        self.default_deadline = deadline;
    }

    /// Sets the compute watermark: once this many engine computations are
    /// in flight, further cache-missing `TOPK` requests are shed with
    /// `ERR busy retry_after_ms=…` instead of queuing on the CPU
    /// (0 = no limit). Call before sharing the service.
    pub fn set_compute_watermark(&mut self, watermark: u64) {
        self.overload
            .compute_watermark
            .store(watermark, Ordering::Relaxed);
    }

    /// The service-wide overload counters.
    pub fn overload(&self) -> &OverloadState {
        &self.overload
    }

    /// Translates an engine-level [`Cancelled`] into the wire error,
    /// bumping the matching counter: an explicit flag means the client is
    /// gone, otherwise the request's deadline expired.
    fn cancelled_err(&self, cancel: &Cancel) -> String {
        if cancel.is_flagged() {
            self.overload.cancelled.inc();
            "cancelled (client gone)".into()
        } else {
            self.overload.timeouts.inc();
            "deadline exceeded".into()
        }
    }

    /// Recovers every dataset directory under the persistence root (newest
    /// parseable snapshot + WAL tail replay). Returns what was rebuilt,
    /// sorted by name; empty for an in-memory service.
    pub fn recover(&self) -> Result<Vec<(String, RecoveryReport)>, String> {
        self.catalog.recover_all()
    }

    /// The catalog (for direct inspection in tests and tools).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Registers an in-memory graph, skipping the filesystem — the path
    /// tests, examples, and in-process loadgen use.
    pub fn load_graph(&self, name: &str, g: CsrGraph, mode: Mode) -> Result<Reply, String> {
        let (n, m) = (g.n(), g.m());
        self.catalog.insert(name, g, mode)?;
        Ok(Reply::Load {
            name: name.to_string(),
            n,
            m,
            mode,
            snapshot: false,
        })
    }

    /// Loads a dataset file, sniffing binary snapshot vs text edge list
    /// from the magic bytes.
    pub fn load_path(&self, name: &str, path: &str, mode: Mode) -> Result<Reply, String> {
        let (g, is_snapshot) = read_graph_file_sniffed(path)?;
        let (n, m) = (g.n(), g.m());
        self.catalog.insert(name, g, mode)?;
        Ok(Reply::Load {
            name: name.to_string(),
            n,
            m,
            mode,
            snapshot: is_snapshot,
        })
    }

    /// Folds one engine run's work counters into the request trace, the
    /// dataset's cumulative counters (the `STATS` surface), and the
    /// per-engine registry series (the `METRICS` surface).
    fn record_engine_work(
        &self,
        ds: &crate::catalog::Dataset,
        engine_label: &str,
        stats: &SearchStats,
        trace: &mut Trace,
    ) {
        trace.work.exact += stats.exact_computations as u64;
        trace.work.pruned += stats.pruned as u64;
        trace.work.triangles += stats.triangles_processed;
        trace.work.bound_refreshes += stats.bound_refreshes as u64;
        let m = ds.metrics();
        m.exact.add(stats.exact_computations as u64);
        m.pruned.add(stats.pruned as u64);
        m.triangles.add(stats.triangles_processed);
        let registry = self.metrics.registry();
        let labels: &[(&str, &str)] = &[("engine", engine_label)];
        registry
            .counter(
                "egobtw_engine_exact_total",
                "Vertices computed exactly, by engine.",
                labels,
            )
            .add(stats.exact_computations as u64);
        registry
            .counter(
                "egobtw_engine_pruned_total",
                "Vertices pruned by upper bounds, by engine.",
                labels,
            )
            .add(stats.pruned as u64);
        registry
            .counter(
                "egobtw_engine_triangles_total",
                "Triangles processed, by engine.",
                labels,
            )
            .add(stats.triangles_processed);
    }

    fn run_engine_cached(
        &self,
        ds: &crate::catalog::Dataset,
        snap: &Arc<EpochSnapshot>,
        engine_name: &str,
        k: usize,
        cancel: &Cancel,
        trace: &mut Trace,
    ) -> Result<(crate::catalog::SharedEntries, TopkSource), String> {
        // Resolve the engine before claiming a cache slot, so an unknown
        // name (or a malformed approx spec) can never leave a pending
        // slot behind.
        let mut approx: Option<ApproxParams> = None;
        let engine = if engine_name == "auto" {
            None
        } else if let Some(spec) = engine_name.strip_prefix("approx:") {
            approx = Some(parse_approx_engine(spec)?);
            None
        } else {
            Some(
                self.engines
                    .iter()
                    .find(|e| e.name() == engine_name)
                    .ok_or_else(|| format!("unknown engine {engine_name:?}"))?,
            )
        };
        let key = CacheKey::TopK {
            engine: engine_name.to_string(),
            k,
        };
        match snap.claim(key) {
            Claim::Ready(hit) => {
                ds.metrics().cache_hits.inc();
                Ok((hit, TopkSource::Cache))
            }
            Claim::Wait(pending) => {
                // Identical query in flight: wait for its answer instead
                // of burning another engine run on the same epoch.
                ds.metrics().coalesced.inc();
                Ok((pending.wait()?, TopkSource::Coalesced))
            }
            Claim::Compute(ticket) => {
                ds.metrics().cache_misses.inc();
                // Load shedding at the compute watermark: refusing here —
                // after the cache/coalesce fast paths, before the engine —
                // sheds exactly the requests that would pile CPU work onto
                // an already saturated box. Dropping `ticket` fails any
                // coalesced waiters with an error, which is right: they
                // were waiting on work that is not going to happen.
                let watermark = self.overload.compute_watermark.load(Ordering::Relaxed);
                let running = self.overload.inflight.add_and_get(1);
                let _guard = InflightGuard(&self.overload.inflight);
                if watermark > 0 && running as u64 > watermark {
                    self.overload.shed.inc();
                    return Err(format!("busy retry_after_ms={SHED_RETRY_MS}"));
                }
                let label = if engine_name == "auto" {
                    "core::opt_search(θ=1.05)".to_string()
                } else {
                    engine_name.to_string()
                };
                let timer = PhaseTimer::start(Phase::Compute);
                let mut work = SearchStats::default();
                let mut run = || -> Result<Vec<(VertexId, f64)>, Cancelled> {
                    Ok(match (engine, &approx) {
                        (None, Some(params)) => {
                            let result = approx_topk_cancellable(&snap.graph, k, params, cancel)?;
                            ds.metrics().approx_samples.add(result.samples_drawn);
                            ds.metrics().approx_rounds.add(u64::from(result.rounds));
                            trace.work.samples += result.samples_drawn;
                            trace.work.rounds += u64::from(result.rounds);
                            result.topk_entries()
                        }
                        (None, None) => {
                            let result = opt_bsearch_cancellable(
                                &snap.graph,
                                k,
                                OptParams { theta: 1.05 },
                                cancel,
                            )?;
                            work = result.stats;
                            result.entries
                        }
                        (Some(engine), _) => {
                            let result =
                                engine.topk_with_stats_cancellable(&snap.graph, k, cancel)?;
                            work = result.stats;
                            result.entries
                        }
                    })
                };
                let outcome = run().map_err(|Cancelled| self.cancelled_err(cancel));
                trace.end(timer);
                self.record_engine_work(ds, &label, &work, trace);
                let entries = Arc::new(outcome?);
                ticket.fulfill(entries.clone());
                Ok((entries, TopkSource::Engine(label)))
            }
        }
    }

    fn topk(
        &self,
        name: &str,
        k: usize,
        engine: &str,
        cancel: &Cancel,
        trace: &mut Trace,
    ) -> Result<Reply, String> {
        let timer = PhaseTimer::start(Phase::Snapshot);
        let ds = self.catalog.get(name)?;
        let snap = ds.snapshot();
        trace.end(timer);
        let n = snap.graph.n();
        let want = k.min(n);

        let (entries, source) = if engine == "auto" {
            // 1. Published maintained entries cover the request for free.
            if let Some(m) = snap.maintained.as_ref().filter(|m| want <= m.len()) {
                (Arc::new(m[..want].to_vec()), TopkSource::Maintained)
            } else if matches!(ds.mode(), Mode::Lazy { k: lk } if want <= lk.min(n))
                && snap.maintained.is_none()
            {
                // 2. Lazy dataset that deferred its refresh: pay it now.
                let timer = PhaseTimer::start(Phase::Compute);
                let refreshed = ds.refresh_maintained(snap.epoch);
                trace.end(timer);
                match refreshed {
                    Some(full) => (Arc::new(full[..want].to_vec()), TopkSource::Refreshed),
                    // Writer already moved on; answer for *our* snapshot
                    // via the engine path so the epoch stays truthful.
                    None => self.run_engine_cached(&ds, &snap, "auto", k, cancel, trace)?,
                }
            } else {
                // 3./4. Cache, then the default engine.
                self.run_engine_cached(&ds, &snap, "auto", k, cancel, trace)?
            }
        } else {
            self.run_engine_cached(&ds, &snap, engine, k, cancel, trace)?
        };
        debug_assert_eq!(entries.len(), want);
        Ok(Reply::Topk {
            name: name.to_string(),
            epoch: snap.epoch,
            k,
            source,
            entries,
        })
    }

    fn score(
        &self,
        name: &str,
        vertices: &[VertexId],
        cancel: &Cancel,
        trace: &mut Trace,
    ) -> Result<Reply, String> {
        let timer = PhaseTimer::start(Phase::Snapshot);
        let ds = self.catalog.get(name)?;
        let snap = ds.snapshot();
        trace.end(timer);
        let n = snap.graph.n();
        let mut entries = Vec::with_capacity(vertices.len());
        let mut cached = 0usize;
        let timer = PhaseTimer::start(Phase::Compute);
        for &v in vertices {
            if (v as usize) >= n {
                trace.end(timer);
                return Err(format!("vertex {v} out of range (n={n})"));
            }
            // One ego is the unit of work here; poll between egos so a
            // long SCORE list honors its deadline too.
            if let Err(Cancelled) = cancel.check() {
                trace.end(timer);
                return Err(self.cancelled_err(cancel));
            }
            let key = CacheKey::Score(v);
            let score = if let Some(hit) = snap.cache_get(&key) {
                ds.metrics().cache_hits.inc();
                cached += 1;
                hit[0].1
            } else {
                ds.metrics().cache_misses.inc();
                let s = ego_betweenness_of(&*snap.graph, v);
                trace.work.exact += 1;
                snap.cache_put(key, Arc::new(vec![(v, s)]));
                s
            };
            entries.push((v, score));
        }
        trace.end(timer);
        Ok(Reply::Score {
            name: name.to_string(),
            epoch: snap.epoch,
            entries,
            cached,
        })
    }

    fn common(&self, name: &str, u: VertexId, v: VertexId) -> Result<Reply, String> {
        let ds = self.catalog.get(name)?;
        let snap = ds.snapshot();
        let n = snap.graph.n();
        if (u as usize) >= n || (v as usize) >= n {
            return Err(format!("endpoint out of range (n={n})"));
        }
        let mut witnesses = Vec::new();
        if u != v {
            snap.graph.common_neighbors_into(u, v, &mut witnesses);
        }
        Ok(Reply::Common {
            name: name.to_string(),
            epoch: snap.epoch,
            witnesses,
        })
    }

    fn stats(&self, name: &str) -> Result<Reply, String> {
        let ds = self.catalog.get(name)?;
        let snap = ds.snapshot();
        Ok(Reply::Stats {
            name: name.to_string(),
            epoch: snap.epoch,
            n: snap.graph.n(),
            m: snap.graph.m(),
            mode: ds.mode(),
            maintained: snap.maintained.as_ref().map(|m| m.len()),
            stale_members: snap.stale_members,
            ops_applied: ds.ops_applied(),
            cache_hits: ds.metrics().cache_hits.get(),
            cache_misses: ds.metrics().cache_misses.get(),
            coalesced: ds.metrics().coalesced.get(),
            shard: self.catalog.shard_of(name),
            persisted: ds.persisted(),
            wal_records: ds.wal_records(),
            approx_samples: ds.metrics().approx_samples.get(),
            approx_rounds: ds.metrics().approx_rounds.get(),
            shed: self.overload.shed.get(),
            timeouts: self.overload.timeouts.get(),
            cancelled: self.overload.cancelled.get(),
            inflight: self.overload.inflight.get(),
            exact: ds.metrics().exact.get(),
            pruned: ds.metrics().pruned.get(),
            triangles: ds.metrics().triangles.get(),
        })
    }

    /// Executes one parsed command without a cancellation context.
    pub fn execute(&self, cmd: &Command) -> Result<Reply, String> {
        self.execute_with(cmd, &Cancel::never())
    }

    /// Executes one parsed command under a cancellation token: compute
    /// paths (`TOPK`, `SCORE`) poll it and return `deadline exceeded` /
    /// `cancelled` errors; `UPDATE` runs to completion regardless — a
    /// batch is acked or not, never half-cancelled (retries stay safe via
    /// the `seq` idempotency token).
    pub fn execute_with(&self, cmd: &Command, cancel: &Cancel) -> Result<Reply, String> {
        self.execute_traced(cmd, cancel, &mut Trace::start())
    }

    /// [`Service::execute_with`] recording phase timings and engine work
    /// counters into `trace` — the request-path entry, shared by the
    /// `TRACE` prefix and the slow-query log.
    fn execute_traced(
        &self,
        cmd: &Command,
        cancel: &Cancel,
        trace: &mut Trace,
    ) -> Result<Reply, String> {
        match cmd {
            Command::Load { name, path, mode } => self.load_path(name, path, *mode),
            Command::Topk { name, k, engine } => self.topk(name, *k, engine, cancel, trace),
            Command::Score { name, vertices } => self.score(name, vertices, cancel, trace),
            Command::Common { name, u, v } => self.common(name, *u, *v),
            Command::Update { name, ops, seq } => {
                // Routed through the dataset's shard writer pool: a storm
                // on one shard never blocks other shards' writers.
                let timer = PhaseTimer::start(Phase::Compute);
                let out = self.catalog.apply_updates_seq(name, ops.clone(), *seq);
                trace.end(timer);
                Ok(Reply::Update(name.clone(), out?))
            }
            Command::Stats { name } => self.stats(name),
            Command::List => Ok(Reply::List(self.catalog.names())),
            Command::Drop { name } => {
                self.catalog.drop_dataset(name)?;
                Ok(Reply::Dropped(name.clone()))
            }
            Command::Compact { name } => {
                let ds = self.catalog.get(name)?;
                let epoch = ds.compact()?;
                Ok(Reply::Compacted {
                    name: name.clone(),
                    epoch,
                })
            }
            Command::Ping => Ok(Reply::Pong),
            Command::Metrics => Ok(Reply::Metrics(self.metrics.registry().render())),
            Command::Slowlog => {
                let entries = self.metrics.slowlog().drain();
                Ok(Reply::Slowlog {
                    dropped: self.metrics.slowlog().dropped(),
                    entries,
                })
            }
        }
    }

    /// The verb and dataset labels one parsed command reports under.
    fn cmd_meta(cmd: &Command) -> (&'static str, &str) {
        match cmd {
            Command::Load { name, .. } => ("LOAD", name),
            Command::Topk { name, .. } => ("TOPK", name),
            Command::Score { name, .. } => ("SCORE", name),
            Command::Common { name, .. } => ("COMMON", name),
            Command::Update { name, .. } => ("UPDATE", name),
            Command::Stats { name } => ("STATS", name),
            Command::List => ("LIST", ""),
            Command::Drop { name } => ("DROP", name),
            Command::Compact { name } => ("COMPACT", name),
            Command::Ping => ("PING", ""),
            Command::Metrics => ("METRICS", ""),
            Command::Slowlog => ("SLOWLOG", ""),
        }
    }

    /// Parses and executes one line, rendering the response line (`ERR …`
    /// on parse or execution failure — the connection stays usable).
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_with(line, &Cancel::never())
    }

    /// [`Service::handle_line`] under a request-scoped cancellation token
    /// (typically connection-scoped, fired by the server when the client
    /// disconnects). A `DEADLINE <ms>` prefix — or, absent one, the
    /// service's default deadline — derives a tighter per-line token, and
    /// an already expired token is refused before any work starts.
    pub fn handle_line_with(&self, line: &str, cancel: &Cancel) -> String {
        self.handle_line_observed(line, cancel, true, None)
    }

    /// [`Service::handle_line_with`] with externally measured queue-wait
    /// nanoseconds folded into the trace (the TCP server hands down how
    /// long the connection sat in the acceptor queue).
    pub fn handle_line_queued(&self, line: &str, cancel: &Cancel, queue_ns: u64) -> String {
        self.handle_line_observed(line, cancel, true, Some(queue_ns))
    }

    /// The fully observed request path: outcome accounting (see
    /// [`crate::obs`] for the invariant), span tracing, per-verb latency,
    /// slow-query capture, and the opt-in `TRACE` reply suffix.
    ///
    /// `sole` says whether this line is the only line of its frame —
    /// `METRICS` and `SLOWLOG` render multi-line replies, which would
    /// corrupt the one-response-line-per-command-line pairing if another
    /// command shared the frame, so they are refused mid-frame.
    fn handle_line_observed(
        &self,
        line: &str,
        cancel: &Cancel,
        sole: bool,
        queue_ns: Option<u64>,
    ) -> String {
        self.metrics.admitted.inc();
        let mut trace = Trace::start();
        if let Some(ns) = queue_ns {
            trace.add_ns(Phase::Queue, ns);
        }
        let mut want_trace = false;
        let mut verb = "?";
        let mut dataset = String::new();
        let result = (|| -> Result<Reply, String> {
            let timer = PhaseTimer::start(Phase::Parse);
            let (traced, rest) = split_trace(line)?;
            want_trace = traced;
            let (ms, rest) = split_deadline(rest)?;
            let budget = ms.map(Duration::from_millis).or(self.default_deadline);
            let cancel = match budget {
                Some(d) => cancel.with_deadline(Instant::now() + d),
                None => cancel.clone(),
            };
            // Deadline-at-dequeue: a request that expired waiting in the
            // server queue is answered (with ERR), never computed.
            cancel
                .check()
                .map_err(|Cancelled| self.cancelled_err(&cancel))?;
            let cmd = parse_command(rest)?;
            trace.end(timer);
            let (v, ds) = Self::cmd_meta(&cmd);
            verb = v;
            dataset = ds.to_string();
            if matches!(cmd, Command::Metrics | Command::Slowlog) && !sole {
                return Err(format!("{verb} must be the only line in its frame"));
            }
            if matches!(cmd, Command::Metrics) {
                // Count this request's completion *before* rendering the
                // exposition, so admitted == completed+cancelled+failed
                // holds within the scrape it returns.
                self.metrics.completed.inc();
            }
            self.execute_traced(&cmd, &cancel, &mut trace)
        })();
        let timer = PhaseTimer::start(Phase::Serialize);
        let mut rendered = match &result {
            Ok(reply) => reply.render(),
            Err(e) => format!("ERR {e}"),
        };
        trace.end(timer);
        match &result {
            Ok(Reply::Metrics(_)) => {} // counted before the render above
            Ok(_) => self.metrics.completed.inc(),
            Err(e) if e == "deadline exceeded" || e.starts_with("cancelled") => {
                self.metrics.cancelled.inc();
            }
            Err(_) => self.metrics.failed.inc(),
        }
        let total_ns = trace.total_ns();
        self.metrics.latency(verb).record(total_ns);
        self.metrics.slowlog().maybe_record(total_ns, || SlowEntry {
            seq: 0, // assigned by the log
            unix_ms: unix_ms(),
            verb: verb.to_string(),
            dataset: dataset.clone(),
            total_ns,
            breakdown: trace.summary(),
        });
        if want_trace && !rendered.contains('\n') {
            rendered.push_str(" trace=");
            rendered.push_str(&trace.summary());
        }
        rendered
    }

    /// Handles one request payload: one response line per command line.
    pub fn handle_payload(&self, payload: &str) -> String {
        self.handle_payload_with(payload, &Cancel::never())
    }

    /// [`Service::handle_payload`] under a request-scoped token.
    pub fn handle_payload_with(&self, payload: &str, cancel: &Cancel) -> String {
        self.handle_payload_queued(payload, cancel, 0)
    }

    /// [`Service::handle_payload_with`] with the frame's queue-wait
    /// nanoseconds attributed to its first command line.
    pub fn handle_payload_queued(&self, payload: &str, cancel: &Cancel, queue_ns: u64) -> String {
        let lines: Vec<&str> = payload.lines().filter(|l| !l.trim().is_empty()).collect();
        if lines.is_empty() {
            return "ERR empty request".into();
        }
        let sole = lines.len() == 1;
        let mut out = String::new();
        for (i, line) in lines.iter().enumerate() {
            let queue = (i == 0).then_some(queue_ns);
            out.push_str(&self.handle_line_observed(line, cancel, sole, queue));
            out.push('\n');
        }
        out.pop(); // single trailing newline off; frames carry the length
        out
    }
}
