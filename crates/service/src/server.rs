//! TCP daemon: an acceptor thread feeding a fixed worker pool.
//!
//! Deliberately boring concurrency: the acceptor pushes accepted
//! connections into an `mpsc` channel; `threads` workers share the
//! receiver behind a mutex and each owns one connection at a time for its
//! whole lifetime (a connection is a session — per-frame handoff would
//! buy nothing and cost ordering). All actual synchronization lives in
//! the catalog's epoch swap, so the pool is just plumbing; `threads`
//! bounds the number of concurrently served connections.

use crate::proto::{read_frame, write_frame};
use crate::service::Service;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A running server: the bound address plus the handles needed to stop it.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts the
    /// acceptor plus `threads` workers over `service`.
    pub fn spawn<A: ToSocketAddrs>(
        service: Arc<Service>,
        addr: A,
        threads: usize,
    ) -> std::io::Result<Server> {
        assert!(threads >= 1, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let service = service.clone();
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only for the recv itself.
                    let stream = match rx.lock().unwrap().recv() {
                        Ok(s) => s,
                        Err(_) => return, // acceptor gone: drain complete
                    };
                    // A broken connection only ends that session, and a
                    // panic while serving one (e.g. a malformed dataset
                    // file tripping an assert) must not shrink the fixed
                    // pool — contain it and take the next connection.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        serve_connection(&service, stream)
                    }));
                    if outcome.is_err() {
                        eprintln!("egobtw-serve: worker survived a panicked session");
                    }
                })
            })
            .collect();

        let acceptor = {
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        return; // drops tx: workers drain and exit
                    }
                    if let Ok(stream) = stream {
                        if tx.send(stream).is_err() {
                            return;
                        }
                    }
                }
            })
        };

        Ok(Server {
            addr: local,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for the acceptor and all workers. Sessions
    /// already queued are still served to completion.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway
        // connection; it sees the flag before handing the stream on.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One session: frames in, framed responses out, until the client hangs
/// up cleanly.
fn serve_connection(service: &Service, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(payload) = read_frame(&mut reader)? {
        let response = service.handle_payload(&payload);
        write_frame(&mut writer, &response)?;
    }
    Ok(())
}

/// Client-side helper: one framed round trip on an established stream.
pub fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    payload: &str,
) -> std::io::Result<String> {
    write_frame(&mut *writer, payload)?;
    read_frame(reader)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        )
    })
}

/// Client-side helper: connect with retries (the daemon may still be
/// binding when a script starts), returning the buffered reader/writer
/// pair used by [`roundtrip`].
pub fn connect_with_retry(
    addr: &str,
    max_wait: std::time::Duration,
) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let deadline = std::time::Instant::now() + max_wait;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok((BufReader::new(stream.try_clone()?), stream));
            }
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}
