//! TCP daemon: an acceptor thread feeding a fixed worker pool — hardened
//! against overload and misbehaving clients.
//!
//! Deliberately boring concurrency: the acceptor pushes accepted
//! connections into a **bounded** `sync_channel`; `threads` workers share
//! the receiver behind a mutex and each owns one connection at a time for
//! its whole lifetime (a connection is a session — per-frame handoff
//! would buy nothing and cost ordering). All actual synchronization lives
//! in the catalog's epoch swap, so the pool is just plumbing; `threads`
//! bounds the number of concurrently *served* connections.
//!
//! The overload model ([`ServerConfig`]):
//!
//! * **Admission control** — at most `max_conns` connections may be
//!   accepted-and-unfinished at once, and at most `queue_cap` may wait in
//!   the channel for a worker. Past either limit the acceptor writes a
//!   best-effort `ERR busy retry_after_ms=…` frame and closes — an
//!   explicit refusal, never a silent hang.
//! * **Slow-client defense** — every accepted socket gets read/write
//!   timeouts (`io_timeout`). A client that connects and goes silent (or
//!   reads its responses one byte a minute) loses its session at the
//!   timeout instead of pinning a pool worker forever.
//! * **Disconnect detection** — a watchdog thread peeks each session's
//!   socket while its worker is inside a computation; a vanished client
//!   fires the session's [`Cancel`] token, and the engines abandon the
//!   work at their next checkpoint.
//! * **Graceful drain** — [`Server::drain`] stops accepting, refuses
//!   queued sessions with `ERR draining`, lets in-flight frames finish
//!   within the grace period, then hard-cancels stragglers (token +
//!   socket shutdown) and joins every thread.

use crate::proto::{read_frame, write_frame};
use crate::service::{Service, SHED_RETRY_MS};
use egobtw_core::Cancel;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::spawn_with`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads = concurrently served sessions.
    pub threads: usize,
    /// Accepted connections that may wait for a worker before the
    /// acceptor starts shedding with `ERR busy`.
    pub queue_cap: usize,
    /// Accepted-and-unfinished connections (served + queued) before the
    /// acceptor sheds. `0` means unlimited.
    pub max_conns: usize,
    /// Per-socket read/write timeout; a session idle (or stalled) past it
    /// is closed, freeing its worker. `None` disables the defense.
    pub io_timeout: Option<Duration>,
    /// How long [`Server::shutdown`] waits for in-flight frames before
    /// hard-cancelling them.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            queue_cap: 64,
            max_conns: 256,
            io_timeout: Some(Duration::from_secs(30)),
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// One live session as the watchdog sees it.
struct SessionEntry {
    cancel: Cancel,
    stream: TcpStream,
    /// True while the worker is inside `handle_payload` — the only window
    /// in which the watchdog may touch the socket (the worker is off it).
    busy: AtomicBool,
    /// Serializes the watchdog's nonblocking-peek window against the
    /// worker resuming socket I/O: the worker takes it (briefly) when
    /// clearing `busy`, so the watchdog never leaves the socket in
    /// nonblocking mode for a worker write to trip over.
    io_lock: Mutex<()>,
}

type Registry = Arc<Mutex<HashMap<u64, Arc<SessionEntry>>>>;

/// A running server: the bound address plus the handles needed to stop it.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    watchdog_stop: Arc<AtomicBool>,
    registry: Registry,
    drain_grace: Duration,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts the
    /// acceptor plus `threads` workers over `service`, with default
    /// overload limits.
    pub fn spawn<A: ToSocketAddrs>(
        service: Arc<Service>,
        addr: A,
        threads: usize,
    ) -> std::io::Result<Server> {
        Server::spawn_with(
            service,
            addr,
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
    }

    /// [`Server::spawn`] with explicit overload limits.
    pub fn spawn_with<A: ToSocketAddrs>(
        service: Arc<Service>,
        addr: A,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(cfg.threads >= 1, "need at least one worker");
        assert!(cfg.queue_cap >= 1, "need at least one queue slot");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
        let active = Arc::new(AtomicU64::new(0));
        // The channel carries the accept timestamp so the worker can
        // attribute queue wait to the session's first frame.
        type Queued = (TcpStream, Instant);
        let (tx, rx): (SyncSender<Queued>, Receiver<Queued>) = sync_channel(cfg.queue_cap);
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..cfg.threads)
            .map(|worker_id| {
                let rx = rx.clone();
                let service = service.clone();
                let shutdown = shutdown.clone();
                let registry = registry.clone();
                let active = active.clone();
                let io_timeout = cfg.io_timeout;
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only for the recv itself.
                    let (stream, accepted_at) = match rx.lock().unwrap().recv() {
                        Ok(s) => s,
                        Err(_) => return, // acceptor gone: drain complete
                    };
                    let queue_ns = accepted_at.elapsed().as_nanos() as u64;
                    if shutdown.load(Ordering::SeqCst) {
                        // Draining: a queued session is refused, not
                        // served — explicitly, so the client backs off
                        // instead of timing out.
                        stream
                            .set_write_timeout(Some(Duration::from_millis(250)))
                            .ok();
                        let _ = write_frame(&stream, "ERR draining");
                        active.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    // A broken connection only ends that session, and a
                    // panic while serving one (e.g. a malformed dataset
                    // file tripping an assert) must not shrink the fixed
                    // pool — contain it and take the next connection.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        serve_connection(
                            &service, stream, &registry, &shutdown, io_timeout, queue_ns,
                        )
                    }));
                    active.fetch_sub(1, Ordering::SeqCst);
                    if outcome.is_err() {
                        egobtw_telemetry::global()
                            .warn("worker-panic", &[("worker", &worker_id.to_string())]);
                    }
                })
            })
            .collect();

        let acceptor = {
            let shutdown = shutdown.clone();
            let service = service.clone();
            let active = active.clone();
            let max_conns = cfg.max_conns;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        return; // drops tx: workers drain and exit
                    }
                    let Ok(stream) = stream else { continue };
                    let now_active = active.fetch_add(1, Ordering::SeqCst) + 1;
                    if max_conns > 0 && now_active as usize > max_conns {
                        shed(&service, &active, stream);
                        continue;
                    }
                    match tx.try_send((stream, Instant::now())) {
                        Ok(()) => {}
                        Err(TrySendError::Full((stream, _))) => shed(&service, &active, stream),
                        Err(TrySendError::Disconnected(_)) => return,
                    }
                }
            })
        };

        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let registry = registry.clone();
            let stop = watchdog_stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    for entry in registry.lock().unwrap().values() {
                        let _io = entry.io_lock.lock().unwrap();
                        if entry.busy.load(Ordering::SeqCst) && peer_is_gone(&entry.stream) {
                            entry.cancel.cancel();
                        }
                    }
                    std::thread::park_timeout(Duration::from_millis(25));
                }
            })
        };

        Ok(Server {
            addr: local,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            watchdog: Some(watchdog),
            watchdog_stop,
            registry,
            drain_grace: cfg.drain_grace,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully drains with the configured grace period; see
    /// [`Server::drain`].
    pub fn shutdown(self) {
        let grace = self.drain_grace;
        self.drain(grace);
    }

    /// Stops accepting, refuses queued sessions with `ERR draining`, lets
    /// in-flight frames finish for up to `grace`, then hard-cancels the
    /// stragglers (cancel token + socket shutdown) and joins every thread.
    pub fn drain(mut self, grace: Duration) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway
        // connection; it sees the flag before handing the stream on.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join(); // drops tx: the queue stops growing
        }
        let deadline = Instant::now() + grace;
        while Instant::now() < deadline && self.workers.iter().any(|h| !h.is_finished()) {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Grace spent: abandon whatever is still running. The token stops
        // the compute at its next checkpoint; the socket shutdown kicks
        // any worker blocked in a read.
        for entry in self.registry.lock().unwrap().values() {
            entry.cancel.cancel();
            let _ = entry.stream.shutdown(Shutdown::Both);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.watchdog_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.watchdog.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

/// Acceptor-side refusal: a best-effort `ERR busy` frame, then close. The
/// short write timeout keeps an unresponsive peer from stalling the
/// acceptor itself.
fn shed(service: &Service, active: &AtomicU64, stream: TcpStream) {
    service.overload().shed.inc();
    stream
        .set_write_timeout(Some(Duration::from_millis(250)))
        .ok();
    let _ = write_frame(&stream, &format!("ERR busy retry_after_ms={SHED_RETRY_MS}"));
    active.fetch_sub(1, Ordering::SeqCst);
}

/// Nonblocking liveness peek, used only while the session's worker is
/// inside a computation (so nobody else is on the socket). `Ok(0)` is the
/// peer's FIN; `WouldBlock` is a healthy idle socket.
fn peer_is_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    stream.set_nonblocking(false).ok();
    gone
}

/// One session: frames in, framed responses out, until the client hangs
/// up cleanly, times out, or the server drains.
fn serve_connection(
    service: &Service,
    stream: TcpStream,
    registry: &Registry,
    draining: &AtomicBool,
    io_timeout: Option<Duration>,
    queue_ns: u64,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    if let Some(t) = io_timeout {
        stream.set_read_timeout(Some(t)).ok();
        stream.set_write_timeout(Some(t)).ok();
    }
    static NEXT_SESSION: AtomicU64 = AtomicU64::new(0);
    let id = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
    let entry = Arc::new(SessionEntry {
        cancel: Cancel::new(),
        stream: stream.try_clone()?,
        busy: AtomicBool::new(false),
        io_lock: Mutex::new(()),
    });
    registry.lock().unwrap().insert(id, entry.clone());
    // Unregister on every exit path, including panics in handlers.
    struct Unregister<'a>(&'a Registry, u64);
    impl Drop for Unregister<'_> {
        fn drop(&mut self) {
            self.0.lock().unwrap().remove(&self.1);
        }
    }
    let _unregister = Unregister(registry, id);

    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let write_ns = service.metrics().registry().histogram(
        "egobtw_write_ns",
        "Response frame write time in nanoseconds.",
        &[],
    );
    let mut first_frame = true;
    while let Some(payload) = read_frame(&mut reader)? {
        entry.busy.store(true, Ordering::SeqCst);
        // Queue wait (accept → worker pickup) belongs to the session's
        // first frame only; later frames never sat in the accept queue.
        let wait = if first_frame { queue_ns } else { 0 };
        first_frame = false;
        let response = service.handle_payload_queued(&payload, &entry.cancel, wait);
        {
            // Synchronize with the watchdog before touching the socket
            // again (it may be mid-peek with the socket nonblocking).
            let _io = entry.io_lock.lock().unwrap();
            entry.busy.store(false, Ordering::SeqCst);
        }
        if entry.cancel.is_flagged() {
            // Client gone (or drain hard-cancel): the response has no
            // reader; don't block trying to send it.
            break;
        }
        let start = Instant::now();
        write_frame(&mut writer, &response)?;
        write_ns.record(start.elapsed().as_nanos() as u64);
        if draining.load(Ordering::SeqCst) {
            break; // finish the in-flight frame, then bow out
        }
    }
    Ok(())
}

/// Client-side helper: one framed round trip on an established stream.
pub fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    payload: &str,
) -> std::io::Result<String> {
    write_frame(&mut *writer, payload)?;
    read_frame(reader)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        )
    })
}

/// Client-side helper: connect with retries (the daemon may still be
/// binding when a script starts), returning the buffered reader/writer
/// pair used by [`roundtrip`].
pub fn connect_with_retry(
    addr: &str,
    max_wait: std::time::Duration,
) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let deadline = std::time::Instant::now() + max_wait;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok((BufReader::new(stream.try_clone()?), stream));
            }
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

/// Jittered exponential backoff for retrying shed (`ERR busy`), draining,
/// or transport-failed requests. Deterministic for a given `seed`, so
/// tests and the seeded chaos harness replay identically.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, the first included.
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry after that.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based): exponential with
    /// full jitter over the upper half of the window, capped at
    /// [`RetryPolicy::cap`].
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(retry.min(20)).unwrap_or(u32::MAX));
        let window = exp.min(self.cap).max(Duration::from_millis(1));
        let mut x = self
            .seed
            .wrapping_add(u64::from(retry) + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        let nanos = window.as_nanos() as u64;
        Duration::from_nanos(nanos / 2 + x % (nanos / 2 + 1))
    }
}

/// Whether a response line tells the client to back off and try again
/// (load shed or drain refusal — *not* ordinary command errors).
pub fn is_retryable_response(response: &str) -> bool {
    response
        .lines()
        .any(|l| l.starts_with("ERR busy") || l.starts_with("ERR draining"))
}

/// One payload, retried under `policy`: reconnects per attempt (the shed
/// path closes the connection) and backs off on transport errors and
/// `ERR busy` / `ERR draining` refusals.
///
/// Safe to call with read-only payloads unconditionally. A payload with
/// an `UPDATE` is only retry-safe if the command carries a `seq=` token —
/// the refusal may race the ack, and without the token a replayed batch
/// would double-apply.
pub fn call_with_retry(addr: &str, payload: &str, policy: &RetryPolicy) -> std::io::Result<String> {
    let mut last_err = std::io::Error::other("no attempts configured");
    let mut last_refusal: Option<String> = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        match connect_with_retry(addr, Duration::from_secs(1)) {
            Ok((mut reader, mut writer)) => match roundtrip(&mut reader, &mut writer, payload) {
                Ok(resp) if is_retryable_response(&resp) => last_refusal = Some(resp),
                Ok(resp) => return Ok(resp),
                Err(e) => last_err = e,
            },
            Err(e) => last_err = e,
        }
    }
    // Out of attempts: a final explicit refusal beats a transport error —
    // the caller sees exactly what the server said.
    match last_refusal {
        Some(resp) => Ok(resp),
        None => Err(last_err),
    }
}
