//! Per-dataset write-ahead log and snapshot compaction.
//!
//! Durability layout: each persistent dataset owns one directory under the
//! service's `--data-dir`, named after the dataset (catalog names are
//! restricted to `[A-Za-z0-9._-]` precisely so they are path-safe):
//!
//! ```text
//! <data-dir>/<dataset>/
//!   MANIFEST            text: format tag, dataset name, maintainer mode
//!   snap-<epoch>.snap   versioned binary CSR snapshot (graph::io format)
//!   wal.log             append-only EdgeOp batch records past the snapshot
//! ```
//!
//! A WAL record is one `UPDATE` batch — the unit that publishes one epoch:
//!
//! ```text
//! len u32 le | crc u64 le | payload
//! payload = epoch u64 le | count u32 le | count × (tag u8, u u32, v u32)
//! ```
//!
//! `crc` is FNV-1a 64 over the payload (the same checksum the snapshot
//! format uses). The reader treats the first record that fails any check —
//! short length prefix, absurd length, short payload, checksum mismatch,
//! count/len disagreement, undecodable op — as the **torn tail** left by a
//! crash mid-append: everything before it is the durable history,
//! everything from it on is discarded (and truncated away on reopen, so
//! the next append never interleaves with garbage).
//!
//! Write ordering makes every crash point recoverable:
//!
//! 1. the record is appended (and fsynced under [`FsyncPolicy::Always`])
//!    **before** the epoch is published to readers — a crash after the
//!    append replays to a state at or ahead of anything a client saw;
//! 2. compaction writes the new snapshot to a temp name, renames it into
//!    place (atomic on POSIX), and only then truncates the WAL and deletes
//!    older snapshots — a crash mid-compaction leaves either the old
//!    snapshot + full WAL or the new snapshot + a WAL whose stale records
//!    are skipped by epoch on replay. Both recover to the same state.
//!
//! Crash points for the kill-and-replay conformance tests are injected via
//! the `EGOBTW_CRASH=<point>:<nth>` environment variable (see [`crash`]):
//! `wal-mid-record` flushes half a record then aborts, `post-append`
//! aborts between the durable append and the epoch publish, and
//! `mid-compaction` aborts between writing the temp snapshot and the
//! rename.

use crate::catalog::Mode;
use egobtw_dynamic::EdgeOp;
use egobtw_graph::io::{fnv1a64, read_snapshot_file, write_snapshot_file};
use egobtw_graph::CsrGraph;
use egobtw_telemetry::Counter;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// WAL file name inside a dataset directory.
pub const WAL_FILE: &str = "wal.log";
/// Manifest file name inside a dataset directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// First line of a manifest — bumped if the layout ever changes shape.
pub const MANIFEST_TAG: &str = "egobtw-dataset-v1";
/// Upper bound on one record's payload; a length prefix beyond this is
/// treated as corruption rather than allocated (a torn length field must
/// not OOM recovery).
pub const MAX_RECORD: usize = 64 << 20;

/// When the WAL fsyncs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended record: survives power loss at the
    /// cost of one sync per `UPDATE` batch.
    Always,
    /// Never fsync explicitly: appends reach the OS page cache only, which
    /// survives a process kill but not a machine crash.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI form `always` / `never`.
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("bad fsync policy {other:?}: always or never")),
        }
    }
}

/// Durability configuration shared by every dataset of one service.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Root directory; each dataset gets a subdirectory named after it.
    pub dir: PathBuf,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Snapshot compaction cadence: after this many WAL records a fresh
    /// snapshot is written and the WAL truncated.
    pub compact_every: u64,
}

impl PersistConfig {
    /// A config with the default cadence (compact every 64 batches).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            compact_every: 64,
        }
    }
}

/// One WAL record: the raw `UPDATE` batch that published `epoch`.
/// Replaying it through the maintainers' forgiving semantics (duplicate
/// inserts, absent deletes, and self-loops are no-ops) reproduces the
/// epoch exactly, skipped ops included.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// The epoch this batch published (previous epoch + 1).
    pub epoch: u64,
    /// The batch, verbatim as received — including ops that did not apply.
    pub ops: Vec<EdgeOp>,
}

/// Crash-point injection for kill-and-replay tests.
pub mod crash {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// `EGOBTW_CRASH=<point>:<nth>` — abort the process at the `nth`
    /// (1-based) arrival at the named crash point.
    pub const ENV: &str = "EGOBTW_CRASH";

    fn config() -> &'static Option<(String, u64)> {
        static CONFIG: OnceLock<Option<(String, u64)>> = OnceLock::new();
        CONFIG.get_or_init(|| {
            let spec = std::env::var(ENV).ok()?;
            let (point, nth) = spec.split_once(':').unwrap_or((spec.as_str(), "1"));
            Some((point.to_string(), nth.parse().ok().filter(|&n| n > 0)?))
        })
    }

    /// Returns `true` when this call is the configured `nth` arrival at
    /// `point` — the caller is expected to die (after any partial-write
    /// staging it wants to do).
    pub fn hit(point: &str) -> bool {
        static COUNT: AtomicU64 = AtomicU64::new(0);
        match config() {
            Some((p, nth)) if p == point => COUNT.fetch_add(1, Ordering::SeqCst) + 1 == *nth,
            _ => false,
        }
    }

    /// Aborts the process (no destructors, no flushes — the closest
    /// in-process stand-in for `kill -9`) if this is the configured
    /// arrival at `point`.
    pub fn abort_if(point: &str) {
        if hit(point) {
            eprintln!("egobtw: injected crash at {point:?}");
            std::process::abort();
        }
    }
}

/// Encodes one record into its on-disk frame: `len u32 | fnv1a64 u64 |
/// payload`, everything little-endian.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + rec.ops.len() * EdgeOp::WIRE_LEN);
    payload.extend_from_slice(&rec.epoch.to_le_bytes());
    payload.extend_from_slice(&(rec.ops.len() as u32).to_le_bytes());
    for &op in &rec.ops {
        op.encode_into(&mut payload);
    }
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes every valid record from `bytes`. Returns the records and the
/// byte length of the valid prefix; anything past it is a torn or
/// corrupted tail. Never panics on any input.
pub fn decode_records(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(len_bytes) = bytes.get(at..at + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        if !(12..=MAX_RECORD).contains(&len) {
            break;
        }
        let Some(crc_bytes) = bytes.get(at + 4..at + 12) else {
            break;
        };
        let crc = u64::from_le_bytes(crc_bytes.try_into().unwrap());
        let Some(payload) = bytes.get(at + 12..at + 12 + len) else {
            break;
        };
        if fnv1a64(payload) != crc {
            break;
        }
        let epoch = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let count = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
        if payload.len() != 12 + count * EdgeOp::WIRE_LEN {
            break;
        }
        let mut ops = Vec::with_capacity(count);
        let mut ok = true;
        for i in 0..count {
            match EdgeOp::decode(&payload[12 + i * EdgeOp::WIRE_LEN..]) {
                Some(op) => ops.push(op),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            break;
        }
        records.push(WalRecord { epoch, ops });
        at += 12 + len;
    }
    (records, at)
}

/// Telemetry handles a [`Wal`] bumps as it works. Detached counters by
/// default (nothing registered, nothing rendered); the catalog swaps in
/// registry-backed handles labeled with the dataset name.
#[derive(Clone, Default)]
pub struct WalMetrics {
    /// Records appended (one per published epoch).
    pub appends: Arc<Counter>,
    /// Explicit data syncs issued (per-append under
    /// [`FsyncPolicy::Always`], plus drain barriers and truncations).
    pub fsyncs: Arc<Counter>,
}

/// An open, append-positioned write-ahead log.
pub struct Wal {
    file: File,
    fsync: FsyncPolicy,
    /// Records currently in the file (valid ones; reset by [`Wal::truncate`]).
    records: u64,
    metrics: WalMetrics,
}

impl Wal {
    /// Creates (truncating any previous content) an empty WAL at `path`.
    pub fn create(path: &Path, fsync: FsyncPolicy) -> io::Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Wal {
            file,
            fsync,
            records: 0,
            metrics: WalMetrics::default(),
        })
    }

    /// Opens an existing WAL for recovery: reads every valid record,
    /// truncates the file to the valid prefix (discarding a torn tail),
    /// and returns the records, the reopened append handle, and whether a
    /// tail was discarded.
    pub fn recover(path: &Path, fsync: FsyncPolicy) -> io::Result<(Vec<WalRecord>, Wal, bool)> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false) // existing records are the whole point
            .read(true)
            .write(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = decode_records(&bytes);
        let torn = valid_len != bytes.len();
        if torn {
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        let records_count = records.len() as u64;
        Ok((
            records,
            Wal {
                file,
                fsync,
                records: records_count,
                metrics: WalMetrics::default(),
            },
            torn,
        ))
    }

    /// Appends one record, honoring the fsync policy. The `wal-mid-record`
    /// crash point flushes a half-written record then aborts — the torn
    /// tail recovery must cope with.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let frame = encode_record(rec);
        if crash::hit("wal-mid-record") {
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            let _ = self.file.sync_data();
            eprintln!("egobtw: injected crash at \"wal-mid-record\"");
            std::process::abort();
        }
        self.file.write_all(&frame)?;
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data()?;
            self.metrics.fsyncs.inc();
        }
        self.records += 1;
        self.metrics.appends.inc();
        Ok(())
    }

    /// Swaps in registry-backed telemetry handles (detached by default).
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = metrics;
    }

    /// Forces every appended byte to stable storage, regardless of the
    /// fsync policy — the graceful-drain path's durability barrier, so a
    /// clean exit under [`FsyncPolicy::Never`] still leaves every acked
    /// record recoverable.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.metrics.fsyncs.inc();
        Ok(())
    }

    /// Empties the WAL (after a snapshot made its records redundant).
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data()?;
            self.metrics.fsyncs.inc();
        }
        self.records = 0;
        Ok(())
    }

    /// Records appended since creation or the last truncate.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// The snapshot file name for `epoch` (zero-padded so lexical order is
/// numeric order).
pub fn snapshot_name(epoch: u64) -> String {
    format!("snap-{epoch:016}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Best-effort directory fsync (directory entries — the rename — need
/// their own sync on POSIX; ignored where unsupported).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Writes the snapshot for `epoch` atomically (temp + rename), then
/// deletes older snapshot files. The `mid-compaction` crash point aborts
/// between the temp write and the rename, leaving the previous snapshot
/// authoritative.
pub fn write_snapshot_at(dir: &Path, g: &CsrGraph, epoch: u64) -> io::Result<()> {
    let tmp = dir.join("snap.tmp");
    write_snapshot_file(g, None, &tmp)?;
    crash::abort_if("mid-compaction");
    fs::rename(&tmp, dir.join(snapshot_name(epoch)))?;
    sync_dir(dir);
    // Older snapshots are now redundant; a failure to unlink is harmless
    // (recovery picks the newest parseable one).
    for (e, path) in list_snapshots(dir) {
        if e < epoch {
            let _ = fs::remove_file(path);
        }
    }
    Ok(())
}

fn list_snapshots(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(epoch) = entry.file_name().to_str().and_then(parse_snapshot_name) {
                found.push((epoch, entry.path()));
            }
        }
    }
    found.sort_unstable_by_key(|&(e, _)| e);
    found
}

/// Loads the newest parseable snapshot in `dir`: `(epoch, graph)`.
/// Unparseable files (e.g. half-written by a dying process that somehow
/// bypassed the temp+rename discipline) are skipped, falling back to the
/// next older one.
pub fn latest_snapshot(dir: &Path) -> Option<(u64, CsrGraph)> {
    for (epoch, path) in list_snapshots(dir).into_iter().rev() {
        if let Ok((g, _)) = read_snapshot_file(&path) {
            return Some((epoch, g));
        }
    }
    None
}

/// Writes the dataset manifest: format tag, name, and maintainer mode.
pub fn write_manifest(dir: &Path, name: &str, mode: Mode) -> io::Result<()> {
    let text = format!("{MANIFEST_TAG}\nname={name}\nmode={}\n", mode.render());
    let tmp = dir.join("MANIFEST.tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    sync_dir(dir);
    Ok(())
}

/// Reads a dataset manifest back: `(name, mode)`.
pub fn read_manifest(dir: &Path) -> Result<(String, Mode), String> {
    let path = dir.join(MANIFEST_FILE);
    let text = fs::read_to_string(&path).map_err(|e| format!("read {path:?}: {e}"))?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_TAG) {
        return Err(format!("{path:?}: unknown manifest format"));
    }
    let mut name = None;
    let mut mode = None;
    for line in lines {
        if let Some(v) = line.strip_prefix("name=") {
            name = Some(v.to_string());
        } else if let Some(v) = line.strip_prefix("mode=") {
            mode = Some(Mode::parse(v)?);
        }
    }
    match (name, mode) {
        (Some(n), Some(m)) => Ok((n, m)),
        _ => Err(format!("{path:?}: missing name= or mode= line")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("egobtw-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                epoch: 1,
                ops: vec![EdgeOp::Insert(0, 1), EdgeOp::Delete(2, 3)],
            },
            WalRecord {
                epoch: 2,
                ops: vec![],
            },
            WalRecord {
                epoch: 3,
                ops: vec![EdgeOp::Insert(7, 9)],
            },
        ]
    }

    #[test]
    fn wal_roundtrip_and_recover() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        assert_eq!(wal.records(), 3);
        drop(wal);
        let (records, wal, torn) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert!(!torn);
        assert_eq!(records, sample_records());
        assert_eq!(wal.records(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncated_and_appendable() {
        let dir = tmp_dir("torn");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::create(&path, FsyncPolicy::Never).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal);
        let full = fs::read(&path).unwrap();
        // Simulate a crash mid-append: any strict prefix that cuts into
        // the last record recovers exactly the first two records.
        let (two, two_len) = decode_records(&full[..full.len() - 3]);
        assert_eq!(two.len(), 2);
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (records, mut wal, torn) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert!(torn);
        assert_eq!(records, sample_records()[..2]);
        assert_eq!(fs::metadata(&path).unwrap().len(), two_len as u64);
        // The next append lands cleanly after the valid prefix.
        let next = WalRecord {
            epoch: 3,
            ops: vec![EdgeOp::Delete(1, 2)],
        };
        wal.append(&next).unwrap();
        drop(wal);
        let (records, _, torn) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], next);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_rejects_absurd_length_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let (records, valid) = decode_records(&bytes);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
    }

    #[test]
    fn snapshot_rotation_keeps_newest() {
        let dir = tmp_dir("snaps");
        let g1 = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]);
        let g2 = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        write_snapshot_at(&dir, &g1, 0).unwrap();
        write_snapshot_at(&dir, &g2, 5).unwrap();
        let (epoch, g) = latest_snapshot(&dir).unwrap();
        assert_eq!(epoch, 5);
        assert_eq!(g.m(), 3);
        assert_eq!(list_snapshots(&dir).len(), 1, "older snapshot deleted");
        // A corrupt newest snapshot falls back to an older parseable one.
        write_snapshot_at(&dir, &g1, 9).unwrap();
        fs::write(dir.join(snapshot_name(11)), b"garbage").unwrap();
        let (epoch, g) = latest_snapshot(&dir).unwrap();
        assert_eq!(epoch, 9);
        assert_eq!(g.m(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrip() {
        let dir = tmp_dir("manifest");
        for mode in [
            Mode::Local { publish_k: 32 },
            Mode::Lazy { k: 8 },
            Mode::Delta { k: 5 },
        ] {
            write_manifest(&dir, "ds-1", mode).unwrap();
            assert_eq!(read_manifest(&dir).unwrap(), ("ds-1".to_string(), mode));
        }
        fs::write(dir.join(MANIFEST_FILE), "not-a-manifest\n").unwrap();
        assert!(read_manifest(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
