//! Concurrent top-k ego-betweenness query service.
//!
//! This crate turns the batch library into a long-lived daemon, the
//! setting where the paper's dynamic maintenance algorithms actually pay
//! off: indexes absorb an edge-update stream while concurrent readers ask
//! top-k / score / common-neighbor questions ("Scalable Online Betweenness
//! Centrality in Evolving Graphs", Kourtellis et al., frames betweenness
//! as exactly this serve-while-updating workload). Everything is std-only:
//! `std::net` sockets, `std::thread` workers, `std::sync` primitives.
//!
//! The moving parts, bottom to top:
//!
//! * [`catalog`] — named datasets, each an **epoch-swapped** pair of
//!   (writer-side dynamic maintainer, reader-side immutable
//!   [`EpochSnapshot`]). Writers apply update batches through
//!   [`egobtw_dynamic::LocalIndex`] or [`egobtw_dynamic::LazyTopK`], build
//!   a fresh CSR snapshot off to the side, and publish it with one pointer
//!   swap — readers clone an `Arc` and never block on maintenance work.
//!   Each snapshot fronts hot queries with a result cache that dies with
//!   its epoch, so invalidation is structural rather than tracked.
//!   The catalog is sharded by dataset-name hash: independent map locks
//!   and per-shard writer pools, so one dataset's writer storm never
//!   blocks another shard's readers or writers.
//! * [`wal`] — optional durability: a per-dataset write-ahead log of
//!   `EdgeOp` batches (length-prefixed, FNV-1a-checksummed records,
//!   fsynced *before* the epoch publishes) plus periodic snapshot
//!   compaction. Restart = newest parseable snapshot + WAL tail replay;
//!   torn tails truncate cleanly, and injected crash points let tests
//!   kill the daemon at the nastiest moments and verify recovery.
//! * [`service`] — the in-process API: parse → execute → render, shared
//!   (`&self`) across any number of threads. Tests, examples, and the
//!   loadgen's in-process mode use this directly and skip sockets.
//! * [`proto`] — the wire format: length-prefixed UTF-8 frames, one
//!   command per line, one response line per command (grammar in
//!   `docs/ARCHITECTURE.md`).
//! * [`server`] — the TCP daemon: an acceptor thread feeding a fixed
//!   worker pool over a channel; each worker owns a connection for its
//!   lifetime.
//! * [`loadgen`] — the load-generating client behind `egobtw-cli loadgen`:
//!   mixed read/update workloads at configurable concurrency, latency
//!   percentiles into `BENCH_service.json`, and an oracle-checked mode
//!   that verifies every sampled top-k answer against a from-scratch
//!   replay of the update stream (zero tolerance, tie-aware).
//! * [`obs`] — observability wiring: one shared metrics registry spanning
//!   every layer (scraped by `METRICS` in Prometheus text exposition),
//!   request-outcome accounting, per-verb latency histograms, per-request
//!   span tracing (opt-in `TRACE` prefix), and the `SLOWLOG` ring. See
//!   `docs/OBSERVABILITY.md`.
//!
//! Binaries: `egobtw-serve` (daemon) and `egobtw-cli` (scriptable client
//! + loadgen). See the README serving quickstart.

#![warn(missing_docs)]

pub mod catalog;
pub mod loadgen;
pub mod obs;
pub mod proto;
pub mod server;
pub mod service;
pub mod wal;

pub use catalog::{
    Catalog, CatalogConfig, Dataset, DatasetMetrics, EpochSnapshot, Mode, RecoveryReport,
};
pub use obs::ServiceMetrics;
pub use proto::{
    parse_command, read_frame, split_deadline, split_trace, write_frame, Command, MAX_UPDATE_OPS,
};
pub use server::{
    call_with_retry, connect_with_retry, is_retryable_response, roundtrip, RetryPolicy, Server,
    ServerConfig,
};
pub use service::{OverloadState, Reply, Service, SHED_RETRY_MS};
pub use wal::{FsyncPolicy, PersistConfig};
