//! Conformance tie-in: a seeded `EdgeOp` stream replayed through the
//! service's ingestion path must, at **every epoch**, answer top-k
//! queries that match the definitional truth — the graph rebuilt by
//! [`replay_graph`] scored by [`ego_betweenness_reference`] (zero shared
//! machinery with any engine or maintainer), compared with the
//! conformance crate's tie-aware comparator.

use conformance::{approx_eq, check_topk, REL_TOL};
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_dynamic::{replay_graph, EdgeOp};
use egobtw_graph::{CsrGraph, VertexId};
use egobtw_service::catalog::Mode;
use egobtw_service::{parse_command, Reply, Service};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded op stream over `g0`'s vertices: each op flips a uniformly
/// chosen pair against a replayed mirror of `g0`, so inserts and deletes
/// interleave and every op is state-changing.
fn stream(g0: &CsrGraph, len: usize, seed: u64) -> Vec<EdgeOp> {
    let n = g0.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mirror = egobtw_graph::DynGraph::from_csr(g0);
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let op = if mirror.has_edge(u, v) {
            mirror.remove_edge(u, v);
            EdgeOp::Delete(u, v)
        } else {
            mirror.insert_edge(u, v);
            EdgeOp::Insert(u, v)
        };
        ops.push(op);
    }
    ops
}

fn reference_truth(g: &CsrGraph) -> Vec<f64> {
    (0..g.n() as VertexId)
        .map(|v| ego_betweenness_reference(g, v))
        .collect()
}

fn topk_entries(service: &Service, line: &str) -> (u64, Vec<(VertexId, f64)>) {
    let reply = service
        .execute(&parse_command(line).unwrap())
        .unwrap_or_else(|e| panic!("{line:?}: {e}"));
    match reply {
        Reply::Topk { epoch, entries, .. } => (epoch, entries.to_vec()),
        other => panic!("unexpected reply {other:?}"),
    }
}

/// Replays `ops` in batches through one dataset and asserts every epoch
/// with **two comparators**: the tie-aware top-k comparator over both the
/// `auto` and explicit-engine paths, and a per-vertex exact comparison of
/// every SCORE answer against the reference truth.
fn check_mode(g0: &CsrGraph, ops: &[EdgeOp], mode: Mode, batch: usize, seed_tag: &str) {
    let service = Service::new();
    let name = format!("replay-{seed_tag}");
    service.load_graph(&name, g0.clone(), mode).unwrap();
    let n = g0.n();
    let ks = [1usize, 3, n / 2, n + 2];

    let mut applied_prefix = 0usize;
    let mut batch_start = 0usize;
    let mut epoch = 0u64;
    loop {
        // Check the current epoch (including epoch 0 before any update).
        let truth = reference_truth(&replay_graph(g0, &ops[..applied_prefix]).to_csr());
        for &k in &ks {
            let (e, entries) = topk_entries(&service, &format!("TOPK {name} {k}"));
            assert_eq!(e, epoch, "answer cites the wrong epoch");
            check_topk(&truth, &entries, k, REL_TOL).unwrap_or_else(|err| {
                panic!("{seed_tag} mode={mode:?} epoch={epoch} k={k} (auto): {err}")
            });
            let (e, entries) =
                topk_entries(&service, &format!("TOPK {name} {k} core::compute_all"));
            assert_eq!(e, epoch);
            check_topk(&truth, &entries, k, REL_TOL).unwrap_or_else(|err| {
                panic!("{seed_tag} mode={mode:?} epoch={epoch} k={k} (engine): {err}")
            });
        }
        // Second comparator: every vertex's exact score via SCORE.
        let all: Vec<String> = (0..n as VertexId).map(|v| v.to_string()).collect();
        let line = format!("SCORE {name} {}", all.join(" "));
        match service.execute(&parse_command(&line).unwrap()).unwrap() {
            Reply::Score { entries, .. } => {
                for (v, s) in entries {
                    assert!(
                        approx_eq(s, truth[v as usize], REL_TOL),
                        "{seed_tag} mode={mode:?} epoch={epoch}: CB({v}) {s} vs {}",
                        truth[v as usize]
                    );
                }
            }
            other => panic!("unexpected reply {other:?}"),
        }
        if batch_start >= ops.len() {
            break;
        }
        // Ingest the next batch.
        let end = (batch_start + batch).min(ops.len());
        let slice = &ops[batch_start..end];
        let line = format!(
            "UPDATE {name} {}",
            slice
                .iter()
                .map(|op| match op {
                    EdgeOp::Insert(u, v) => format!("+{u},{v}"),
                    EdgeOp::Delete(u, v) => format!("-{u},{v}"),
                })
                .collect::<Vec<_>>()
                .join(" ")
        );
        match service.execute(&parse_command(&line).unwrap()).unwrap() {
            Reply::Update(_, out) => {
                epoch = out.epoch;
                assert_eq!(
                    out.applied,
                    slice.len(),
                    "every op in the stream is state-changing by construction"
                );
            }
            other => panic!("unexpected reply {other:?}"),
        }
        applied_prefix = end;
        batch_start = end;
    }
    assert!(epoch >= 1, "stream must have published at least one epoch");
}

#[test]
fn replayed_stream_matches_oracle_local_mode() {
    let g0 = egobtw_gen::gnp(18, 0.2, 11);
    let ops = stream(&g0, 40, 0xA11CE);
    check_mode(&g0, &ops, Mode::Local { publish_k: 6 }, 3, "local");
}

#[test]
fn replayed_stream_matches_oracle_lazy_mode() {
    let g0 = egobtw_gen::gnp(18, 0.2, 11);
    let ops = stream(&g0, 40, 0xA11CE);
    // lazy:10 covers the whole k sweep below n/2 and forces both the
    // deferred-refresh and engine fallback paths.
    check_mode(&g0, &ops, Mode::Lazy { k: 10 }, 3, "lazy");
}

#[test]
fn replayed_stream_matches_oracle_delta_mode() {
    let g0 = egobtw_gen::gnp(18, 0.2, 11);
    let ops = stream(&g0, 40, 0xA11CE);
    // delta:10: k ≤ 10 requests ride the published maintained entries,
    // larger k falls through to the engine path — both epoch-checked.
    check_mode(&g0, &ops, Mode::Delta { k: 10 }, 3, "delta");
    // Single-op batches stress the per-op re-certification hardest.
    check_mode(&g0, &ops, Mode::Delta { k: 4 }, 1, "delta-k4");
}

#[test]
fn replayed_stream_from_karate_with_deletes_only_start() {
    // Start from a real graph so early deletes hit existing structure.
    let g0 = egobtw_gen::classic::karate_club();
    let mut rng = StdRng::seed_from_u64(5);
    let mut mirror = egobtw_graph::DynGraph::from_csr(&g0);
    let mut ops = Vec::new();
    while ops.len() < 30 {
        let u = rng.random_range(0..34u32);
        let v = rng.random_range(0..34u32);
        if u == v {
            continue;
        }
        let op = if mirror.has_edge(u, v) {
            mirror.remove_edge(u, v);
            EdgeOp::Delete(u, v)
        } else {
            mirror.insert_edge(u, v);
            EdgeOp::Insert(u, v)
        };
        ops.push(op);
    }
    check_mode(&g0, &ops, Mode::Local { publish_k: 8 }, 5, "karate-local");
    check_mode(&g0, &ops, Mode::Lazy { k: 8 }, 5, "karate-lazy");
    check_mode(&g0, &ops, Mode::Delta { k: 8 }, 5, "karate-delta");
}

/// Durability variant: the same replayed stream, but the dataset is
/// **dropped and recovered from disk between every batch** — each epoch's
/// answers must survive a restart bit-for-bit under the comparator, in
/// every maintainer mode (the manifest round-trips the mode).
#[test]
fn replayed_stream_survives_a_restart_at_every_epoch() {
    use egobtw_service::catalog::Dataset;
    use egobtw_service::wal::{FsyncPolicy, PersistConfig};

    let g0 = egobtw_gen::gnp(16, 0.2, 11);
    let ops = stream(&g0, 24, 0xB007);
    let batch = 3;
    for (mode, tag) in [
        (Mode::Local { publish_k: 6 }, "local"),
        (Mode::Lazy { k: 8 }, "lazy"),
        (Mode::Delta { k: 8 }, "delta"),
    ] {
        let dir =
            std::env::temp_dir().join(format!("egobtw-confreplay-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = PersistConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            compact_every: 4, // restarts interleave with compactions
        };
        let mut ds = Dataset::create_persistent("replay", g0.clone(), mode, &cfg).unwrap();
        for (i, chunk) in ops.chunks(batch).enumerate() {
            let epoch = i as u64 + 1;
            assert_eq!(ds.apply_updates(chunk).unwrap().epoch, epoch);
            drop(ds); // restart boundary
            let (recovered, report) = Dataset::recover("replay", &cfg)
                .unwrap_or_else(|e| panic!("{tag} epoch {epoch}: {e}"));
            assert_eq!(report.epoch, epoch, "{tag}: lost an epoch across restart");
            let prefix = (i + 1) * batch;
            let truth = reference_truth(&replay_graph(&g0, &ops[..prefix]).to_csr());
            for k in [1usize, 5, 9] {
                check_topk(&truth, &recovered.exact_topk_uncached(k), k, REL_TOL)
                    .unwrap_or_else(|e| panic!("{tag} epoch {epoch} k={k}: {e}"));
            }
            ds = recovered;
        }
        drop(ds);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
