//! Overload-model conformance for the in-process [`Server`]: slow
//! clients can't pin the pool, saturation sheds with an explicit `ERR
//! busy`, deadlines are enforced and counted, drain answers in-flight
//! work while refusing queued work, and `shutdown` joins every thread.

use egobtw_service::server::{connect_with_retry, roundtrip};
use egobtw_service::{RetryPolicy, Server, ServerConfig, Service, MAX_UPDATE_OPS, SHED_RETRY_MS};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn service_with(name: &str, n: usize, p: f64, seed: u64) -> Arc<Service> {
    let service = Service::new();
    let g0 = egobtw_gen::gnp(n, p, seed);
    service
        .load_graph(name, g0, egobtw_service::Mode::default())
        .unwrap();
    Arc::new(service)
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    connect_with_retry(addr, Duration::from_secs(10)).expect("connect")
}

/// Satellite 1: a client that connects and never sends a byte holds a
/// worker only until `io_timeout` — it cannot exhaust the pool. With
/// both workers pinned by sleepers, a real client is served as soon as
/// the read timeouts fire.
#[test]
fn slow_clients_cannot_exhaust_the_worker_pool() {
    let service = service_with("g", 24, 0.2, 7);
    let server = Server::spawn_with(
        service,
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            queue_cap: 8,
            max_conns: 32,
            io_timeout: Some(Duration::from_millis(300)),
            drain_grace: Duration::from_secs(2),
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // Two slow-loris sessions: accepted, served, never speak.
    let _loris_a = TcpStream::connect(&addr).unwrap();
    let _loris_b = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let workers pick them up

    let started = Instant::now();
    let (mut reader, mut writer) = connect(&addr);
    writer
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let reply = roundtrip(&mut reader, &mut writer, "PING").unwrap();
    assert_eq!(reply, "OK pong");
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "PING took {:?} — the sleepers pinned the pool past their io_timeout",
        started.elapsed()
    );
    server.shutdown();
}

/// Saturation beyond `max_conns` is an explicit, counted refusal —
/// never a hang.
#[test]
fn saturated_acceptor_sheds_with_err_busy() {
    let service = service_with("g", 24, 0.2, 7);
    let server = Server::spawn_with(
        service.clone(),
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            queue_cap: 1,
            max_conns: 2,
            io_timeout: Some(Duration::from_secs(10)),
            drain_grace: Duration::from_secs(2),
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // Fill the lone worker with a session that proves the worker owns it
    // (one answered PING) and then goes silent, then park a second silent
    // session in the lone queue slot.
    let (mut rp, mut wp) = connect(&addr);
    assert_eq!(roundtrip(&mut rp, &mut wp, "PING").unwrap(), "OK pong");
    let _queued = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Anything past max_conns must be told to go away.
    let (mut reader, mut writer) = connect(&addr);
    writer
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let reply = roundtrip(&mut reader, &mut writer, "PING").unwrap_or_else(|e| {
        panic!(
            "no reply (shed={} inflight={}): {e}",
            service.overload().shed.get(),
            service.overload().inflight.get()
        )
    });
    assert_eq!(reply, format!("ERR busy retry_after_ms={SHED_RETRY_MS}"));
    assert!(
        service.overload().shed.get() >= 1,
        "shed counter must record the refusal"
    );
    server.shutdown();
}

/// Tentpole (a): an already-expired deadline is refused at dequeue with
/// `ERR deadline`, and the timeout counter records it; a generous
/// deadline on the same command succeeds.
#[test]
fn expired_deadline_is_refused_and_counted() {
    let service = service_with("g", 40, 0.15, 11);
    let server = Server::spawn(service.clone(), "127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().to_string();
    let (mut reader, mut writer) = connect(&addr);

    let reply = roundtrip(
        &mut reader,
        &mut writer,
        "DEADLINE 0 TOPK g 5 core::compute_all",
    )
    .unwrap();
    assert!(
        reply.starts_with("ERR") && reply.contains("deadline"),
        "expired budget must say deadline, got {reply:?}"
    );
    assert!(service.overload().timeouts.get() >= 1);

    let reply = roundtrip(
        &mut reader,
        &mut writer,
        "DEADLINE 30000 TOPK g 5 core::compute_all",
    )
    .unwrap();
    assert!(reply.starts_with("OK top"), "{reply}");
    server.shutdown();
}

/// Satellite 2: an oversized UPDATE batch is refused at the API edge
/// with an error that names the cap, before any op applies.
#[test]
fn oversized_update_batch_is_refused_with_the_cap_named() {
    let service = service_with("g", 24, 0.2, 7);
    let server = Server::spawn(service.clone(), "127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr().to_string();
    let (mut reader, mut writer) = connect(&addr);

    let mut line = String::from("UPDATE g");
    for i in 0..=MAX_UPDATE_OPS {
        line.push_str(&format!(" +{},{}", i % 24, (i + 1) % 24));
    }
    let reply = roundtrip(&mut reader, &mut writer, &line).unwrap();
    assert!(
        reply.starts_with("ERR") && reply.contains(&MAX_UPDATE_OPS.to_string()),
        "cap refusal must name the cap, got {reply:?}"
    );
    // Nothing applied: the dataset is still at epoch 0.
    let stats = roundtrip(&mut reader, &mut writer, "STATS g").unwrap();
    assert!(stats.contains(" epoch=0 "), "{stats}");
    server.shutdown();
}

/// Satellite 3 / tentpole (c): drain answers the in-flight frame,
/// refuses the queued session with `ERR draining`, and joins every
/// worker (drain returning *is* the join).
#[test]
fn drain_answers_inflight_and_refuses_queued() {
    let service = service_with("g", 60, 0.12, 23);
    let server = Server::spawn_with(
        service,
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            queue_cap: 4,
            max_conns: 16,
            io_timeout: Some(Duration::from_secs(10)),
            drain_grace: Duration::from_secs(5),
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // Session A owns the lone worker…
    let (mut ra, mut wa) = connect(&addr);
    assert_eq!(roundtrip(&mut ra, &mut wa, "PING").unwrap(), "OK pong");
    // …session B waits in the queue behind it.
    let b = TcpStream::connect(&addr).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut rb = BufReader::new(b.try_clone().unwrap());
    std::thread::sleep(Duration::from_millis(50));

    // Put a frame in flight on A, then drain while it computes.
    egobtw_service::write_frame(&mut wa, "TOPK g 8 core::compute_all").unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let collector = std::thread::spawn(move || {
        let a_reply = egobtw_service::read_frame(&mut ra).unwrap();
        let b_reply = egobtw_service::read_frame(&mut rb).unwrap();
        (a_reply, b_reply)
    });
    server.drain(Duration::from_secs(5));

    let (a_reply, b_reply) = collector.join().unwrap();
    let a_reply = a_reply.expect("in-flight frame must be answered");
    assert!(
        a_reply.starts_with("OK top"),
        "in-flight frame must finish inside the grace period: {a_reply:?}"
    );
    assert_eq!(
        b_reply.expect("queued session must be refused, not dropped"),
        "ERR draining"
    );
}

/// After `shutdown` returns, the listener is gone: no thread leaked, no
/// half-open socket accepting connections into the void.
#[test]
fn shutdown_closes_the_listener() {
    let service = service_with("g", 24, 0.2, 7);
    let server = Server::spawn(service, "127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().to_string();
    {
        let (mut reader, mut writer) = connect(&addr);
        assert_eq!(
            roundtrip(&mut reader, &mut writer, "PING").unwrap(),
            "OK pong"
        );
    }
    server.shutdown();
    // A fresh connection must fail outright or die unanswered — the
    // accept loop is gone either way.
    if let Ok(stream) = TcpStream::connect(&addr) {
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        assert!(
            roundtrip(&mut reader, &mut writer, "PING").is_err(),
            "a drained server must not serve new sessions"
        );
    }
}

/// The retry policy is deterministic (seeded jitter) and bounded by its
/// cap — the property the chaos harness's replayability rests on.
#[test]
fn retry_backoff_is_deterministic_and_capped() {
    let policy = RetryPolicy::default();
    for retry in 0..8 {
        let a = policy.backoff(retry);
        let b = policy.backoff(retry);
        assert_eq!(a, b, "same retry must sleep the same");
        assert!(a <= policy.cap, "retry {retry} slept {a:?} past the cap");
        assert!(a >= Duration::from_nanos(1));
    }
    let other = RetryPolicy {
        seed: 1,
        ..RetryPolicy::default()
    };
    assert_ne!(
        (0..8).map(|r| policy.backoff(r)).collect::<Vec<_>>(),
        (0..8).map(|r| other.backoff(r)).collect::<Vec<_>>(),
        "different seeds must jitter differently"
    );
}
