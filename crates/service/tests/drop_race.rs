//! DROP-vs-UPDATE race: dropping a dataset while writers are hammering it
//! must quiesce cleanly — in-flight batches either complete before the
//! retire or are refused, never applied to a half-deleted dataset; the
//! persistence directory is gone afterwards; and the name is immediately
//! reusable.

use egobtw_dynamic::EdgeOp;
use egobtw_graph::CsrGraph;
use egobtw_service::catalog::Mode;
use egobtw_service::wal::{FsyncPolicy, PersistConfig};
use egobtw_service::{parse_command, CatalogConfig, Service};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "egobtw-droprace-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&path);
    std::fs::create_dir_all(&path).unwrap();
    path
}

/// An update outcome during the race is acceptable iff it is a success or
/// one of the refusals the retire path hands out.
fn acceptable(err: &str) -> bool {
    err.contains("retired") || err.contains("no dataset") || err.contains("writer pool")
}

#[test]
fn drop_during_update_storm_quiesces_and_deletes() {
    let dir = temp_dir("storm");
    let service = Arc::new(Service::with_config(CatalogConfig {
        shards: 4,
        writers_per_shard: 2,
        persist: Some(PersistConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            compact_every: 4, // keep compactions in the race too
        }),
        ..CatalogConfig::default()
    }));
    let g0 = egobtw_gen::gnp(24, 0.15, 21);
    let n = g0.n() as u32;

    for round in 0..6u64 {
        let name = format!("race-{round}");
        service
            .load_graph(&name, g0.clone(), Mode::default())
            .unwrap();
        let ds_dir = dir.join(&name);
        assert!(ds_dir.exists(), "round {round}: no persistence dir");

        std::thread::scope(|scope| {
            for t in 0..3u32 {
                let (service, name) = (service.clone(), name.clone());
                scope.spawn(move || {
                    for i in 0..200u32 {
                        // Writer threads cycle disjoint edges so batches
                        // stay state-changing regardless of interleaving.
                        let u = (t * 67 + i) % n;
                        let v = (u + 1 + i % (n - 1)) % n;
                        if u == v {
                            continue;
                        }
                        let op = if i % 2 == 0 {
                            EdgeOp::Insert(u, v)
                        } else {
                            EdgeOp::Delete(u, v)
                        };
                        match service.catalog().apply_updates(&name, vec![op]) {
                            Ok(_) => {}
                            Err(e) if acceptable(&e) => break,
                            Err(e) => panic!("round {round} writer {t}: {e}"),
                        }
                    }
                });
            }
            // Let the storm build, then pull the rug.
            std::thread::sleep(std::time::Duration::from_millis(2 + round));
            match service.execute(&parse_command(&format!("DROP {name}")).unwrap()) {
                Ok(_) => {}
                Err(e) => assert!(acceptable(&e), "round {round}: DROP: {e}"),
            }
        });

        // After every writer has returned: directory gone, writes refused,
        // name free.
        assert!(
            !ds_dir.exists(),
            "round {round}: retire left the persistence dir behind"
        );
        let err = service
            .catalog()
            .apply_updates(&name, vec![EdgeOp::Insert(0, 1)])
            .unwrap_err();
        assert!(acceptable(&err), "round {round}: {err}");
        service
            .load_graph(&name, g0.clone(), Mode::default())
            .unwrap();
        assert!(ds_dir.exists(), "round {round}: re-load must re-create");
        service
            .execute(&parse_command(&format!("DROP {name}")).unwrap())
            .unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retired_handle_refuses_even_when_held_across_the_drop() {
    // A reader that grabbed the Arc<Dataset> before the DROP keeps its
    // snapshot (epoch reads stay safe) but can never write through it.
    let service = Service::new();
    let g0: CsrGraph = egobtw_gen::classic::karate_club();
    service.load_graph("held", g0, Mode::default()).unwrap();
    let held = service.catalog().get("held").unwrap();
    let snap_before = held.snapshot();
    service
        .execute(&parse_command("DROP held").unwrap())
        .unwrap();
    assert!(held.retired());
    let err = held.apply_updates(&[EdgeOp::Insert(0, 5)]).unwrap_err();
    assert!(err.contains("retired"), "{err}");
    // The old snapshot is still a coherent graph at its epoch.
    assert_eq!(snap_before.epoch, 0);
    assert_eq!(snap_before.graph.m(), 78);
}
