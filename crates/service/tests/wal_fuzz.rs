//! Fuzz-style robustness tests for the two byte-level decoders: the wire
//! frame reader ([`read_frame`]) and the WAL record decoder
//! ([`decode_records`]). Every malformed input — truncations at every
//! offset, single-bit flips at every byte, absurd length prefixes,
//! garbage — must come back as a clean `Err`/`None`/shorter-valid-prefix.
//! Never a panic, never an allocation proportional to a lying length
//! field, never an accepted corrupt record.

use egobtw_dynamic::EdgeOp;
use egobtw_service::wal::{decode_records, encode_record, WalRecord, MAX_RECORD};
use egobtw_service::{read_frame, write_frame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::BufReader;

fn frame_bytes(payload: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, payload).unwrap();
    buf
}

fn try_read(bytes: &[u8]) -> std::io::Result<Option<String>> {
    read_frame(&mut BufReader::new(bytes))
}

#[test]
fn frame_roundtrip_and_every_truncation() {
    for payload in ["", "PING", "TOPK k 5\nLIST", &"x".repeat(3000)] {
        let bytes = frame_bytes(payload);
        assert_eq!(try_read(&bytes).unwrap().as_deref(), Some(payload));
        // Anything shorter dies mid-frame: EOF at offset 0 is a clean
        // `None` (no frame started); any other cut is an error, never a
        // short read silently passed off as the payload.
        for cut in 0..bytes.len() {
            match try_read(&bytes[..cut]) {
                Ok(None) => assert_eq!(cut, 0, "cut {cut} looked like a clean EOF"),
                Ok(Some(p)) => panic!("cut {cut} yielded a phantom frame {p:?}"),
                Err(_) => assert!(cut > 0),
            }
        }
    }
}

#[test]
fn frame_rejects_garbage_prefixes_without_allocating() {
    // Over-length prefixes up to usize::MAX: rejected on the prefix alone.
    for len in ["16777217", "999999999999", "18446744073709551615"] {
        let mut bytes = format!("{len}\n").into_bytes();
        bytes.extend_from_slice(b"data");
        assert!(try_read(&bytes).is_err(), "prefix {len} accepted");
    }
    // Non-numeric, negative, empty, and binary junk prefixes.
    for bad in ["abc\nhello", "-5\nhello", "\nhello", "12junk\nhello"] {
        assert!(try_read(bad.as_bytes()).is_err(), "{bad:?} accepted");
    }
    let junk: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
    assert!(try_read(&junk).is_err(), "binary junk accepted");
    // A length line that never terminates must not buffer unboundedly.
    let endless = vec![b'7'; 1 << 16];
    assert!(try_read(&endless).is_err(), "endless digits accepted");
}

fn sample_records() -> Vec<WalRecord> {
    vec![
        WalRecord {
            epoch: 1,
            ops: vec![EdgeOp::Insert(0, 1), EdgeOp::Delete(7, 3)],
        },
        WalRecord {
            epoch: 2,
            ops: vec![],
        },
        WalRecord {
            epoch: 3,
            ops: vec![EdgeOp::Insert(1000, 2000)],
        },
    ]
}

fn encode_all(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for rec in records {
        bytes.extend_from_slice(&encode_record(rec));
    }
    bytes
}

#[test]
fn wal_truncation_at_every_offset_yields_the_whole_record_prefix() {
    let records = sample_records();
    let bytes = encode_all(&records);
    let boundaries: Vec<usize> = {
        let mut at = 0;
        let mut b = vec![0];
        for rec in &records {
            at += encode_record(rec).len();
            b.push(at);
        }
        b
    };
    for cut in 0..=bytes.len() {
        let (decoded, consumed) = decode_records(&bytes[..cut]);
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(decoded.len(), whole, "cut {cut}");
        assert_eq!(consumed, boundaries[whole], "cut {cut}");
        for (d, r) in decoded.iter().zip(&records) {
            assert_eq!((d.epoch, &d.ops), (r.epoch, &r.ops));
        }
    }
}

#[test]
fn wal_single_bit_flips_never_pass_the_checksum() {
    let records = sample_records();
    let clean = encode_all(&records);
    for byte in 0..clean.len() {
        for bit in 0..8 {
            let mut bytes = clean.clone();
            bytes[byte] ^= 1 << bit;
            let (decoded, consumed) = decode_records(&bytes);
            // The flip must not manufacture state: every surviving record
            // is bit-identical to a clean prefix record, and decoding
            // stops at (or before) the flipped record. A flip in a length
            // field may also make the stream end mid-record — fine, the
            // torn-tail rule covers it. What must never happen is a
            // record decoding *differently* yet being accepted.
            assert!(consumed <= bytes.len());
            for (i, d) in decoded.iter().enumerate() {
                assert_eq!(
                    (d.epoch, &d.ops),
                    (records[i].epoch, &records[i].ops),
                    "byte {byte} bit {bit}: record {i} silently mutated"
                );
            }
        }
    }
}

#[test]
fn wal_rejects_absurd_lengths_and_garbage_without_allocating() {
    // A length field of MAX_RECORD+1 (or u32::MAX) must be refused before
    // any buffer of that size exists.
    for len in [MAX_RECORD as u32 + 1, u32::MAX] {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        let (decoded, consumed) = decode_records(&bytes);
        assert!(decoded.is_empty());
        assert_eq!(consumed, 0);
    }
    // Deterministic random garbage: decode must terminate, consume at
    // most the input, and agree with a re-decode of what it consumed.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for len in [0usize, 1, 7, 64, 513, 4096] {
        for _ in 0..8 {
            let bytes: Vec<u8> = (0..len).map(|_| rng.random::<u32>() as u8).collect();
            let (decoded, consumed) = decode_records(&bytes);
            assert!(consumed <= bytes.len());
            let (again, consumed2) = decode_records(&bytes[..consumed]);
            assert_eq!(consumed2, consumed);
            assert_eq!(again.len(), decoded.len());
        }
    }
}

#[test]
fn wal_garbage_prefix_poisons_the_tail() {
    // A WAL is replayed strictly in order: once a record fails, nothing
    // after it may be trusted even if it would checksum — a hole means
    // lost epochs, and replaying past it would fabricate history.
    let records = sample_records();
    let mut bytes = vec![0xAAu8; 13]; // garbage where record 0 should be
    bytes.extend_from_slice(&encode_all(&records));
    let (decoded, consumed) = decode_records(&bytes);
    assert!(
        decoded.is_empty() && consumed == 0,
        "valid-looking records after a corrupt prefix must not replay"
    );
}
