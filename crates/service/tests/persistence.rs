//! Library-level durability tests: a persistent dataset must recover to
//! a state whose top-k answers match the definitional truth — the graph
//! rebuilt by [`replay_graph`] over the *durable* op prefix, scored by
//! [`ego_betweenness_reference`] — after clean drops, torn WAL tails cut
//! at every byte offset, and compaction at any cadence.

use conformance::{check_topk, REL_TOL};
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_dynamic::{replay_graph, EdgeOp};
use egobtw_graph::{CsrGraph, VertexId};
use egobtw_service::catalog::{Dataset, Mode};
use egobtw_service::wal::{FsyncPolicy, PersistConfig, MANIFEST_FILE, WAL_FILE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh unique temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "egobtw-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Seeded state-changing op stream over `g0` (inserts and deletes
/// interleave against a replayed mirror).
fn stream(g0: &CsrGraph, len: usize, seed: u64) -> Vec<EdgeOp> {
    let n = g0.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mirror = egobtw_graph::DynGraph::from_csr(g0);
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        ops.push(if mirror.has_edge(u, v) {
            mirror.remove_edge(u, v);
            EdgeOp::Delete(u, v)
        } else {
            mirror.insert_edge(u, v);
            EdgeOp::Insert(u, v)
        });
    }
    ops
}

fn reference_truth(g: &CsrGraph) -> Vec<f64> {
    (0..g.n() as VertexId)
        .map(|v| ego_betweenness_reference(g, v))
        .collect()
}

/// Asserts the dataset's uncached top-k matches the reference truth of
/// `g0` + the first `prefix` ops.
fn assert_matches_prefix(ds: &Dataset, g0: &CsrGraph, ops: &[EdgeOp], prefix: usize, tag: &str) {
    let truth = reference_truth(&replay_graph(g0, &ops[..prefix]).to_csr());
    let k = 6.min(g0.n());
    let entries = ds.exact_topk_uncached(k);
    check_topk(&truth, &entries, k, REL_TOL)
        .unwrap_or_else(|e| panic!("{tag}: prefix {prefix}: {e}"));
}

fn cfg(dir: &TempDir, compact_every: u64) -> PersistConfig {
    PersistConfig {
        dir: dir.path().to_path_buf(),
        fsync: FsyncPolicy::Never, // tests exercise logic, not the disk
        compact_every,
    }
}

#[test]
fn recovery_replays_the_wal_to_the_exact_published_state() {
    let g0 = egobtw_gen::gnp(16, 0.2, 7);
    let ops = stream(&g0, 24, 0xD1CE);
    let dir = TempDir::new("recover");
    let cfg = cfg(&dir, u64::MAX); // never compact: pure WAL replay

    let ds =
        Dataset::create_persistent("r", g0.clone(), Mode::Local { publish_k: 8 }, &cfg).unwrap();
    for (i, batch) in ops.chunks(3).enumerate() {
        let out = ds.apply_updates(batch).unwrap();
        assert_eq!(out.epoch, i as u64 + 1);
    }
    assert_eq!(ds.wal_records(), 8);
    drop(ds); // clean shutdown: nothing flushed beyond the appends

    let (rec, report) = Dataset::recover("r", &cfg).unwrap();
    assert_eq!(report.snapshot_epoch, 0);
    assert_eq!(report.epoch, 8);
    assert_eq!(report.replayed, 8);
    assert!(!report.torn_tail);
    assert_eq!(rec.snapshot().epoch, 8);
    assert_matches_prefix(&rec, &g0, &ops, 24, "recovered");

    // The recovered dataset keeps serving writes, starting past the
    // recovered epoch, and stays exact.
    let more = {
        let g8 = replay_graph(&g0, &ops).to_csr();
        stream(&g8, 6, 0xFEED)
    };
    let out = rec.apply_updates(&more[..3]).unwrap();
    assert_eq!(out.epoch, 9);
    let g8 = replay_graph(&g0, &ops).to_csr();
    let truth = reference_truth(&replay_graph(&g8, &more[..3]).to_csr());
    check_topk(&truth, &rec.exact_topk_uncached(6), 6, REL_TOL).unwrap();
}

#[test]
fn torn_wal_tail_cut_at_every_byte_recovers_a_valid_prefix() {
    let g0 = egobtw_gen::gnp(12, 0.25, 3);
    let ops = stream(&g0, 12, 0xBEEF);
    let batch = 2usize;
    let dir = TempDir::new("torn");
    let cfg0 = cfg(&dir, u64::MAX);
    let ds = Dataset::create_persistent("t", g0.clone(), Mode::default(), &cfg0).unwrap();
    for chunk in ops.chunks(batch) {
        ds.apply_updates(chunk).unwrap();
    }
    drop(ds);

    let wal_bytes = std::fs::read(dir.path().join("t").join(WAL_FILE)).unwrap();
    let record_len = wal_bytes.len() / (ops.len() / batch);
    // Truth per recoverable prefix, computed once.
    let truths: Vec<Vec<f64>> = (0..=ops.len() / batch)
        .map(|e| reference_truth(&replay_graph(&g0, &ops[..e * batch]).to_csr()))
        .collect();

    let cut_dir = TempDir::new("torn-cut");
    let cut_cfg = cfg(&cut_dir, u64::MAX);
    for cut in 0..=wal_bytes.len() {
        let dsdir = cut_dir.path().join("t");
        let _ = std::fs::remove_dir_all(&dsdir);
        std::fs::create_dir_all(&dsdir).unwrap();
        for file in [MANIFEST_FILE, "snap-0000000000000000.snap"] {
            std::fs::copy(dir.path().join("t").join(file), dsdir.join(file)).unwrap();
        }
        std::fs::write(dsdir.join(WAL_FILE), &wal_bytes[..cut]).unwrap();

        let (rec, report) = Dataset::recover("t", &cut_cfg)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        // Exactly the records wholly inside the cut survive; a partial
        // record is a torn tail, truncated without complaint.
        let whole = cut / record_len;
        assert_eq!(report.epoch, whole as u64, "cut at {cut}");
        assert_eq!(report.torn_tail, cut % record_len != 0, "cut at {cut}");
        let k = 5;
        check_topk(&truths[whole], &rec.exact_topk_uncached(k), k, REL_TOL)
            .unwrap_or_else(|e| panic!("cut at {cut} (epoch {whole}): {e}"));
    }
}

#[test]
fn compaction_truncates_the_wal_and_keeps_one_snapshot() {
    let g0 = egobtw_gen::gnp(14, 0.22, 9);
    let ops = stream(&g0, 14, 0xC0FFEE);
    let dir = TempDir::new("compact");
    let cfg = cfg(&dir, 3); // auto-compact every 3 batches
    let ds = Dataset::create_persistent("c", g0.clone(), Mode::default(), &cfg).unwrap();
    for chunk in ops.chunks(2) {
        ds.apply_updates(chunk).unwrap();
    }
    // 7 batches, compactions fired at records 3 and 6 → 1 record left.
    assert_eq!(ds.wal_records(), 1);
    let snaps: Vec<String> = std::fs::read_dir(dir.path().join("c"))
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.starts_with("snap-") && n.ends_with(".snap"))
        .collect();
    assert_eq!(
        snaps,
        vec!["snap-0000000000000006.snap".to_string()],
        "older snapshots must be pruned"
    );
    drop(ds);

    let (rec, report) = Dataset::recover("c", &cfg).unwrap();
    assert_eq!(report.snapshot_epoch, 6);
    assert_eq!(report.epoch, 7);
    assert_eq!(report.replayed, 1);
    assert_matches_prefix(&rec, &g0, &ops, 14, "post-compaction");

    // An explicit compaction empties the WAL and re-recovers identically.
    assert_eq!(rec.compact().unwrap(), 7);
    assert_eq!(rec.wal_records(), 0);
    drop(rec);
    let (rec2, report2) = Dataset::recover("c", &cfg).unwrap();
    assert_eq!(
        (report2.snapshot_epoch, report2.epoch, report2.replayed),
        (7, 7, 0)
    );
    assert_matches_prefix(&rec2, &g0, &ops, 14, "post-explicit-compaction");
}

#[test]
fn manifest_preserves_the_maintainer_mode_across_restarts() {
    let g0 = egobtw_gen::classic::karate_club();
    for mode in [
        Mode::Local { publish_k: 5 },
        Mode::Lazy { k: 7 },
        Mode::Delta { k: 6 },
    ] {
        let dir = TempDir::new("mode");
        let cfg = cfg(&dir, 64);
        let ds = Dataset::create_persistent("m", g0.clone(), mode, &cfg).unwrap();
        ds.apply_updates(&[EdgeOp::Insert(4, 9)]).unwrap();
        drop(ds);
        let (rec, _) = Dataset::recover("m", &cfg).unwrap();
        assert_eq!(rec.mode(), mode, "mode must round-trip via the manifest");
    }
}

#[test]
fn recover_rejects_a_mismatched_manifest_name() {
    let g0 = egobtw_gen::classic::star(6);
    let dir = TempDir::new("mismatch");
    let cfg = cfg(&dir, 64);
    drop(Dataset::create_persistent("alpha", g0, Mode::default(), &cfg).unwrap());
    std::fs::rename(dir.path().join("alpha"), dir.path().join("beta")).unwrap();
    let err = match Dataset::recover("beta", &cfg) {
        Ok(_) => panic!("recovery accepted a dataset whose manifest names another"),
        Err(e) => e,
    };
    assert!(err.contains("alpha"), "{err}");
}

#[test]
fn retire_deletes_the_directory_and_refuses_further_writes() {
    let g0 = egobtw_gen::classic::path(8);
    let dir = TempDir::new("retire");
    let cfg = cfg(&dir, 64);
    let ds = Dataset::create_persistent("gone", g0, Mode::default(), &cfg).unwrap();
    ds.apply_updates(&[EdgeOp::Insert(0, 5)]).unwrap();
    assert!(dir.path().join("gone").join(WAL_FILE).exists());
    ds.retire();
    assert!(ds.retired());
    assert!(
        !dir.path().join("gone").exists(),
        "retire must delete WAL + snapshots"
    );
    let err = ds.apply_updates(&[EdgeOp::Insert(0, 6)]).unwrap_err();
    assert!(err.contains("retired"), "{err}");
}
