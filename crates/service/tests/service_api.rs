//! In-process `Service` API tests: no sockets, structured replies.

use egobtw_core::registry::{builtin_engines, topk_from_scores};
use egobtw_gen::classic;
use egobtw_service::catalog::{Mode, DEFAULT_PUBLISH_K};
use egobtw_service::service::TopkSource;
use egobtw_service::{parse_command, Service};

fn exec(service: &Service, line: &str) -> egobtw_service::Reply {
    service
        .execute(&parse_command(line).expect("parse"))
        .unwrap_or_else(|e| panic!("{line:?} failed: {e}"))
}

fn exec_err(service: &Service, line: &str) -> String {
    match parse_command(line).and_then(|c| service.execute(&c)) {
        Ok(r) => panic!("{line:?} unexpectedly succeeded: {}", r.render()),
        Err(e) => e,
    }
}

#[test]
fn topk_auto_is_maintained_and_matches_truth() {
    let service = Service::new();
    let g = classic::karate_club();
    service.load_graph("k", g.clone(), Mode::default()).unwrap();
    let truth = topk_from_scores(&egobtw_core::compute_all(&g).0, 5);
    match exec(&service, "TOPK k 5") {
        egobtw_service::Reply::Topk {
            source, entries, ..
        } => {
            assert_eq!(source, TopkSource::Maintained);
            for ((_, a), (_, b)) in entries.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-9);
            }
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn every_registry_engine_is_selectable_per_request() {
    let service = Service::new();
    let g = classic::karate_club();
    service.load_graph("k", g.clone(), Mode::default()).unwrap();
    let truth = topk_from_scores(&egobtw_core::compute_all(&g).0, 6);
    for engine in builtin_engines() {
        match exec(&service, &format!("TOPK k 6 {}", engine.name())) {
            egobtw_service::Reply::Topk {
                source, entries, ..
            } => {
                assert_eq!(source, TopkSource::Engine(engine.name().to_string()));
                for (rank, ((_, a), (_, b))) in entries.iter().zip(&truth).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "{} rank {rank}: {a} vs {b}",
                        engine.name()
                    );
                }
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // Second request: served from the per-epoch cache.
        match exec(&service, &format!("TOPK k 6 {}", engine.name())) {
            egobtw_service::Reply::Topk { source, .. } => {
                assert_eq!(source, TopkSource::Cache, "{}", engine.name());
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(exec_err(&service, "TOPK k 6 core::not_an_engine").contains("unknown engine"));
}

#[test]
fn k_larger_than_publish_window_falls_back_to_engine_then_cache() {
    let service = Service::new();
    service
        .load_graph("k", classic::karate_club(), Mode::Local { publish_k: 3 })
        .unwrap();
    let big_k = 10; // > publish_k → engine path
    match exec(&service, &format!("TOPK k {big_k}")) {
        egobtw_service::Reply::Topk {
            source, entries, ..
        } => {
            assert!(matches!(source, TopkSource::Engine(_)), "{source:?}");
            assert_eq!(entries.len(), big_k);
        }
        other => panic!("unexpected reply {other:?}"),
    }
    match exec(&service, &format!("TOPK k {big_k}")) {
        egobtw_service::Reply::Topk { source, .. } => assert_eq!(source, TopkSource::Cache),
        other => panic!("unexpected reply {other:?}"),
    }
    // k within the window stays maintained, and k > n clamps.
    match exec(&service, "TOPK k 2") {
        egobtw_service::Reply::Topk { source, .. } => {
            assert_eq!(source, TopkSource::Maintained)
        }
        other => panic!("unexpected reply {other:?}"),
    }
    match exec(&service, "TOPK k 500") {
        egobtw_service::Reply::Topk { entries, .. } => assert_eq!(entries.len(), 34),
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn update_bumps_epoch_invalidates_cache_and_stays_exact() {
    let service = Service::new();
    let g = classic::karate_club();
    service.load_graph("k", g.clone(), Mode::default()).unwrap();
    // Prime the engine cache at epoch 0 (named engines always go through
    // the cache; plain TOPK is served maintained here since n < 64).
    exec(&service, "TOPK k 40 core::compute_all");
    exec(&service, "TOPK k 40 core::compute_all");
    let out = match exec(&service, "UPDATE k +4,9 +4,9 -0,1") {
        egobtw_service::Reply::Update(_, out) => out,
        other => panic!("unexpected reply {other:?}"),
    };
    assert_eq!(out.epoch, 1);
    assert_eq!((out.applied, out.skipped), (2, 1));
    // The answer at epoch 1 must reflect the new graph — a stale cache hit
    // would return epoch-0 scores.
    let mut g1 = egobtw_graph::DynGraph::from_csr(&g);
    g1.insert_edge(4, 9);
    g1.remove_edge(0, 1);
    let truth = topk_from_scores(&egobtw_core::compute_all(&g1.to_csr()).0, 40);
    match exec(&service, "TOPK k 40") {
        egobtw_service::Reply::Topk {
            epoch,
            source,
            entries,
            ..
        } => {
            assert_eq!(epoch, 1);
            assert!(
                !matches!(source, TopkSource::Cache),
                "epoch 1 must not hit epoch 0's cache"
            );
            for ((_, a), (_, b)) in entries.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-9);
            }
        }
        other => panic!("unexpected reply {other:?}"),
    }
    match exec(&service, "STATS k") {
        egobtw_service::Reply::Stats {
            epoch,
            m,
            ops_applied,
            cache_hits,
            cache_misses,
            maintained,
            ..
        } => {
            assert_eq!(epoch, 1);
            assert_eq!(m, g.m()); // +1 −1
            assert_eq!(ops_applied, 2);
            assert!(cache_hits >= 1 && cache_misses >= 1);
            assert_eq!(maintained, Some(DEFAULT_PUBLISH_K.min(34)));
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn score_and_common_match_direct_computation() {
    let service = Service::new();
    let g = classic::karate_club();
    service.load_graph("k", g.clone(), Mode::default()).unwrap();
    match exec(&service, "SCORE k 0 33 5") {
        egobtw_service::Reply::Score {
            entries, cached, ..
        } => {
            assert_eq!(cached, 0);
            for &(v, s) in &entries {
                let direct = egobtw_core::naive::ego_betweenness_of(&g, v);
                assert!((s - direct).abs() < 1e-9, "vertex {v}");
            }
        }
        other => panic!("unexpected reply {other:?}"),
    }
    // Second ask is fully cached.
    match exec(&service, "SCORE k 0 33 5") {
        egobtw_service::Reply::Score { cached, .. } => assert_eq!(cached, 3),
        other => panic!("unexpected reply {other:?}"),
    }
    match exec(&service, "COMMON k 0 33") {
        egobtw_service::Reply::Common { witnesses, .. } => {
            let mut expect = Vec::new();
            g.common_neighbors_into(0, 33, &mut expect);
            assert_eq!(witnesses, expect);
        }
        other => panic!("unexpected reply {other:?}"),
    }
    assert!(exec_err(&service, "SCORE k 99").contains("out of range"));
    assert!(exec_err(&service, "COMMON k 0 99").contains("out of range"));
}

#[test]
fn lazy_dataset_pays_refresh_once_then_serves_maintained() {
    let service = Service::new();
    let g = egobtw_gen::toy::paper_graph();
    service.load_graph("t", g, Mode::Lazy { k: 12 }).unwrap();
    // Delete with common neighbors → deferred refresh at publish.
    exec(
        &service,
        &format!(
            "UPDATE t -{},{}",
            egobtw_gen::toy::ids::C,
            egobtw_gen::toy::ids::G
        ),
    );
    match exec(&service, "TOPK t 12") {
        egobtw_service::Reply::Topk { source, epoch, .. } => {
            assert_eq!(source, TopkSource::Refreshed, "first read pays the refresh");
            assert_eq!(epoch, 1);
        }
        other => panic!("unexpected reply {other:?}"),
    }
    match exec(&service, "TOPK t 12") {
        egobtw_service::Reply::Topk { source, .. } => {
            assert_eq!(
                source,
                TopkSource::Maintained,
                "refresh republished the epoch with exact entries"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }
    // k beyond the lazy window uses the engine path.
    match exec(&service, "TOPK t 16") {
        egobtw_service::Reply::Topk { source, .. } => {
            assert!(matches!(source, TopkSource::Engine(_)));
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn load_list_drop_and_errors() {
    let service = Service::new();
    assert!(exec_err(&service, "TOPK nope 3").contains("no dataset"));
    service
        .load_graph("a", classic::star(6), Mode::default())
        .unwrap();
    service
        .load_graph("b", classic::path(6), Mode::default())
        .unwrap();
    match exec(&service, "LIST") {
        egobtw_service::Reply::List(names) => {
            assert_eq!(names, vec!["a".to_string(), "b".to_string()])
        }
        other => panic!("unexpected reply {other:?}"),
    }
    assert!(service
        .load_graph("a", classic::star(6), Mode::default())
        .unwrap_err()
        .contains("already loaded"));
    exec(&service, "DROP a");
    assert!(exec_err(&service, "DROP a").contains("no dataset"));
}

#[test]
fn load_path_sniffs_snapshot_and_edge_list() {
    let service = Service::new();
    let g = classic::karate_club();
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("egobtw-svc-{}.snap", std::process::id()));
    let edges = dir.join(format!("egobtw-svc-{}.edges", std::process::id()));
    egobtw_graph::io::write_snapshot_file(&g, None, &snap).unwrap();
    egobtw_graph::io::write_edge_list_file(&g, &edges).unwrap();
    let r1 = service
        .load_path("snap", snap.to_str().unwrap(), Mode::default())
        .unwrap();
    let r2 = service
        .load_path("edges", edges.to_str().unwrap(), Mode::default())
        .unwrap();
    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&edges).ok();
    match (r1, r2) {
        (
            egobtw_service::Reply::Load {
                snapshot: s1,
                m: m1,
                ..
            },
            egobtw_service::Reply::Load {
                snapshot: s2,
                m: m2,
                ..
            },
        ) => {
            assert!(s1 && !s2);
            assert_eq!((m1, m2), (g.m(), g.m()));
        }
        other => panic!("unexpected replies {other:?}"),
    }
    // Both views answer with the same score sequence (the edge-list
    // loader relabels ids in first-seen order, so vertex ids may differ
    // on exact ties — scores cannot).
    let score_seq = |line: &str| -> Vec<f64> {
        match exec(&service, line) {
            egobtw_service::Reply::Topk { entries, .. } => entries.iter().map(|e| e.1).collect(),
            other => panic!("unexpected reply {other:?}"),
        }
    };
    let a = score_seq("TOPK snap 5");
    let b = score_seq("TOPK edges 5");
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
    }
    assert!(service
        .load_path("missing", "/nonexistent/x", Mode::default())
        .unwrap_err()
        .contains("open"));
}

#[test]
fn handle_payload_batches_and_isolates_errors() {
    let service = Service::new();
    service
        .load_graph("k", classic::karate_club(), Mode::default())
        .unwrap();
    let response = service.handle_payload("PING\nBOGUS\nTOPK k 3\n\nLIST");
    let lines: Vec<&str> = response.lines().collect();
    assert_eq!(lines.len(), 4, "{response}");
    assert_eq!(lines[0], "OK pong");
    assert!(lines[1].starts_with("ERR"), "{}", lines[1]);
    assert!(
        lines[2].starts_with("OK top name=k epoch=0 k=3"),
        "{}",
        lines[2]
    );
    assert_eq!(lines[3], "OK list datasets=k");
    assert_eq!(service.handle_payload("   \n"), "ERR empty request");
}

#[test]
fn concurrent_identical_cold_topks_coalesce_to_one_computation() {
    // N threads ask the same (engine, k) on a cold epoch at once: exactly
    // one computes, the rest join its flight — cache_misses stays 1.
    let service = std::sync::Arc::new(Service::new());
    let g = egobtw_gen::gnp(120, 0.08, 17);
    service
        .load_graph("co", g, Mode::Local { publish_k: 4 })
        .unwrap();
    let barrier = std::sync::Barrier::new(8);
    let answers: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (service, barrier) = (service.clone(), &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    service.handle_line("TOPK co 9 core::compute_all")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for a in &answers {
        assert!(a.starts_with("OK top"), "{a}");
        assert_eq!(
            a.split("entries=").nth(1),
            answers[0].split("entries=").nth(1),
            "coalesced answers must be identical"
        );
    }
    let ds = service.catalog().get("co").unwrap();
    assert_eq!(
        ds.metrics().cache_misses.get(),
        1,
        "single-flight: one computation for 8 identical requests"
    );
    assert_eq!(
        ds.metrics().coalesced.get() + ds.metrics().cache_hits.get(),
        7,
        "every other request joined the flight or hit its published result"
    );
}

#[test]
fn stats_line_reports_shard_persistence_and_coalescing_fields() {
    let service = Service::new();
    service
        .load_graph("s", classic::karate_club(), Mode::default())
        .unwrap();
    let line = service.handle_line("STATS s");
    // New fields ride at the end of the line so older scripts that match
    // on the prefix keep working.
    assert!(
        line.starts_with("OK stats name=s epoch=0 n=34 m=78"),
        "{line}"
    );
    for needle in [
        " coalesced=0",
        " shard=",
        " persisted=false",
        " wal_records=0",
    ] {
        assert!(line.contains(needle), "{line} missing {needle}");
    }
}

#[test]
fn approx_engine_token_serves_cached_deterministic_topk() {
    let service = Service::new();
    let g = classic::karate_club();
    service.load_graph("a", g.clone(), Mode::default()).unwrap();
    let truth = topk_from_scores(&egobtw_core::compute_all(&g).0, 5);

    // Karate sits under the approx engine's exact-pair cutoff, so the
    // sampler answers exactly — the wire-level contract here is about
    // routing, caching, and counters, not statistics.
    let first = match exec(&service, "TOPK a 5 approx:0.05,0.01") {
        egobtw_service::Reply::Topk {
            source, entries, ..
        } => {
            assert_eq!(source, TopkSource::Engine("approx:0.05,0.01".into()));
            for ((_, a), (_, b)) in entries.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-9);
            }
            entries
        }
        other => panic!("unexpected reply {other:?}"),
    };

    // Same epoch + same token ⇒ served from the per-epoch cache,
    // byte-identical (the sampler seed is fixed per token).
    match exec(&service, "TOPK a 5 approx:0.05,0.01") {
        egobtw_service::Reply::Topk {
            source, entries, ..
        } => {
            assert_eq!(source, TopkSource::Cache);
            assert_eq!(entries, first);
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // A different (ε, δ) is a different cache key, hence a fresh run.
    match exec(&service, "TOPK a 5 approx:0.10,0.05") {
        egobtw_service::Reply::Topk { source, .. } => {
            assert_eq!(source, TopkSource::Engine("approx:0.10,0.05".into()));
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn approx_engine_rejects_malformed_specs() {
    let service = Service::new();
    service
        .load_graph("a", classic::karate_club(), Mode::default())
        .unwrap();
    for bad in [
        "TOPK a 5 approx:",
        "TOPK a 5 approx:0.05",
        "TOPK a 5 approx:0.05;0.01",
        "TOPK a 5 approx:0,0.01",
        "TOPK a 5 approx:1.5,0.01",
        "TOPK a 5 approx:0.05,1.0",
        "TOPK a 5 approx:eps,delta",
    ] {
        let e = exec_err(&service, bad);
        assert!(e.contains("approx"), "{bad:?}: {e}");
    }
}

#[test]
fn stats_reports_approx_sampling_counters() {
    let service = Service::new();
    // A graph big enough that the sampler actually samples (degrees push
    // pair counts past the exact cutoff), so the counters move.
    let g = egobtw_gen::synth_family("ba", 2.0, 9).unwrap();
    service.load_graph("s", g, Mode::default()).unwrap();
    let before = service.handle_line("STATS s");
    assert!(
        before.contains(" approx_samples=0") && before.contains(" approx_rounds=0"),
        "{before}"
    );
    exec(&service, "TOPK s 8 approx:0.05,0.01");
    let ds = service.catalog().get("s").unwrap();
    let samples = ds.metrics().approx_samples.get();
    let rounds = ds.metrics().approx_rounds.get();
    assert!(samples > 0, "sampler drew nothing on a 400-vertex graph");
    assert!(rounds > 0);
    let after = service.handle_line("STATS s");
    assert!(
        after.contains(&format!(" approx_samples={samples}"))
            && after.contains(&format!(" approx_rounds={rounds}")),
        "{after}"
    );
    // Cache hits don't re-run the sampler, so the counters hold still.
    exec(&service, "TOPK s 8 approx:0.05,0.01");
    assert_eq!(ds.metrics().approx_samples.get(), samples);
}

#[test]
fn compact_requires_a_persistent_dataset() {
    let service = Service::new();
    service
        .load_graph("mem", classic::star(5), Mode::default())
        .unwrap();
    let err = exec_err(&service, "COMPACT mem");
    assert!(err.contains("not persistent"), "{err}");
    assert!(exec_err(&service, "COMPACT ghost").contains("no dataset"));
}

#[test]
fn path_shaped_dataset_names_are_rejected_at_the_api_edge() {
    let service = Service::new();
    for bad in ["../up", "a/b", "a\\b", ".", "..", "a b", "caf\u{e9}"] {
        let err = service
            .load_graph(bad, classic::star(4), Mode::default())
            .unwrap_err();
        assert!(err.contains("bad dataset name"), "{bad:?}: {err}");
    }
    // The loadgen's scenario-mangled names must stay legal.
    service
        .load_graph(
            "karate--update-heavy.v1_x",
            classic::star(4),
            Mode::default(),
        )
        .unwrap();
}
