//! End-to-end observability tests: the `METRICS` exposition round-trips
//! through the telemetry parser, request outcomes balance, `TRACE`
//! appends a span breakdown, and `SLOWLOG` captures outliers.

use egobtw_service::catalog::Mode;
use egobtw_service::Service;
use egobtw_telemetry::prometheus;

fn service_with_graph(name: &str) -> Service {
    let service = Service::new();
    let g = egobtw_gen::gnp(40, 0.15, 7);
    service.load_graph(name, g, Mode::default()).unwrap();
    service
}

fn counter(expo: &prometheus::Exposition, name: &str) -> u64 {
    expo.value(name, &[])
        .unwrap()
        .unwrap_or_else(|| panic!("{name} missing")) as u64
}

/// The full scrape parses, passes schema validation, and the outcome
/// counters balance *within the scrape itself* (METRICS counts its own
/// completion before rendering).
#[test]
fn metrics_scrape_round_trips_and_outcomes_balance() {
    let service = service_with_graph("m");
    service.handle_line("PING");
    service.handle_line("TOPK m 5 core::compute_all");
    service.handle_line("TOPK m 5 core::compute_all"); // cache hit
    service.handle_line("SCORE m 0 1");
    service.handle_line("NO SUCH VERB"); // → failed
    service.handle_line("DEADLINE 0 TOPK m 5"); // → cancelled

    let text = service.handle_line("METRICS");
    let expo = prometheus::parse(&text).expect("METRICS must parse");
    let violations = expo.validate(&[
        "egobtw_requests_admitted_total",
        "egobtw_requests_completed_total",
        "egobtw_requests_cancelled_total",
        "egobtw_requests_failed_total",
        "egobtw_request_latency_ns",
        "egobtw_shed_total",
        "egobtw_timeouts_total",
        "egobtw_compute_inflight",
        "egobtw_cache_hits_total",
        "egobtw_cache_misses_total",
        "egobtw_dataset_epoch",
        "egobtw_work_exact_total",
    ]);
    assert!(violations.is_empty(), "{violations:?}");

    let admitted = counter(&expo, "egobtw_requests_admitted_total");
    let completed = counter(&expo, "egobtw_requests_completed_total");
    let cancelled = counter(&expo, "egobtw_requests_cancelled_total");
    let failed = counter(&expo, "egobtw_requests_failed_total");
    assert_eq!(
        admitted,
        completed + cancelled + failed,
        "outcome accounting must balance in the scrape METRICS returns"
    );
    assert!(completed >= 4, "PING + 2×TOPK + SCORE + METRICS completed");
    assert!(failed >= 1, "the parse error lands in failed");
    assert!(cancelled >= 1, "the expired deadline lands in cancelled");

    // Per-verb latency histograms saw the requests.
    let topk = expo
        .histogram("egobtw_request_latency_ns", &[("verb", "TOPK")])
        .expect("TOPK latency series");
    assert_eq!(topk.count, 2, "both TOPKs observed");
    assert!(topk.sum > 0.0);
    // The pre-expired deadline was refused before its verb ever parsed,
    // so it lands in the catch-all series.
    let unknown = expo
        .histogram("egobtw_request_latency_ns", &[("verb", "?")])
        .expect("? latency series");
    assert!(unknown.count >= 1);

    // Dataset-level cache accounting: the first TOPK misses plus one
    // miss per fresh SCORE ego; the repeated TOPK hits.
    assert_eq!(
        expo.value("egobtw_cache_misses_total", &[("dataset", "m")])
            .unwrap(),
        Some(3.0)
    );
    assert_eq!(
        expo.value("egobtw_cache_hits_total", &[("dataset", "m")])
            .unwrap(),
        Some(1.0)
    );
    // Engine work counters carry the engine label.
    let exact: f64 = expo.families["egobtw_engine_exact_total"]
        .samples
        .iter()
        .map(|s| s.value)
        .sum();
    assert!(exact > 0.0, "the exact engine reported work");
}

/// Counters are monotone across scrapes — the schema contract the CI
/// smoke job asserts against a live daemon.
#[test]
fn counters_are_monotone_across_scrapes() {
    let service = service_with_graph("mono");
    service.handle_line("TOPK mono 5 core::compute_all");
    let a = prometheus::parse(&service.handle_line("METRICS")).unwrap();
    service.handle_line("TOPK mono 6 core::compute_all");
    service.handle_line("PING");
    let b = prometheus::parse(&service.handle_line("METRICS")).unwrap();
    for name in [
        "egobtw_requests_admitted_total",
        "egobtw_requests_completed_total",
        "egobtw_requests_failed_total",
        "egobtw_cache_misses_total",
    ] {
        let fam = &a.families[name];
        for s in &fam.samples {
            let labels: Vec<(&str, &str)> = s
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let later = b.value(name, &labels).unwrap().unwrap_or(0.0);
            assert!(
                later >= s.value,
                "{name}{labels:?} went backwards: {} → {later}",
                s.value
            );
        }
    }
}

/// `TRACE` prepends opt-in tracing: the reply gains one ` trace=` token
/// with the phase breakdown; untraced requests stay untouched.
#[test]
fn trace_prefix_appends_span_breakdown() {
    let service = service_with_graph("t");
    let plain = service.handle_line("TOPK t 5 core::compute_all");
    assert!(!plain.contains(" trace="), "{plain}");

    let traced = service.handle_line("TRACE TOPK t 6 core::compute_all");
    let (_, trace) = traced.split_once(" trace=").expect("trace token");
    assert!(!trace.contains(' '), "single token: {trace:?}");
    assert!(trace.contains("total:"), "{trace}");
    assert!(trace.contains("compute:"), "{trace}");
    assert!(trace.contains("exact:"), "work counters fold in: {trace}");

    // Queue wait (attributed by the server) shows up as its own phase.
    let queued = service.handle_line_queued(
        "TRACE PING",
        &egobtw_core::Cancel::new(),
        5_000_000, // 5ms
    );
    let (_, trace) = queued.split_once(" trace=").unwrap();
    assert!(trace.contains("queue:5000us"), "{trace}");

    // TRACE composes with DEADLINE in either position of the grammar.
    let both = service.handle_line("TRACE DEADLINE 30000 PING");
    assert!(both.starts_with("OK pong"), "{both}");
    assert!(both.contains(" trace="), "{both}");
}

/// The slow-query ring captures every request past the threshold with
/// its breakdown, drains once, and is empty afterwards.
#[test]
fn slowlog_captures_and_drains() {
    let service = service_with_graph("s");
    let reply = service.handle_line("SLOWLOG");
    assert_eq!(reply, "OK slowlog count=0 dropped=0");

    service.metrics().slowlog().set_threshold_ns(1); // capture everything
    service.handle_line("TOPK s 5 core::compute_all");
    service.handle_line("PING");
    service.metrics().slowlog().set_threshold_ns(0); // stop before SLOWLOG itself

    let reply = service.handle_line("SLOWLOG");
    let mut lines = reply.lines();
    let head = lines.next().unwrap();
    assert!(head.starts_with("OK slowlog count=2 dropped=0"), "{head}");
    let entries: Vec<&str> = lines.collect();
    assert_eq!(entries.len(), 2);
    assert!(entries[0].contains("verb=TOPK") && entries[0].contains("dataset=s"));
    assert!(entries[1].contains("verb=PING") && entries[1].contains("dataset=-"));
    assert!(entries[0].contains("total:"), "breakdown rides along");

    // Drained: the next SLOWLOG is empty again.
    assert_eq!(
        service.handle_line("SLOWLOG"),
        "OK slowlog count=0 dropped=0"
    );
}

/// Multi-line replies must own their frame: METRICS/SLOWLOG sharing a
/// frame with other commands would corrupt the line-per-command mapping.
#[test]
fn metrics_and_slowlog_must_be_sole_line_of_frame() {
    let service = service_with_graph("f");
    let response = service.handle_payload("PING\nMETRICS\n");
    let lines: Vec<&str> = response.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("OK pong"));
    assert_eq!(lines[1], "ERR METRICS must be the only line in its frame");

    let response = service.handle_payload("SLOWLOG\nPING\n");
    let lines: Vec<&str> = response.lines().collect();
    assert_eq!(lines[0], "ERR SLOWLOG must be the only line in its frame");
    assert!(lines[1].starts_with("OK pong"));

    // Alone in its frame it renders the full exposition.
    let alone = service.handle_payload("METRICS\n");
    assert!(prometheus::parse(&alone).is_ok());
}

/// STATS surfaces the engine work totals alongside the existing fields.
#[test]
fn stats_reports_search_work_totals() {
    let service = service_with_graph("w");
    let before = service.handle_line("STATS w");
    assert!(
        before.contains(" exact=0")
            && before.contains(" pruned=")
            && before.contains(" triangles="),
        "{before}"
    );
    service.handle_line("TOPK w 5 core::compute_all");
    let after = service.handle_line("STATS w");
    let exact: u64 = after
        .split(" exact=")
        .nth(1)
        .and_then(|r| r.split(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{after}"));
    assert!(exact > 0, "compute_all touches every ego: {after}");
}
