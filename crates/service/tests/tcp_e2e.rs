//! End-to-end TCP tests: real sockets on an OS-assigned port.

use egobtw_gen::classic;
use egobtw_service::catalog::Mode;
use egobtw_service::server::{connect_with_retry, roundtrip, Server};
use egobtw_service::Service;
use std::sync::Arc;
use std::time::Duration;

fn start(threads: usize) -> (Arc<Service>, Server) {
    let service = Arc::new(Service::new());
    service
        .load_graph("k", classic::karate_club(), Mode::default())
        .unwrap();
    let server = Server::spawn(service.clone(), "127.0.0.1:0", threads).expect("bind");
    (service, server)
}

#[test]
fn end_to_end_session_load_query_update_requery() {
    let (_service, server) = start(2);
    let addr = server.local_addr().to_string();
    let (mut reader, mut writer) =
        connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");

    let pong = roundtrip(&mut reader, &mut writer, "PING").unwrap();
    assert_eq!(pong, "OK pong");

    // A batched frame: responses line up one-to-one, in order.
    let response = roundtrip(
        &mut reader,
        &mut writer,
        "TOPK k 3\nSCORE k 0 33\nCOMMON k 0 33\nSTATS k",
    )
    .unwrap();
    let lines: Vec<&str> = response.lines().collect();
    assert_eq!(lines.len(), 4, "{response}");
    assert!(lines[0].starts_with("OK top name=k epoch=0 k=3 source=maintained"));
    assert!(lines[1].starts_with("OK score name=k epoch=0"));
    assert!(lines[2].starts_with("OK common name=k epoch=0"));
    assert!(lines[3].starts_with("OK stats name=k epoch=0 n=34 m=78"));

    let top0 = lines[0].split_once("entries=").unwrap().1.to_string();

    // Update, then the re-query must answer for the new epoch.
    let response = roundtrip(&mut reader, &mut writer, "UPDATE k -0,1 -0,2\nTOPK k 3").unwrap();
    let lines: Vec<&str> = response.lines().collect();
    assert!(lines[0].starts_with("OK update name=k epoch=1 applied=2 skipped=0"));
    assert!(
        lines[1].starts_with("OK top name=k epoch=1"),
        "{}",
        lines[1]
    );
    let top1 = lines[1].split_once("entries=").unwrap().1;
    assert_ne!(top0, top1, "deleting hub edges must change the answer");

    drop((reader, writer));
    server.shutdown();
}

#[test]
fn errors_keep_the_connection_usable() {
    let (_service, server) = start(1);
    let addr = server.local_addr().to_string();
    let (mut reader, mut writer) =
        connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");
    let response = roundtrip(&mut reader, &mut writer, "NOPE\nTOPK missing 3").unwrap();
    for line in response.lines() {
        assert!(line.starts_with("ERR"), "{line}");
    }
    let pong = roundtrip(&mut reader, &mut writer, "PING").unwrap();
    assert_eq!(pong, "OK pong");
    drop((reader, writer));
    server.shutdown();
}

#[test]
fn concurrent_clients_see_consistent_epochs() {
    // 4 readers hammer TOPK while the main thread applies updates; every
    // response must be internally consistent (the epoch it cites is a
    // published one) and the server must survive the concurrency.
    let (service, server) = start(6);
    service
        .load_graph("g", egobtw_gen::gnp(40, 0.15, 7), Mode::default())
        .unwrap();
    let addr = server.local_addr().to_string();

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (mut reader, mut writer) =
                    connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");
                let mut last_epoch = 0u64;
                for _ in 0..50 {
                    let response =
                        roundtrip(&mut reader, &mut writer, "TOPK g 5").expect("roundtrip");
                    assert!(response.starts_with("OK top"), "{response}");
                    let epoch: u64 = response
                        .split_whitespace()
                        .find_map(|t| t.strip_prefix("epoch="))
                        .unwrap()
                        .parse()
                        .unwrap();
                    // Epochs are monotone per connection: a reader can see
                    // a newer snapshot, never an older one again.
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    last_epoch = epoch;
                }
                last_epoch
            })
        })
        .collect();

    let (mut reader, mut writer) =
        connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");
    for i in 0..20u32 {
        let (u, v) = (i % 40, (i * 7 + 1) % 40);
        if u == v {
            continue;
        }
        let response = roundtrip(&mut reader, &mut writer, &format!("UPDATE g +{u},{v}")).unwrap();
        assert!(response.starts_with("OK update"), "{response}");
    }
    for handle in readers {
        handle.join().expect("reader thread panicked");
    }
    drop((reader, writer));
    server.shutdown();
}
