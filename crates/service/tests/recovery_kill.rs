//! Kill-and-replay conformance: a real `egobtw-serve` process is driven
//! over TCP, killed at the nastiest moments — SIGKILL mid-stream, plus
//! injected aborts half-way through a WAL record write, after the durable
//! append but before the epoch publishes, and mid-compaction between the
//! tmp-snapshot write and its rename — then restarted. Every recovered
//! epoch must answer top-k with exactly the state the durable op prefix
//! defines, judged by [`ego_betweenness_reference`] through the
//! conformance crate's tie-aware comparator.
//!
//! The daemon is fed a **binary snapshot** of the start graph (the
//! edge-list loader relabels vertex ids; the snapshot loader preserves
//! them, which the oracle replay depends on).

use conformance::{check_topk, REL_TOL};
use egobtw_core::naive::ego_betweenness_reference;
use egobtw_dynamic::{replay_graph, EdgeOp};
use egobtw_graph::{CsrGraph, VertexId};
use egobtw_service::proto::parse_entries;
use egobtw_service::server::{connect_with_retry, roundtrip};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BATCH: usize = 3;
const NAME: &str = "killbox";

/// Fresh unique temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "egobtw-kill-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The daemon under test; killed on drop so a failing assertion never
/// leaks a process.
struct Daemon {
    child: Child,
    addr: String,
    /// `(epoch, snapshot_epoch, replayed, torn_tail)` per `recovered` line
    /// the daemon printed at boot.
    recovered: Vec<(String, u64, u64, u64, bool)>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// What a boot-time `recovered` line said about one dataset.
fn parse_recovered(line: &str) -> Option<(String, u64, u64, u64, bool)> {
    let mut it = line.split_whitespace();
    if it.next() != Some("recovered") {
        return None;
    }
    let name = it.next()?.to_string();
    let mut field = |key: &str| -> Option<String> {
        it.next()?
            .strip_prefix(key)?
            .strip_prefix('=')
            .map(str::to_string)
    };
    Some((
        name,
        field("epoch")?.parse().ok()?,
        field("snapshot_epoch")?.parse().ok()?,
        field("replayed")?.parse().ok()?,
        field("torn_tail")? == "true",
    ))
}

/// Spawns `egobtw-serve` on an OS-picked port and waits for its
/// `listening on` line. `crash` is an `EGOBTW_CRASH` spec or `None`.
fn spawn_daemon(
    data_dir: &Path,
    snap_path: &Path,
    crash: Option<&str>,
    compact_every: u64,
) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_egobtw-serve"));
    cmd.args([
        "--listen",
        "127.0.0.1:0",
        "--threads",
        "2",
        "--shards",
        "2",
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--fsync",
        "always",
        "--compact-every",
        &compact_every.to_string(),
        "--load",
        &format!("{NAME}={}:local:8", snap_path.to_str().unwrap()),
    ]);
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    if let Some(spec) = crash {
        cmd.env("EGOBTW_CRASH", spec);
    }
    let mut child = cmd.spawn().expect("spawn egobtw-serve");
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let mut recovered = Vec::new();
    let mut addr = None;
    for line in stdout.lines() {
        let line = line.expect("daemon stdout died before listening");
        if let Some(rec) = parse_recovered(&line) {
            recovered.push(rec);
        }
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.split_whitespace().next().unwrap().to_string());
            break;
        }
    }
    Daemon {
        child,
        addr: addr.expect("daemon never printed its address"),
        recovered,
    }
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    connect_with_retry(addr, Duration::from_secs(10)).expect("connect")
}

fn field<'r>(reply: &'r str, key: &str) -> &'r str {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no {key}= in {reply:?}"))
}

/// Seeded state-changing op stream over `g0`.
fn stream(g0: &CsrGraph, len: usize, seed: u64) -> Vec<EdgeOp> {
    let n = g0.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mirror = egobtw_graph::DynGraph::from_csr(g0);
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        ops.push(if mirror.has_edge(u, v) {
            mirror.remove_edge(u, v);
            EdgeOp::Delete(u, v)
        } else {
            mirror.insert_edge(u, v);
            EdgeOp::Insert(u, v)
        });
    }
    ops
}

fn update_line(batch: &[EdgeOp]) -> String {
    let mut line = format!("UPDATE {NAME}");
    for op in batch {
        match op {
            EdgeOp::Insert(u, v) => line.push_str(&format!(" +{u},{v}")),
            EdgeOp::Delete(u, v) => line.push_str(&format!(" -{u},{v}")),
        }
    }
    line
}

/// Sends batches `from..to` of `ops`; returns how many were **acked**
/// (an `OK update` came back). Stops early when the daemon dies or
/// errors — crash-injection tests expect exactly that.
fn drive(addr: &str, ops: &[EdgeOp], from: usize, to: usize) -> usize {
    let (mut reader, mut writer) = connect(addr);
    let mut acked = from;
    for b in from..to {
        let line = update_line(&ops[b * BATCH..(b + 1) * BATCH]);
        match roundtrip(&mut reader, &mut writer, &line) {
            Ok(reply) if reply.starts_with("OK update") => {
                let epoch: u64 = field(&reply, "epoch").parse().unwrap();
                assert_eq!(epoch, b as u64 + 1, "epochs must count batches");
                acked = b + 1;
            }
            _ => break, // refused or dead mid-batch: the daemon crashed
        }
    }
    acked
}

/// Asserts the daemon's top-k at its current epoch matches the reference
/// truth of the first `epoch` batches, and that it *reports* that epoch.
fn verify_epoch(addr: &str, g0: &CsrGraph, ops: &[EdgeOp], epoch: u64) {
    let (mut reader, mut writer) = connect(addr);
    let stats = roundtrip(&mut reader, &mut writer, &format!("STATS {NAME}")).unwrap();
    assert!(stats.starts_with("OK stats"), "{stats}");
    assert_eq!(
        field(&stats, "epoch").parse::<u64>().unwrap(),
        epoch,
        "recovered to the wrong epoch"
    );
    assert_eq!(field(&stats, "persisted"), "true");
    let g = replay_graph(g0, &ops[..epoch as usize * BATCH]).to_csr();
    let truth: Vec<f64> = (0..g.n() as VertexId)
        .map(|v| ego_betweenness_reference(&g, v))
        .collect();
    for k in [1usize, 4, 8] {
        let reply = roundtrip(&mut reader, &mut writer, &format!("TOPK {NAME} {k}")).unwrap();
        assert!(reply.starts_with("OK top"), "{reply}");
        assert_eq!(field(&reply, "epoch").parse::<u64>().unwrap(), epoch);
        let entries = parse_entries(field(&reply, "entries")).unwrap();
        check_topk(&truth, &entries, k, REL_TOL)
            .unwrap_or_else(|e| panic!("epoch {epoch} k={k}: {e}"));
    }
}

/// Full scenario: run to a crash (injected or SIGKILL), restart, check
/// the recovered lineage, then keep updating and re-verify — recovery
/// must leave a dataset that serves *and* accepts writes.
fn crash_recover_verify(
    tag: &str,
    crash: Option<&str>,
    compact_every: u64,
    kill_after: Option<usize>,
    expect_epoch: impl Fn(usize) -> u64,
    expect_torn: bool,
) {
    let g0 = egobtw_gen::gnp(20, 0.18, 13);
    let ops = stream(&g0, 60, 0xCA5CADE);
    let dir = TempDir::new(tag);
    let data_dir = dir.path().join("data");
    std::fs::create_dir_all(&data_dir).unwrap();
    let snap_path = dir.path().join("g0.snap");
    egobtw_graph::io::write_snapshot_file(&g0, None, &snap_path).unwrap();

    let mut daemon = spawn_daemon(&data_dir, &snap_path, crash, compact_every);
    assert!(
        daemon.recovered.is_empty(),
        "first boot has nothing to recover"
    );
    let acked = drive(&daemon.addr, &ops, 0, kill_after.unwrap_or(14));
    if kill_after.is_some() {
        daemon.child.kill().unwrap(); // SIGKILL: no destructors, no flush
    }
    daemon.child.wait().unwrap();
    drop(daemon);

    let expected = expect_epoch(acked);
    let daemon = spawn_daemon(&data_dir, &snap_path, None, u64::MAX);
    assert_eq!(daemon.recovered.len(), 1, "one dataset must recover");
    let (name, epoch, snapshot_epoch, replayed, torn) = daemon.recovered[0].clone();
    assert_eq!(name, NAME);
    assert_eq!(epoch, expected, "{tag}: recovered epoch");
    assert_eq!(torn, expect_torn, "{tag}: torn-tail flag");
    assert_eq!(epoch, snapshot_epoch + replayed, "{tag}: lineage mismatch");
    verify_epoch(&daemon.addr, &g0, &ops, expected);

    // Continue the stream where the durable prefix ends.
    let resumed = drive(&daemon.addr, &ops, expected as usize, expected as usize + 3);
    assert_eq!(
        resumed,
        expected as usize + 3,
        "{tag}: post-recovery writes"
    );
    verify_epoch(&daemon.addr, &g0, &ops, expected + 3);
}

#[test]
fn sigkill_mid_stream_recovers_every_acked_epoch() {
    // fsync=always means an acked batch is durable; with the kill landing
    // after the acks, recovery must land exactly on the acked epoch.
    crash_recover_verify(
        "sigkill",
        None,
        u64::MAX,
        Some(7),
        |acked| acked as u64,
        false,
    );
}

#[test]
fn crash_mid_wal_record_truncates_the_torn_tail() {
    // The 5th append aborts half-way through its record write: four
    // durable epochs plus a torn tail that must vanish on recovery.
    crash_recover_verify(
        "midrec",
        Some("wal-mid-record:5"),
        u64::MAX,
        None,
        |_| 4,
        true,
    );
}

#[test]
fn crash_post_append_recovers_the_never_published_batch() {
    // The 3rd batch is durably appended, then the daemon dies *before*
    // publishing or replying. The client saw 2 acks — but write-ahead
    // order means the batch is law: recovery must replay all 3.
    crash_recover_verify(
        "postapp",
        Some("post-append:3"),
        u64::MAX,
        None,
        |acked| {
            assert_eq!(acked, 2, "the crashed batch must not have been acked");
            3
        },
        false,
    );
}

#[test]
fn crash_mid_compaction_recovers_from_the_old_snapshot() {
    // Auto-compaction fires inside the 3rd update and aborts after
    // writing the tmp snapshot but before the rename: the old snapshot
    // (epoch 0) plus the intact 3-record WAL must reconstruct epoch 3.
    // (Arrival 1 of the crash point is the preload's epoch-0 snapshot
    // write; the compaction is arrival 2.)
    crash_recover_verify(
        "midcomp",
        Some("mid-compaction:2"),
        3,
        None,
        |acked| {
            assert_eq!(acked, 2, "the compacting batch never got its reply");
            3
        },
        false,
    );
}

#[test]
fn explicit_compact_over_the_wire_truncates_the_wal() {
    let g0 = egobtw_gen::gnp(18, 0.2, 5);
    let ops = stream(&g0, 12, 0xFACADE);
    let dir = TempDir::new("compactcmd");
    let data_dir = dir.path().join("data");
    std::fs::create_dir_all(&data_dir).unwrap();
    let snap_path = dir.path().join("g0.snap");
    egobtw_graph::io::write_snapshot_file(&g0, None, &snap_path).unwrap();

    let daemon = spawn_daemon(&data_dir, &snap_path, None, u64::MAX);
    assert_eq!(drive(&daemon.addr, &ops, 0, 4), 4);
    let (mut reader, mut writer) = connect(&daemon.addr);
    let stats = roundtrip(&mut reader, &mut writer, &format!("STATS {NAME}")).unwrap();
    assert_eq!(field(&stats, "wal_records"), "4");
    let reply = roundtrip(&mut reader, &mut writer, &format!("COMPACT {NAME}")).unwrap();
    assert_eq!(reply, format!("OK compact name={NAME} epoch=4"));
    let stats = roundtrip(&mut reader, &mut writer, &format!("STATS {NAME}")).unwrap();
    assert_eq!(field(&stats, "wal_records"), "0");
    drop(daemon);

    // Restart: pure snapshot load, zero replay, same answers.
    let daemon = spawn_daemon(&data_dir, &snap_path, None, u64::MAX);
    assert_eq!(daemon.recovered.len(), 1);
    let (_, epoch, snapshot_epoch, replayed, torn) = daemon.recovered[0].clone();
    assert_eq!((epoch, snapshot_epoch, replayed, torn), (4, 4, 0, false));
    verify_epoch(&daemon.addr, &g0, &ops, 4);
}
